// integration test helper crate (intentionally empty)
