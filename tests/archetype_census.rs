//! End-to-end reproduction of the Section VII experiment across the
//! paper's ratio set: every DFA fixed point groups into archetypes A–D at
//! the paper's viewing granularity, Archetype A dominating.

use hetmmm::prelude::*;
use hetmmm::{census, CensusConfig};

#[test]
fn paper_ratio_sweep_reproduces_postulate_1() {
    let mut grand_total = 0usize;
    let mut grand_classified = 0usize;
    let mut grand_a = 0usize;
    for ratio in Ratio::paper_ratios() {
        let report = census(&CensusConfig::new(40, ratio).with_runs(24));
        assert_eq!(report.unconverged, 0, "{ratio}: DFA must converge");
        assert!(
            report.mean_voc_final < report.mean_voc_initial,
            "{ratio}: search must reduce communication"
        );
        grand_total += report.total();
        grand_classified += report.total() - report.non_shapes;
        grand_a += report.counts[0];
    }
    // At small N a few staircase boundaries resist grouping; the bulk must
    // classify and Archetype A must dominate, as in the paper.
    assert!(
        grand_classified * 100 >= grand_total * 80,
        "classified {grand_classified}/{grand_total}"
    );
    assert!(
        grand_a * 100 >= grand_total * 30,
        "Archetype A share too low: {grand_a}/{grand_total}"
    );
}

#[test]
fn higher_heterogeneity_condenses_to_lower_voc() {
    // More dominant P → more room for the slow processors to hide → lower
    // final VoC (Fig. 5 shapes shrink). Monotone trend over P_r.
    let mut last = f64::MAX;
    for p in [2u32, 4, 10] {
        let report = census(&CensusConfig::new(40, Ratio::new(p, 1, 1)).with_runs(24));
        assert!(
            report.mean_voc_final < last,
            "P_r = {p}: mean VoC {} should fall below {last}",
            report.mean_voc_final
        );
        last = report.mean_voc_final;
    }
}

#[test]
fn census_counts_match_manual_classification() {
    // The census is just DFA + beautify + classify_coarse; spot-check that
    // against a manual pipeline for one configuration.
    let cfg = CensusConfig::new(30, Ratio::new(3, 1, 1)).with_runs(12);
    let report = census(&cfg);
    let runner = DfaRunner::new(DfaConfig::new(30, Ratio::new(3, 1, 1)));
    let mut counts = [0usize; 4];
    let mut non = 0usize;
    for out in runner.run_many(0..12u64) {
        let mut part = out.partition;
        beautify(&mut part);
        match classify_coarse(&part, 10) {
            Archetype::A => counts[0] += 1,
            Archetype::B => counts[1] += 1,
            Archetype::C => counts[2] += 1,
            Archetype::D => counts[3] += 1,
            Archetype::NonShape => non += 1,
        }
    }
    assert_eq!(report.counts, counts);
    assert_eq!(report.non_shapes, non);
}

#[test]
fn every_condensed_outcome_reduces_to_archetype_a() {
    // Theorems 8.2-8.4 end-to-end on real search outcomes.
    let runner = DfaRunner::new(DfaConfig::new(30, Ratio::new(4, 2, 1)));
    for out in runner.run_many(0..16u64) {
        let reduced = reduce_to_archetype_a(&out.partition);
        assert_eq!(classify(&reduced), Archetype::A);
        assert!(reduced.voc() <= out.partition.voc());
    }
}
