//! Integration tests for the profiling/report layer (`hetmmm-report`)
//! over *live* instrumented runs: a seeded census captured under
//! `FakeClock` must report byte-identically, the span tree must reflect
//! real nesting across the rayon worker threads, and truncated streams
//! must degrade gracefully.

use hetmmm::prelude::*;
use hetmmm::{census, CensusConfig};
use hetmmm_obs as obs;
use hetmmm_report::{full_report, EventLog, FoldWeight, SpanProfile};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests that touch the process-global facade state.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Restore pristine global state (no sinks, real clock, coarse spans).
fn reset_obs() {
    obs::uninstall_all_sinks();
    obs::reset_clock();
    obs::set_fine_spans(false);
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
}

/// Run a seeded census slice under `FakeClock` with fine spans on and
/// return the raw JSONL the sink captured.
fn capture_census_jsonl(seed0: u64) -> Vec<u8> {
    obs::set_clock(Arc::new(obs::FakeClock::new()));
    obs::set_fine_spans(true);
    let buf = obs::SharedBuf::new();
    let id = obs::install_sink(Arc::new(obs::JsonlSink::to_writer(Box::new(buf.clone()))));
    let report = census(
        &CensusConfig::new(20, Ratio::new(2, 1, 1))
            .with_runs(6)
            .with_seed0(seed0),
    );
    assert_eq!(report.unconverged, 0, "seeded census must converge");
    obs::uninstall_sink(id);
    obs::set_fine_spans(false);
    obs::reset_clock();
    buf.contents()
}

#[test]
fn report_is_byte_identical_for_the_same_seed_under_fake_clock() {
    let _guard = test_lock();
    reset_obs();
    let first = capture_census_jsonl(3);
    let second = capture_census_jsonl(3);
    reset_obs();

    // The raw streams interleave differently across worker threads and
    // carry different span ids / thread ordinals — but the report
    // aggregates by span path and metric name, so it must match byte for
    // byte.
    let log_a = EventLog::parse_str(std::str::from_utf8(&first).unwrap());
    let log_b = EventLog::parse_str(std::str::from_utf8(&second).unwrap());
    assert_eq!(log_a.skipped_lines, 0);
    assert!(!log_a.records.is_empty());

    let report_a = full_report(&log_a, None);
    let report_b = full_report(&log_b, None);
    assert_eq!(report_a, report_b, "full report must be byte-identical");
    assert!(report_a.contains("push funnel:"));
    assert!(report_a.contains("steps_to_convergence"));
    assert!(report_a.contains("== span profile"));

    let folded_a = SpanProfile::from_events(&log_a.records).folded(FoldWeight::Calls);
    let folded_b = SpanProfile::from_events(&log_b.records).folded(FoldWeight::Calls);
    assert_eq!(folded_a, folded_b, "folded stacks must be byte-identical");
    assert!(
        !folded_a.is_empty(),
        "calls-weighted folded output stays non-empty under FakeClock"
    );
}

#[test]
fn live_profile_reflects_real_span_nesting_across_threads() {
    let _guard = test_lock();
    reset_obs();
    let bytes = capture_census_jsonl(5);
    reset_obs();
    let log = EventLog::parse_str(std::str::from_utf8(&bytes).unwrap());
    let profile = SpanProfile::from_events(&log.records);

    assert_eq!(profile.unmatched_ends, 0, "complete stream pairs fully");
    assert!(profile.threads >= 1);
    // The census span runs on the caller thread; DFA runs fan out over
    // rayon, so dfa.run roots live on worker threads. Fine-tier spans
    // must appear *nested*, never as roots.
    assert!(profile.roots.contains_key("census.run"));
    assert!(
        !profile.roots.contains_key("push.apply"),
        "push.apply only ever runs inside a coarse span"
    );
    let dfa = profile
        .roots
        .get("dfa.run")
        .expect("dfa.run spans on worker threads");
    let apply = dfa
        .children
        .get("push.apply")
        .expect("fine push.apply spans nest under dfa.run");
    assert!(apply.calls > 0);
    assert!(
        apply.children.contains_key("push.clean"),
        "the swap phase nests under the per-type attempt span"
    );
    // Phase-1 preparation (which reads the cached enclosing rectangle) is
    // computed once per (proc, dir) and shared across the six types, so
    // the rect lookup nests directly under dfa.run, not under push.apply.
    assert!(
        dfa.children.contains_key("partition.enclosing_rect"),
        "hoisted phase-1 rect lookup nests under the search loop"
    );
    assert!(
        dfa.children.contains_key("push.probe"),
        "fixed-point residual probes nest under the search loop"
    );

    // Funnel cross-check against the same stream: every accepted push is
    // one DfaPush event, and DfaRunEnd.steps counts exactly those.
    let analysis = hetmmm_report::Analysis::from_events(&log);
    let steps_sum = analysis.steps_to_convergence.as_ref().unwrap().sum;
    assert_eq!(
        analysis.funnel.accepted, steps_sum,
        "accepted pushes match summed steps-to-convergence"
    );
    assert_eq!(analysis.funnel.runs, 6);
}

#[test]
fn truncated_stream_degrades_to_unclosed_spans_not_errors() {
    let _guard = test_lock();
    reset_obs();
    let bytes = capture_census_jsonl(9);
    reset_obs();
    // Cut the artifact mid-stream, as a killed run would leave it.
    let half = &bytes[..bytes.len() / 2];
    let log = EventLog::parse_str(&String::from_utf8_lossy(half));
    assert!(!log.records.is_empty());

    let profile = SpanProfile::from_events(&log.records);
    let unclosed_total: u64 = {
        fn sum(nodes: &std::collections::BTreeMap<String, hetmmm_report::SpanNode>) -> u64 {
            nodes.values().map(|n| n.unclosed + sum(&n.children)).sum()
        }
        sum(&profile.roots)
    };
    assert!(
        unclosed_total > 0,
        "census.run (and friends) were still open at the cut"
    );
    // Rendering must not panic and must disclose the damage.
    let text = profile.render_text();
    assert!(text.contains("== span profile"));
}
