//! Symmetry properties across crates: the paper's Section IX-A note that
//! "a partition shape falls under the given type if it fulfills the listed
//! criteria or can be rotated to meet the criteria" requires the whole
//! analysis stack to be invariant under the square's dihedral group.

use hetmmm::partition::{dihedral_images, transpose};
use hetmmm::prelude::*;
use hetmmm::shapes::corner_count;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Condensed shapes classify identically under all eight symmetries.
#[test]
fn archetype_classification_is_dihedral_invariant() {
    let runner = DfaRunner::new(DfaConfig::new(24, Ratio::new(3, 1, 1)));
    for out in runner.run_many(0..10u64) {
        let mut part = out.partition;
        beautify(&mut part);
        let arch = classify(&part);
        for image in dihedral_images(&part) {
            assert_eq!(
                classify(&image),
                arch,
                "classification changed under a symmetry"
            );
        }
    }
}

/// Corner counts are geometric: invariant under every symmetry.
#[test]
fn corner_counts_are_dihedral_invariant() {
    let mut rng = StdRng::seed_from_u64(4);
    let part = random_partition(15, Ratio::new(3, 2, 1), &mut rng);
    for proc in Proc::ALL {
        let c = corner_count(&part, proc);
        for image in dihedral_images(&part) {
            assert_eq!(corner_count(&image, proc), c, "{proc}");
        }
    }
}

/// SCB execution time depends only on VoC and areas, both symmetric, so
/// the model must price every image identically.
#[test]
fn scb_cost_is_dihedral_invariant() {
    let ratio = Ratio::new(4, 2, 1);
    let plat = Platform::new(ratio, 1e9, 8e-9);
    let mut rng = StdRng::seed_from_u64(5);
    let part = random_partition(18, ratio, &mut rng);
    let t = evaluate(Algorithm::Scb, &part, &plat).total;
    for image in dihedral_images(&part) {
        let ti = evaluate(Algorithm::Scb, &image, &plat).total;
        assert!((t - ti).abs() < 1e-15);
    }
}

/// The simulator's SCB totals are likewise placement-independent.
#[test]
fn simulated_comm_is_transpose_invariant() {
    let ratio = Ratio::new(5, 2, 1);
    let plat = Platform::new(ratio, 1e9, 8e-9);
    let c = CandidateType::BlockRectangle.construct(36, ratio).unwrap();
    let a = simulate(&c.partition, &SimConfig::new(plat, Algorithm::Scb));
    let b = simulate(
        &transpose(&c.partition),
        &SimConfig::new(plat, Algorithm::Scb),
    );
    assert!((a.comm_time - b.comm_time).abs() < 1e-15);
    assert_eq!(a.elems_sent, b.elems_sent);
}

/// Theorem 8.1 through the symmetry lens: translating the combined R∪S
/// region of a condensed shape anywhere in the matrix leaves VoC fixed.
#[test]
fn translation_invariance_on_candidates() {
    use hetmmm::shapes::translate_combined;
    let ratio = Ratio::new(10, 1, 1);
    let c = CandidateType::SquareCorner.construct(30, ratio).unwrap();
    // The Square-Corner occupies opposite corners; pull both inward.
    let rr = c.partition.enclosing_rect(Proc::R).unwrap();
    let _ = rr;
    for (di, dj) in [(1isize, 1isize), (2, 0), (0, 3)] {
        if let Some(moved) = translate_combined(&c.partition, di, dj) {
            assert_eq!(moved.voc(), c.partition.voc(), "({di},{dj})");
        }
    }
}
