//! Keep-alive oracles for the bit-plane grids.
//!
//! `Partition` and `NPartition` store ownership as per-processor bit-planes
//! (one `u64` word per 64 columns per line); these properties pin the
//! bit-plane-derived state — occupancy counts, line predicates, enclosing
//! rectangles, plane words — against a from-scratch reference `Vec` of
//! owners rebuilt after every arbitrary `set` sequence. Sizes straddle the
//! 64-bit word boundary so tail-word masking stays covered.

use hetmmm::prelude::*;
use hetmmm_nproc::NPartition;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Reference owner store: a plain row-major `Vec`, recomputed queries.
struct VecOracle {
    n: usize,
    cells: Vec<u8>,
}

impl VecOracle {
    fn new(n: usize, fill: u8) -> VecOracle {
        VecOracle {
            n,
            cells: vec![fill; n * n],
        }
    }

    fn set(&mut self, i: usize, j: usize, p: u8) {
        self.cells[i * self.n + j] = p;
    }

    fn rows_occupied(&self, p: u8) -> usize {
        (0..self.n)
            .filter(|&i| (0..self.n).any(|j| self.cells[i * self.n + j] == p))
            .count()
    }

    fn cols_occupied(&self, p: u8) -> usize {
        (0..self.n)
            .filter(|&j| (0..self.n).any(|i| self.cells[i * self.n + j] == p))
            .count()
    }

    fn rect(&self, p: u8) -> Option<(usize, usize, usize, usize)> {
        let mut found = None;
        for i in 0..self.n {
            for j in 0..self.n {
                if self.cells[i * self.n + j] == p {
                    let (t, b, l, r) = found.unwrap_or((i, i, j, j));
                    found = Some((t.min(i), b.max(i), l.min(j), r.max(j)));
                }
            }
        }
        found
    }

    fn line_word(&self, p: u8, i: usize, w: usize) -> u64 {
        let mut word = 0u64;
        for b in 0..64 {
            let j = w * 64 + b;
            if j < self.n && self.cells[i * self.n + j] == p {
                word |= 1u64 << b;
            }
        }
        word
    }
}

/// Sizes that exercise sub-word, exact-word and multi-word (tail-masked)
/// plane lines.
fn grid_sizes() -> impl Strategy<Value = usize> {
    (0usize..5).prop_map(|i| [7usize, 63, 64, 65, 100][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Three-processor grid: every bit-plane-derived query agrees with the
    /// reference `Vec` after an arbitrary random `set` sequence.
    #[test]
    fn partition_matches_vec_oracle(seed in 0u64..1_000_000, n in grid_sizes()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut part = Partition::new(n, Proc::P);
        let mut oracle = VecOracle::new(n, Proc::P.q());
        for _ in 0..600 {
            let (i, j) = (rng.random_range(0..n), rng.random_range(0..n));
            let p = [Proc::R, Proc::S, Proc::P][rng.random_range(0..3)];
            part.set(i, j, p);
            oracle.set(i, j, p.q());
        }
        for p in [Proc::R, Proc::S, Proc::P] {
            prop_assert_eq!(part.rows_occupied(p), oracle.rows_occupied(p.q()));
            prop_assert_eq!(part.cols_occupied(p), oracle.cols_occupied(p.q()));
            let rect = part.enclosing_rect(p)
                .map(|r| (r.top, r.bottom, r.left, r.right));
            prop_assert_eq!(rect, oracle.rect(p.q()));
            for i in 0..n {
                for w in 0..part.words_per_line() {
                    prop_assert_eq!(
                        part.row_plane_word(p, i, w),
                        oracle.line_word(p.q(), i, w),
                        "row plane mismatch at proc {} row {} word {}", p, i, w
                    );
                }
            }
        }
        part.assert_invariants();
    }

    /// k-processor grid: occupancy, rectangles and plane words from the
    /// bit-planes match the reference `Vec` after arbitrary churn.
    #[test]
    fn npartition_matches_vec_oracle(seed in 0u64..1_000_000, n in grid_sizes(), k in 3usize..=6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut part = NPartition::new(n, k);
        let mut oracle = VecOracle::new(n, 0);
        for _ in 0..600 {
            let (i, j) = (rng.random_range(0..n), rng.random_range(0..n));
            let p = rng.random_range(0..k) as u8;
            part.set(i, j, p);
            oracle.set(i, j, p);
        }
        for p in 0..k as u8 {
            let rows = (0..n).filter(|&i| part.row_has(p, i)).count();
            let cols = (0..n).filter(|&j| part.col_has(p, j)).count();
            prop_assert_eq!(rows, oracle.rows_occupied(p));
            prop_assert_eq!(cols, oracle.cols_occupied(p));
            let rect = part.enclosing_rect(p)
                .map(|r| (r.top, r.bottom, r.left, r.right));
            prop_assert_eq!(rect, oracle.rect(p));
            for i in 0..n {
                for w in 0..part.words_per_line() {
                    prop_assert_eq!(
                        part.row_plane_word(p, i, w),
                        oracle.line_word(p, i, w),
                        "row plane mismatch at proc {} row {} word {}", p, i, w
                    );
                }
            }
            for (i, j) in (0..n).flat_map(|i| (0..n).map(move |j| (i, j))) {
                prop_assert_eq!(part.get(i, j), oracle.cells[i * n + j]);
            }
        }
        part.assert_invariants();
    }
}

/// Single-row and single-column shapes keep exact one-line rectangles on
/// both grids (degenerate bounds, exercised deterministically).
#[test]
fn single_line_partitions_round_trip() {
    let n = 70;
    let mut part = Partition::new(n, Proc::P);
    for j in 10..50 {
        part.set(3, j, Proc::R);
    }
    for i in 60..70 {
        part.set(i, 65, Proc::S);
    }
    assert_eq!(part.enclosing_rect(Proc::R), Some(Rect::new(3, 3, 10, 49)));
    assert_eq!(
        part.enclosing_rect(Proc::S),
        Some(Rect::new(60, 69, 65, 65))
    );
    assert_eq!(part.rows_occupied(Proc::R), 1);
    assert_eq!(part.cols_occupied(Proc::S), 1);
    part.assert_invariants();

    let mut npart = NPartition::new(n, 4);
    for j in 10..50 {
        npart.set(3, j, 1);
    }
    for i in 60..70 {
        npart.set(i, 65, 2);
    }
    let r1 = npart.enclosing_rect(1).unwrap();
    assert_eq!((r1.top, r1.bottom, r1.left, r1.right), (3, 3, 10, 49));
    let r2 = npart.enclosing_rect(2).unwrap();
    assert_eq!((r2.top, r2.bottom, r2.left, r2.right), (60, 69, 65, 65));
    npart.assert_invariants();
}

/// Push behaviour is identical across word-boundary grid sizes: running
/// the deterministic mode ladder from the same seeded random start must
/// keep the probe and the clone-based oracle in agreement (the bit-plane
/// word sweeps feed both).
#[test]
fn probe_agrees_with_reference_across_word_boundaries() {
    use hetmmm_nproc::{push_feasible_n, try_push_n, NDirection};
    for n in [63usize, 64, 65] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut part = NPartition::random(n, &[5, 3, 2], &mut rng);
        for _ in 0..3 {
            for proc in 1..3u8 {
                for dir in NDirection::ALL {
                    let probe = push_feasible_n(&part, proc, dir);
                    let mut clone = part.clone();
                    let oracle = try_push_n(&mut clone, proc, dir).is_some();
                    assert_eq!(probe, oracle, "n={n} proc={proc} {dir:?}");
                    let _ = try_push_n(&mut part, proc, dir);
                }
            }
        }
        part.assert_invariants();
    }
}
