//! Serialization round-trips and degenerate-input behaviour: the
//! housekeeping a downstream user relies on (saving search outcomes,
//! tiny matrices, single-processor corners).

use hetmmm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn partition_roundtrips_through_json() {
    let mut rng = StdRng::seed_from_u64(5);
    let part = random_partition(20, Ratio::new(3, 2, 1), &mut rng);
    let json = serde_json::to_string(&part).expect("serialize");
    let back: Partition = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(part, back);
    assert_eq!(part.state_hash(), back.state_hash());
    assert_eq!(part.voc(), back.voc());
    back.assert_invariants();
}

#[test]
fn dfa_outcome_roundtrips_through_json() {
    let runner = DfaRunner::new(DfaConfig::new(16, Ratio::new(2, 1, 1)));
    let out = runner.run_seed(3);
    let json = serde_json::to_string(&out).expect("serialize");
    let back: DfaOutcome = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(out.partition, back.partition);
    assert_eq!(out.steps, back.steps);
    assert_eq!(out.plan, back.plan);
}

#[test]
fn census_report_roundtrips_through_json() {
    let report = hetmmm::census(&hetmmm::CensusConfig::new(16, Ratio::new(2, 1, 1)).with_runs(4));
    let json = serde_json::to_string(&report).expect("serialize");
    let back: hetmmm::CensusReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(report.counts, back.counts);
    assert_eq!(report.non_shapes, back.non_shapes);
}

#[test]
fn one_by_one_matrix() {
    // Everything must handle N = 1 without panicking.
    let part = Partition::new(1, Proc::P);
    assert_eq!(part.voc(), 0);
    assert!(is_condensed(&part));
    let ratio = Ratio::new(3, 2, 1);
    let plat = Platform::new(ratio, 1e9, 1e-9);
    for algo in Algorithm::ALL {
        let t = evaluate(algo, &part, &plat);
        assert!(t.total.is_finite());
        assert_eq!(t.comm, 0.0);
    }
    let sim = simulate(&part, &SimConfig::new(plat, Algorithm::Scb));
    assert_eq!(sim.elems_sent, 0);
}

#[test]
fn two_by_two_search_terminates() {
    for seed in 0..8u64 {
        let runner = DfaRunner::new(DfaConfig::new(2, Ratio::new(2, 1, 1)));
        let out = runner.run_seed(seed);
        assert!(out.converged);
        out.partition.assert_invariants();
    }
}

#[test]
fn empty_pushable_processors_are_nohup() {
    // All-P partitions: no push, classify degenerate, models finite.
    let mut part = Partition::new(6, Proc::P);
    assert!(try_push_any_type(&mut part, Proc::R, Direction::Down).is_none());
    assert!(try_push_any_type(&mut part, Proc::S, Direction::Up).is_none());
    assert_eq!(beautify(&mut part), 0);
}

#[test]
fn single_row_and_column_shapes() {
    // A one-row R strip cannot be pushed vertically (rect height 1) but
    // can be pushed horizontally only if that would not enlarge the rect —
    // either way, no panic and no VoC increase.
    let part = PartitionBuilder::new(8)
        .rect(Rect::new(3, 3, 1, 6), Proc::R)
        .build();
    for dir in Direction::ALL {
        let mut scratch = part.clone();
        if let Some(ap) = try_push_any_type(&mut scratch, Proc::R, dir) {
            assert!(ap.delta_voc_units <= 0);
        }
        scratch.assert_invariants();
    }
}

#[test]
fn extreme_ratio_keeps_slow_processors_nonempty() {
    // 1000:1:1 — rounding must not starve R or S at reasonable N.
    let ratio = Ratio::new(1000, 1, 1);
    let areas = ratio.areas(100);
    assert!(areas[Proc::R.idx()] > 0);
    assert!(areas[Proc::S.idx()] > 0);
    let mut rng = StdRng::seed_from_u64(1);
    let part = random_partition(100, ratio, &mut rng);
    part.assert_invariants();
}

#[test]
fn recommend_panics_usefully_on_degenerate_sizes() {
    // n = 4 with a mild ratio still has at least the traditional shape.
    let ratio = Ratio::new(2, 1, 1);
    let plat = Platform::new(ratio, 1e9, 1e-9);
    let rec = hetmmm::recommend(4, ratio, &plat, Algorithm::Scb);
    assert!(rec.predicted_total.is_finite());
}

#[test]
fn renders_are_well_formed_for_odd_sizes() {
    use hetmmm::partition::{render_ascii, render_pgm};
    let mut rng = StdRng::seed_from_u64(2);
    for n in [1usize, 3, 7, 13] {
        let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
        let ascii = render_ascii(&part, 10);
        assert_eq!(ascii.lines().count(), n.min(10));
        let pgm = render_pgm(&part);
        assert!(pgm.starts_with("P2\n"));
    }
}
