//! Acceptance tests for ISSUE 8: the injected-regression triage flow and
//! the golden dashboard.
//!
//! The triage test captures two *live* instrumented span streams under
//! `FakeClock` — a baseline and a "latest" with an artificial slowdown
//! injected into one named span — and asserts the triage engine names
//! exactly that span path off a drifted trend. The dashboard test builds
//! every panel from captured streams and asserts byte-identical HTML
//! across same-seed runs.

use hetmmm_obs as obs;
use hetmmm_report::{
    analyze_trend, render_dashboard, triage, Analysis, DashboardInputs, EventLog, RunStore,
    SpanProfile, Timeline, TrendEntry, WinnerMap, TREND_VERSION,
};
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests that touch the process-global facade state.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn reset_obs() {
    obs::uninstall_all_sinks();
    obs::reset_clock();
    obs::set_fine_spans(false);
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
}

/// Capture one synthetic workload's span stream under `FakeClock`:
/// `dfa.run { push.apply { push.clean } }`, with the clock advanced
/// `clean_nanos` inside `push.clean` — the injected-slowdown knob.
fn capture_workload_jsonl(clean_nanos: u64) -> String {
    let clock = Arc::new(obs::FakeClock::new());
    obs::set_clock(clock.clone());
    let buf = obs::SharedBuf::new();
    let id = obs::install_sink(Arc::new(obs::JsonlSink::to_writer(Box::new(buf.clone()))));
    {
        let _run = obs::span("dfa.run");
        clock.advance(5);
        {
            let _apply = obs::span("push.apply");
            clock.advance(3);
            {
                let _clean = obs::span("push.clean");
                clock.advance(clean_nanos);
            }
        }
        clock.advance(2);
    }
    obs::flush_sinks();
    obs::uninstall_sink(id);
    obs::reset_clock();
    String::from_utf8(buf.contents()).expect("utf8 jsonl")
}

fn entry(rev: &str, median: u64) -> TrendEntry {
    TrendEntry {
        v: TREND_VERSION,
        git_rev: rev.into(),
        unix_secs: 0,
        k: 3,
        medians: vec![("fig5_census_slice".into(), median)],
        counters: vec![],
    }
}

#[test]
fn injected_regression_is_triaged_to_the_slow_span_path() {
    let _guard = test_lock();
    reset_obs();
    // Baseline run: push.clean self time 100 ns. Latest: 210 ns — the
    // injected regression. Both streams come from the live facade, not
    // hand-built records.
    let baseline_jsonl = capture_workload_jsonl(100);
    let latest_jsonl = capture_workload_jsonl(210);
    reset_obs();

    let baseline = SpanProfile::from_events(&EventLog::parse_str(&baseline_jsonl).records);
    let latest = SpanProfile::from_events(&EventLog::parse_str(&latest_jsonl).records);
    assert_eq!(
        baseline.roots["dfa.run"].children["push.apply"].children["push.clean"].total_nanos,
        100
    );

    // Matching wall drift in the trend store: stable 100 ns then 210 ns.
    let history: Vec<TrendEntry> = (0..5)
        .map(|i| entry(&format!("r{i}"), 100))
        .chain([entry("r5", 210)])
        .collect();
    let trend = analyze_trend(&history, 10, 1.5);
    assert!(trend.has_drift());

    let report = triage(&trend, Some(&baseline), Some(&latest));
    assert!(report.drift && report.profiled);
    let w = &report.workloads[0];
    assert_eq!(w.workload, "fig5_census_slice");
    assert_eq!(
        w.spans[0].path, "dfa.run;push.apply;push.clean",
        "triage must name the injected span, not a parent: {:?}",
        w.spans
    );
    assert_eq!(w.spans[0].baseline_self_nanos, 100);
    assert_eq!(w.spans[0].latest_self_nanos, 210);
    assert!(
        w.verdict
            .contains("push.clean self-nanos under dfa.run grew 2.1x"),
        "{}",
        w.verdict
    );
    assert!(
        report
            .headline
            .contains("fig5_census_slice is 2.10x slower"),
        "{}",
        report.headline
    );
    // Parents did not move: their self time is identical across runs, so
    // they must not appear as suspects.
    assert!(
        w.spans.iter().all(|s| s.path.ends_with("push.clean")),
        "{:?}",
        w.spans
    );
}

#[test]
fn dashboard_is_byte_identical_across_same_seed_fake_clock_runs() {
    let _guard = test_lock();
    reset_obs();

    let build = || {
        // Same-seed capture each time: the facade assigns fresh span ids
        // and the clock restarts at zero, so raw streams may differ in
        // ids — the dashboard must not care.
        let jsonl = capture_workload_jsonl(40);
        let log = EventLog::parse_str(&jsonl);
        let analysis = Analysis::from_events(&log);
        let timeline = Timeline::from_events(&log.records);
        let mut store = RunStore::default();
        for i in 0..4u64 {
            let line = serde_json::to_string(&entry(&format!("r{i}"), 100 + i)).unwrap();
            store.ingest_history_str(&line);
        }
        let trend = analyze_trend(&store.history, 10, 1.5);
        let triage_report = triage(&trend, None, None);
        let winners = WinnerMap::parse_csv(
            "topology,algorithm,p_r,r_r,winner,predicted_s\n\
             full,SCB,12,1,SC,0.000903\nfull,SCB,12,2,BR,0.000979\n",
        );
        render_dashboard(&DashboardInputs {
            store,
            trend: Some(trend),
            timeline: if timeline.is_empty() {
                None
            } else {
                Some(timeline)
            },
            analysis: Some(analysis),
            winners: Some(winners),
            triage: Some(triage_report),
        })
    };
    let a = build();
    let b = build();
    reset_obs();

    assert_eq!(a, b, "dashboard must be byte-identical under FakeClock");
    for needle in [
        "Bench trend",
        "Optimal-shape winner map",
        "Push funnel",
        "Regression triage",
        "Optimality gap",
        "as of rev r3",
    ] {
        assert!(a.contains(needle), "missing {needle:?}");
    }
}
