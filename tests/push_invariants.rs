//! Cross-crate property tests for the Push operation — the paper's central
//! legality guarantees, checked on arbitrary random partitions.

use hetmmm::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_ratio() -> impl Strategy<Value = Ratio> {
    (1u32..=10, 1u32..=5, 1u32..=3).prop_map(|(a, b, c)| {
        let mut v = [a, b, c];
        v.sort_unstable();
        Ratio::new(v[2], v[1], v[0])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any applied push preserves element counts, never raises VoC, and
    /// leaves the incremental accounting consistent.
    #[test]
    fn push_preserves_invariants(seed in 0u64..10_000, n in 8usize..32, ratio in arb_ratio()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut part = random_partition(n, ratio, &mut rng);
        let elems_before = [part.elems(Proc::R), part.elems(Proc::S), part.elems(Proc::P)];
        let mut voc = part.voc();
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                if let Some(applied) = try_push_any_type(&mut part, proc, dir) {
                    prop_assert!(applied.delta_voc_units <= 0);
                    prop_assert!(part.voc() <= voc);
                    voc = part.voc();
                }
            }
        }
        part.assert_invariants();
        let elems_after = [part.elems(Proc::R), part.elems(Proc::S), part.elems(Proc::P)];
        prop_assert_eq!(elems_before, elems_after);
    }

    /// A failed push must leave the partition bit-identical (rollback).
    #[test]
    fn failed_push_is_identity(seed in 0u64..10_000, n in 8usize..24) {
        let ratio = Ratio::new(3, 2, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, ratio, &mut rng);
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                for ty in PushType::ALL {
                    let mut scratch = part.clone();
                    if try_push(&mut scratch, proc, dir, ty).is_none() {
                        prop_assert_eq!(&scratch, &part);
                        prop_assert_eq!(scratch.state_hash(), part.state_hash());
                    }
                }
            }
        }
    }

    /// Every DFA run terminates in a fixed point (or detected neutral
    /// cycle) with VoC no worse than the start.
    #[test]
    fn dfa_always_converges(seed in 0u64..5_000, n in 10usize..28, ratio in arb_ratio()) {
        let runner = DfaRunner::new(DfaConfig::new(n, ratio));
        let out = runner.run_seed(seed);
        prop_assert!(out.converged, "cap hit at n={} seed={}", n, seed);
        prop_assert!(out.voc_final <= out.voc_initial);
        out.partition.assert_invariants();
    }

    /// Beautify is a fixed-point operator: VoC monotone, invariants hold,
    /// and a partition it leaves without residual pushes stays put.
    #[test]
    fn beautify_is_monotone(seed in 0u64..5_000, n in 10usize..24) {
        let ratio = Ratio::new(2, 2, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut part = random_partition(n, ratio, &mut rng);
        let voc0 = part.voc();
        beautify(&mut part);
        prop_assert!(part.voc() <= voc0);
        part.assert_invariants();
        if is_condensed(&part) {
            let snapshot = part.clone();
            let extra = beautify(&mut part);
            prop_assert_eq!(extra, 0);
            prop_assert_eq!(part, snapshot);
        }
    }
}

/// Whenever Type One applies, the any-type dispatcher must also find a
/// legal move (possibly under a different type).
#[test]
fn type_one_implies_some_type_applies() {
    let ratio = Ratio::new(2, 1, 1);
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(20, ratio, &mut rng);
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                let mut a = part.clone();
                if try_push(&mut a, proc, dir, PushType::One).is_some() {
                    let mut b = part.clone();
                    assert!(
                        try_push_any_type(&mut b, proc, dir).is_some(),
                        "any-type must succeed when Type One does"
                    );
                }
            }
        }
    }
}
