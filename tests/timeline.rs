//! Integration tests for the timeline/attribution layer: a seeded
//! executor run under `FakeClock` exports a byte-identical Chrome trace,
//! segments reconstruct into a consistent per-worker timeline with a
//! critical path bounded by the makespan, and every schema-v4 record the
//! executor emits round-trips through the JSONL wire format.
//!
//! The obs facade is process-global, so every test serializes on
//! [`test_lock`] and restores global state before releasing it.

use hetmmm::mmm::{multiply_partitioned_with, ExecConfig, Matrix};
use hetmmm::prelude::*;
use hetmmm_obs as obs;
use hetmmm_report::Timeline;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests that touch the process-global facade state.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Restore pristine global state (no sinks, real clock, metrics off).
fn reset_obs() {
    obs::uninstall_all_sinks();
    obs::reset_clock();
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
}

fn striped_partition(n: usize) -> Partition {
    Partition::from_fn(n, |i, _| {
        if i < n / 3 {
            Proc::P
        } else if i < 2 * n / 3 {
            Proc::R
        } else {
            Proc::S
        }
    })
}

/// Run one instrumented executor multiply and return the captured records.
fn capture_run(n: usize, config: &ExecConfig) -> Vec<obs::EventRecord> {
    let sink = obs::CollectSink::new();
    let id = obs::install_sink(sink.clone());
    let part = striped_partition(n);
    let a = Matrix::from_fn(n, |i, j| (i * n + j) as f64);
    let b = Matrix::identity(n);
    let (_, stats) = multiply_partitioned_with(&a, &b, &part, config).expect("multiply");
    assert_eq!(stats.recovery.faults_detected, 0, "clean run expected");
    obs::uninstall_sink(id);
    sink.take()
}

#[test]
fn fake_clock_executor_trace_is_byte_identical() {
    let _guard = test_lock();
    reset_obs();
    let run = || {
        let fake = Arc::new(obs::FakeClock::new());
        obs::set_clock(fake.clone());
        // Capacity >= step count so no sender ever finds a channel full:
        // `blocked` segments depend on thread scheduling and would make
        // the trace run-dependent.
        let config = ExecConfig::default()
            .with_channel_capacity(12)
            .with_clock(fake);
        let records = capture_run(12, &config);
        obs::reset_clock();
        Timeline::from_events(&records).chrome_trace_json()
    };
    let first = run();
    let second = run();
    reset_obs();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same-seed FakeClock traces must be identical"
    );
    // An unadvanced FakeClock stamps every segment at zero; the trace is
    // still structurally complete.
    assert!(first.contains("\"ph\":\"X\""));
    assert!(first.contains("\"thread_name\""));
    assert!(first.contains("compute"));
}

#[test]
fn executor_segments_reconstruct_per_worker_timelines() {
    let _guard = test_lock();
    reset_obs();
    // Real monotonic clock: segments carry genuine durations, so the
    // timeline's attribution invariants are exercised with advancing time.
    // The empty fault plan arms checkpointing (clean runs skip it) without
    // injecting any fault.
    let config = ExecConfig::default().with_fault_plan(FaultPlan::new());
    let records = capture_run(12, &config);
    reset_obs();

    let tl = Timeline::from_events(&records);
    assert!(!tl.is_empty(), "instrumented run must emit segments");
    let summaries = tl.summarize();
    assert_eq!(summaries.len(), 3, "one summary per processor");
    for (worker, s) in &summaries {
        assert!(
            s.compute_nanos > 0,
            "{worker} attributes compute time: {s:?}"
        );
        assert!(
            s.exe_nanos() >= s.compute_nanos,
            "{worker} exe covers compute"
        );
        assert!(
            (0.0..=1.0).contains(&s.overlap_fraction),
            "{worker} overlap fraction in range: {}",
            s.overlap_fraction
        );
    }
    // Every worker talks to both peers at every step: send and recv-wait
    // segments must be present and peer-directed.
    let mut kinds: Vec<&str> = tl.segments.iter().map(|s| s.kind.as_str()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert!(kinds.contains(&"send"));
    assert!(kinds.contains(&"recv-wait"));
    assert!(kinds.contains(&"checkpoint"));
    for seg in &tl.segments {
        assert!(seg.end_nanos >= seg.start_nanos, "well-formed: {seg:?}");
        let needs_peer = matches!(seg.kind.as_str(), "send" | "recv-wait" | "blocked");
        assert_eq!(needs_peer, !seg.peer.is_empty(), "peer discipline: {seg:?}");
    }

    // The critical path ends at the makespan and never exceeds it.
    let path = tl.critical_path();
    assert!(!path.segments.is_empty());
    assert!(path.length_nanos > 0);
    assert!(path.length_nanos <= tl.makespan_nanos());
    let last = path.segments.last().expect("non-empty path");
    assert_eq!(
        last.end_nanos,
        tl.segments
            .iter()
            .map(|s| s.end_nanos)
            .max()
            .expect("segments"),
        "critical path terminates at the latest-ending segment"
    );
}

#[test]
fn schema_v4_executor_records_round_trip_the_wire_format() {
    let _guard = test_lock();
    reset_obs();
    let fake = Arc::new(obs::FakeClock::new());
    obs::set_clock(fake.clone());
    let config = ExecConfig::default().with_clock(fake);
    let records = capture_run(12, &config);
    reset_obs();

    assert!(!records.is_empty());
    let mut segments = 0usize;
    for record in &records {
        assert_eq!(record.v, obs::SCHEMA_VERSION, "executor stamps v4");
        let line = serde_json::to_string(record).expect("serialize record");
        let back: obs::EventRecord = serde_json::from_str(&line).expect("parse record");
        assert_eq!(&back, record, "lossless wire round-trip");
        if matches!(record.event, obs::EventKind::ExecSegment { .. }) {
            segments += 1;
        }
    }
    assert!(segments > 0, "run must carry ExecSegment events");
}
