//! Integration tests for the observability layer (`hetmmm-obs`): event
//! determinism under a fake clock, manifest round-trips, executor event
//! streams, and serde round-trips of the stats types that manifests embed.
//!
//! The obs facade is process-global, so every test that installs sinks or
//! swaps the clock serializes on [`test_lock`] and restores global state
//! before releasing it.

use hetmmm::prelude::*;
use hetmmm_obs as obs;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serialize tests that touch the process-global facade state.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Restore pristine global state (no sinks, real clock, metrics off).
fn reset_obs() {
    obs::uninstall_all_sinks();
    obs::reset_clock();
    obs::metrics().set_enabled(false);
    obs::metrics().reset();
}

/// Run a seeded DFA search with a fake clock and a JSONL sink, returning
/// the raw bytes the sink wrote.
fn capture_dfa_jsonl(seed: u64) -> Vec<u8> {
    let fake = Arc::new(obs::FakeClock::new());
    obs::set_clock(fake);
    let buf = obs::SharedBuf::new();
    let id = obs::install_sink(Arc::new(obs::JsonlSink::to_writer(Box::new(buf.clone()))));
    let runner = DfaRunner::new(DfaConfig::new(24, Ratio::new(2, 1, 1)));
    let out = runner.run(seed).expect("seed converges");
    assert!(out.converged);
    obs::uninstall_sink(id);
    obs::reset_clock();
    buf.contents()
}

#[test]
fn seeded_dfa_run_emits_deterministic_jsonl() {
    let _guard = test_lock();
    reset_obs();
    let first = capture_dfa_jsonl(17);
    let second = capture_dfa_jsonl(17);
    reset_obs();
    assert!(!first.is_empty(), "instrumented run must emit events");
    // Same seed + fake clock => byte-identical artifact. (Span ids are
    // process-global and differ between the two runs, so compare with the
    // span-id fields normalized out. The JSONL writer emits compact JSON,
    // so `"span":<digits>` is the exact textual form of those fields.)
    let normalize = |bytes: &[u8]| -> String {
        let text = String::from_utf8(bytes.to_vec()).unwrap();
        let mut out = String::with_capacity(text.len());
        let mut rest = text.as_str();
        while let Some(at) = rest.find("\"span\":") {
            let after = at + "\"span\":".len();
            out.push_str(&rest[..after]);
            out.push('0');
            rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        out.push_str(rest);
        out
    };
    assert_eq!(normalize(&first), normalize(&second));
}

#[test]
fn dfa_event_stream_is_schema_valid_and_well_formed() {
    let _guard = test_lock();
    reset_obs();
    let bytes = capture_dfa_jsonl(17);
    reset_obs();
    let text = String::from_utf8(bytes).unwrap();
    let records: Vec<obs::EventRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every line parses"))
        .collect();
    assert!(records.iter().all(|r| r.v == obs::SCHEMA_VERSION));
    // Exactly one run: one start, one end, matching span pair around them.
    let starts = records
        .iter()
        .filter(|r| matches!(r.event, obs::EventKind::DfaRunStart { .. }))
        .count();
    let ends: Vec<&obs::EventRecord> = records
        .iter()
        .filter(|r| matches!(r.event, obs::EventKind::DfaRunEnd { .. }))
        .collect();
    assert_eq!(starts, 1);
    assert_eq!(ends.len(), 1);
    match &ends[0].event {
        obs::EventKind::DfaRunEnd {
            steps,
            termination,
            voc_initial,
            voc_final,
            ..
        } => {
            assert!(*steps > 0);
            assert!(voc_final <= voc_initial);
            assert!(["FixedPoint", "NeutralCycle"].contains(&termination.as_str()));
        }
        _ => unreachable!(),
    }
    // Push events carry valid types and count up to the reported steps.
    let pushes = records
        .iter()
        .filter_map(|r| match &r.event {
            obs::EventKind::DfaPush { push_type, .. } => Some(*push_type),
            _ => None,
        })
        .collect::<Vec<u8>>();
    assert!(pushes.iter().all(|t| (1..=6).contains(t)));
    match &ends[0].event {
        obs::EventKind::DfaRunEnd { steps, .. } => assert_eq!(pushes.len() as u64, *steps),
        _ => unreachable!(),
    }
}

#[test]
fn dfa_metrics_count_pushes_and_convergence() {
    let _guard = test_lock();
    reset_obs();
    obs::metrics().set_enabled(true);
    let runner = DfaRunner::new(DfaConfig::new(24, Ratio::new(2, 1, 1)));
    let out = runner.run(17).expect("seed converges");
    let snapshot = obs::metrics().snapshot();
    reset_obs();
    let push_total: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("dfa.push."))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(push_total, out.steps as u64);
    let hist = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "dfa.steps_to_convergence")
        .expect("histogram registered");
    assert_eq!(hist.count, 1);
    assert_eq!(hist.sum, out.steps as u64);
}

#[test]
fn executor_emits_send_recv_and_volume_metrics() {
    let _guard = test_lock();
    reset_obs();
    obs::metrics().set_enabled(true);
    let sink = obs::CollectSink::new();
    let id = obs::install_sink(sink.clone());

    let n = 12;
    let part = Partition::from_fn(n, |i, _| {
        if i < 4 {
            Proc::P
        } else if i < 8 {
            Proc::R
        } else {
            Proc::S
        }
    });
    let a = Matrix::from_fn(n, |i, j| (i * n + j) as f64);
    let b = Matrix::identity(n);
    let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();

    obs::uninstall_sink(id);
    let snapshot = obs::metrics().snapshot();
    reset_obs();

    let events = sink.take();
    let sent_by_event: u64 = events
        .iter()
        .filter_map(|r| match &r.event {
            obs::EventKind::ExecSend { elems, .. } => Some(*elems),
            _ => None,
        })
        .sum();
    let recv_by_event: u64 = events
        .iter()
        .filter_map(|r| match &r.event {
            obs::EventKind::ExecRecv { elems, .. } => Some(*elems),
            _ => None,
        })
        .sum();
    assert_eq!(sent_by_event, stats.total_sent());
    assert_eq!(recv_by_event, stats.total_sent());

    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    for p in Proc::ALL {
        let pe = &stats.per_proc[p.idx()];
        assert_eq!(counter(&format!("exec.updates.{p}")), pe.updates);
        assert_eq!(counter(&format!("exec.elems_sent.{p}")), pe.elems_sent);
    }
    assert_eq!(counter("exec.recoveries"), 0);
    let wait = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "exec.recv_wait_nanos")
        .expect("recv wait histogram registered");
    assert!(wait.count > 0);
}

#[test]
fn executor_failure_emits_blame_and_repartition() {
    let _guard = test_lock();
    reset_obs();
    let sink = obs::CollectSink::new();
    let id = obs::install_sink(sink.clone());

    let n = 12;
    let part = Partition::from_fn(n, |i, _| {
        if i < 4 {
            Proc::R
        } else if i < 8 {
            Proc::S
        } else {
            Proc::P
        }
    });
    let a = Matrix::from_fn(n, |i, j| (i + 2 * j) as f64);
    let b = Matrix::identity(n);
    let config = ExecConfig::default()
        .with_recv_timeout(std::time::Duration::from_millis(200))
        .with_fault_plan(FaultPlan::crash(Proc::S, n / 2));
    let (_, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
    assert_eq!(stats.recovery.faults_detected, 1);

    obs::uninstall_sink(id);
    reset_obs();

    let events = sink.take();
    let blames: Vec<&obs::EventRecord> = events
        .iter()
        .filter(|r| matches!(r.event, obs::EventKind::ExecBlame { .. }))
        .collect();
    assert_eq!(blames.len(), 1);
    match &blames[0].event {
        obs::EventKind::ExecBlame { dead, weights } => {
            assert_eq!(dead, &Proc::S.to_string());
            assert_eq!(weights.len(), 3);
            assert!(weights[Proc::S.idx()] >= 100, "crash confession weight");
        }
        _ => unreachable!(),
    }
    let reparts: Vec<&obs::EventRecord> = events
        .iter()
        .filter(|r| matches!(r.event, obs::EventKind::ExecRepartition { .. }))
        .collect();
    assert_eq!(reparts.len(), 1);
    match &reparts[0].event {
        obs::EventKind::ExecRepartition {
            dead,
            reassigned,
            survivors,
        } => {
            assert_eq!(dead, &Proc::S.to_string());
            assert_eq!(*reassigned, stats.recovery.elems_reassigned);
            assert_eq!(*survivors, 2);
        }
        _ => unreachable!(),
    }
    assert!(events
        .iter()
        .any(|r| matches!(r.event, obs::EventKind::ExecPeerLost { .. })));
}

#[test]
fn simulator_emits_run_and_phase_events() {
    let _guard = test_lock();
    reset_obs();
    let sink = obs::CollectSink::new();
    let id = obs::install_sink(sink.clone());

    let part = Partition::from_fn(12, |i, _| {
        if i < 4 {
            Proc::P
        } else if i < 8 {
            Proc::R
        } else {
            Proc::S
        }
    });
    let platform = Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9);
    let result = simulate(
        &part,
        &SimConfig::new(platform, Algorithm::Scb).with_spans(),
    );

    obs::uninstall_sink(id);
    reset_obs();

    let events = sink.take();
    let runs: Vec<&obs::EventRecord> = events
        .iter()
        .filter(|r| matches!(r.event, obs::EventKind::SimRun { .. }))
        .collect();
    assert_eq!(runs.len(), 1);
    match &runs[0].event {
        obs::EventKind::SimRun {
            algorithm,
            comm_time,
            exe_time,
            messages,
            elems_sent,
        } => {
            assert_eq!(algorithm, &Algorithm::Scb.to_string());
            assert!((comm_time - result.comm_time).abs() < 1e-15);
            assert!((exe_time - result.exe_time).abs() < 1e-15);
            assert_eq!(*messages, result.messages as u64);
            assert_eq!(*elems_sent, result.elems_sent);
        }
        _ => unreachable!(),
    }
    let phases = events
        .iter()
        .filter(|r| matches!(r.event, obs::EventKind::SimPhase { .. }))
        .count();
    assert_eq!(phases, result.spans.len());
}

#[test]
fn manifest_embeds_metrics_and_round_trips() {
    let _guard = test_lock();
    reset_obs();
    obs::metrics().set_enabled(true);
    let runner = DfaRunner::new(DfaConfig::new(16, Ratio::new(2, 1, 1)));
    let _ = runner.run_seed(5);
    let manifest = obs::RunManifest {
        v: obs::MANIFEST_VERSION,
        bin: "observability_test".into(),
        args: vec![("n".into(), "16".into()), ("seed".into(), "5".into())],
        seed: Some(5),
        git_rev: obs::git_rev(),
        started_unix_ms: 0,
        wall_nanos: 1,
        events_emitted: obs::events_emitted(),
        metrics: obs::metrics().snapshot(),
    };
    reset_obs();
    assert!(manifest
        .metrics
        .counters
        .iter()
        .any(|(name, v)| name.starts_with("dfa.push.") && *v > 0));
    let json = serde_json::to_string(&manifest).unwrap();
    let back: obs::RunManifest = serde_json::from_str(&json).unwrap();
    assert_eq!(back, manifest);
}

#[test]
fn stats_types_round_trip_for_manifest_embedding() {
    // ExecStats / RecoveryStats / ProcExec and the nproc stats types are
    // embedded in artifacts; their serde round-trips must be lossless.
    let stats = {
        let mut s = hetmmm_mmm_stats_sample();
        s.recovery = RecoveryStats {
            faults_detected: 1,
            elems_reassigned: 42,
            retries: 1,
            recv_retries: 3,
            attempt_retries: 2,
            backoff_nanos: 50_000_000,
            resumed_steps: 7,
            replayed_steps: 9,
            checkpoints: 21,
            degraded_mode: true,
        };
        s
    };
    let json = serde_json::to_string(&stats).unwrap();
    let back: hetmmm::prelude::ExecStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);

    let runner = hetmmm_nproc::NDfaRunner::new(hetmmm_nproc::NDfaConfig::new(16, vec![4, 2, 1]));
    let out = runner.run_seed(3);
    let outcome_stats = hetmmm_nproc::stats::outcome_stats(&out.partition);
    let json = serde_json::to_string(&outcome_stats).unwrap();
    let back: hetmmm_nproc::OutcomeStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outcome_stats);
}

fn hetmmm_mmm_stats_sample() -> hetmmm::prelude::ExecStats {
    let mut stats = hetmmm::prelude::ExecStats::default();
    stats.per_proc[0].updates = 100;
    stats.per_proc[0].elems_sent = 7;
    stats.per_proc[1].elems_recv = 7;
    stats.per_proc[2].messages = 3;
    stats
}

#[test]
fn fake_clock_drives_span_durations_and_exec_config() {
    let _guard = test_lock();
    reset_obs();
    let fake = Arc::new(obs::FakeClock::new());
    obs::set_clock(fake.clone());
    let sink = obs::CollectSink::new();
    let id = obs::install_sink(sink.clone());
    {
        let _span = obs::span("test.window");
        fake.advance(12_345);
    }
    obs::uninstall_sink(id);
    obs::reset_clock();
    let events = sink.take();
    match &events[1].event {
        obs::EventKind::SpanEnd { nanos, .. } => assert_eq!(*nanos, 12_345),
        other => panic!("unexpected {other:?}"),
    }
    // ExecConfig accepts an injected clock (compiles + runs with it).
    let config = ExecConfig::default().with_clock(Arc::new(obs::MonotonicClock));
    let part = Partition::new(6, Proc::P);
    let a = Matrix::identity(6);
    let (c, _) = multiply_partitioned_with(&a, &a, &part, &config).unwrap();
    assert!(c.max_abs_diff(&a) < 1e-12);
    reset_obs();
}
