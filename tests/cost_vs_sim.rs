//! The closed-form models (Eqs. 2–9) and the message-level simulator must
//! agree wherever they share assumptions, and the Fig. 13 / Fig. 14
//! crossover must be consistent between the closed forms, the grid VoC, and
//! the simulator.

use hetmmm::cost::closed::ShapeCost;
use hetmmm::cost::scb_comm_norm;
use hetmmm::prelude::*;
use hetmmm::shapes::candidates::all_feasible;

fn platform(ratio: Ratio) -> Platform {
    Platform::new(ratio, 1e9, 8.0 / 1e9)
}

#[test]
fn sim_equals_model_for_scb_on_all_candidates() {
    for ratio in [
        Ratio::new(2, 1, 1),
        Ratio::new(5, 2, 1),
        Ratio::new(10, 1, 1),
    ] {
        let plat = platform(ratio);
        for c in all_feasible(48, ratio) {
            let model = evaluate(Algorithm::Scb, &c.partition, &plat);
            let sim = simulate(&c.partition, &SimConfig::new(plat, Algorithm::Scb));
            assert!(
                (sim.exe_time - model.total).abs() < 1e-12,
                "{} at {ratio}",
                c.ty
            );
            assert_eq!(sim.elems_sent, c.partition.voc());
        }
    }
}

#[test]
fn sim_equals_model_for_pcb_pco_in_broadcast_mode() {
    let ratio = Ratio::new(4, 2, 1);
    let plat = platform(ratio);
    for c in all_feasible(48, ratio) {
        for algo in [Algorithm::Pcb, Algorithm::Pco] {
            let model = evaluate(algo, &c.partition, &plat);
            let sim = simulate(&c.partition, &SimConfig::new(plat, algo).with_broadcast());
            assert!(
                (sim.exe_time - model.total).abs() < 1e-9,
                "{algo} {} : sim {} model {}",
                c.ty,
                sim.exe_time,
                model.total
            );
        }
    }
}

#[test]
fn sco_sim_equals_model() {
    let ratio = Ratio::new(3, 2, 1);
    let plat = platform(ratio);
    for c in all_feasible(36, ratio) {
        let model = evaluate(Algorithm::Sco, &c.partition, &plat);
        let sim = simulate(&c.partition, &SimConfig::new(plat, Algorithm::Sco));
        assert!((sim.exe_time - model.total).abs() < 1e-9, "{}", c.ty);
    }
}

#[test]
fn star_topology_never_faster() {
    let ratio = Ratio::new(5, 2, 1);
    let full = platform(ratio);
    let star = full.with_star(Proc::P);
    for c in all_feasible(36, ratio) {
        for algo in Algorithm::ALL {
            let a = simulate(&c.partition, &SimConfig::new(full, algo));
            let b = simulate(&c.partition, &SimConfig::new(star, algo));
            assert!(
                b.exe_time >= a.exe_time - 1e-12,
                "{algo} {}: star beat fully-connected",
                c.ty
            );
        }
    }
}

#[test]
fn closed_form_grid_and_simulator_agree_on_the_crossover() {
    // Along R_r = S_r = 1 the three layers of the reproduction must agree
    // about who wins SCB communication at every ratio away from the
    // boundary: the normalized closed forms (Fig. 13), the grid VoC of the
    // constructed candidates, and the simulated communication time.
    let n = 200;
    for p in [2u32, 3, 5, 8, 15, 20, 25] {
        let ratio = Ratio::new(p, 1, 1);
        let (Some(sc_norm), Some(br_norm)) = (
            scb_comm_norm(ShapeCost::SquareCorner, ratio),
            scb_comm_norm(ShapeCost::BlockRectangle, ratio),
        ) else {
            continue;
        };
        // Skip ratios too close to the analytic tie for grid granularity.
        if (sc_norm - br_norm).abs() < 0.05 {
            continue;
        }
        let closed_sc_wins = sc_norm < br_norm;

        let sc = CandidateType::SquareCorner.construct(n, ratio);
        let br = CandidateType::BlockRectangle.construct(n, ratio).unwrap();
        let Some(sc) = sc else { continue };
        let grid_sc_wins = sc.partition.voc() < br.partition.voc();
        assert_eq!(closed_sc_wins, grid_sc_wins, "grid vs closed at {p}:1:1");

        let plat = platform(ratio);
        let t_sc = simulate(&sc.partition, &SimConfig::new(plat, Algorithm::Scb)).comm_time;
        let t_br = simulate(&br.partition, &SimConfig::new(plat, Algorithm::Scb)).comm_time;
        assert_eq!(closed_sc_wins, t_sc < t_br, "sim vs closed at {p}:1:1");
    }
}

#[test]
fn fig14_shape_holds_in_the_simulator() {
    // Scaled-down Fig. 14 (N = 500 instead of 5000): Square-Corner comm
    // falls monotonically with heterogeneity and overtakes Block-Rectangle.
    let n = 500;
    let mut last_sc = f64::MAX;
    let mut sc_won = false;
    for p in [4u32, 6, 10, 15, 25] {
        let ratio = Ratio::new(p, 1, 1);
        let plat = Platform {
            ratio,
            base_speed: 1e9,
            network: HockneyModel::from_bandwidth(1000e6, 8.0),
            topology: Topology::FullyConnected,
        };
        let sc = CandidateType::SquareCorner.construct(n, ratio).unwrap();
        let br = CandidateType::BlockRectangle.construct(n, ratio).unwrap();
        let t_sc = simulate(&sc.partition, &SimConfig::new(plat, Algorithm::Scb)).comm_time;
        let t_br = simulate(&br.partition, &SimConfig::new(plat, Algorithm::Scb)).comm_time;
        assert!(t_sc < last_sc, "SC comm must fall with heterogeneity");
        last_sc = t_sc;
        if t_sc < t_br {
            sc_won = true;
        }
    }
    assert!(sc_won, "Square-Corner must overtake Block-Rectangle");
}
