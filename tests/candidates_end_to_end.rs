//! End-to-end behaviour of the candidate-shape layer and the
//! recommendation API across the paper's ratio set.

use hetmmm::prelude::*;
use hetmmm::shapes::candidates::{all_feasible, square_corner_feasible};
use hetmmm::shapes::classify_tolerant;

#[test]
fn every_candidate_is_a_condensed_archetype_a() {
    for ratio in Ratio::paper_ratios() {
        for c in all_feasible(48, ratio) {
            // Tolerant classification: the slack-column Traditional-
            // Rectangle keeps a dense two-line ragged region (see the
            // constructor docs) the strict Fig. 3 definition rejects.
            assert_eq!(
                classify_tolerant(&c.partition),
                Archetype::A,
                "{} at {ratio}",
                c.ty
            );
            assert!(
                is_condensed(&c.partition),
                "{} at {ratio} still admits a push",
                c.ty
            );
        }
    }
}

#[test]
fn feasibility_matches_theorem_9_1_across_paper_ratios() {
    for ratio in Ratio::paper_ratios() {
        let has_sc = all_feasible(120, ratio)
            .iter()
            .any(|c| c.ty == CandidateType::SquareCorner);
        // Grid feasibility at n=120 matches the analytic condition except
        // within discretization range of the boundary (2:1:1 sits exactly
        // on it).
        if ratio != Ratio::new(2, 1, 1) {
            assert_eq!(has_sc, square_corner_feasible(ratio), "{ratio}");
        }
    }
}

#[test]
fn recommendation_tracks_heterogeneity() {
    let t_send = 50.0 / 1e9;
    // Communication-bound platform: at 25:1:1 the Square-Corner must win
    // SCB; at 2:2:1 it cannot exist, and a rectangular layout wins.
    let high = Ratio::new(25, 1, 1);
    let rec = hetmmm::recommend(120, high, &Platform::new(high, 1e9, t_send), Algorithm::Scb);
    assert_eq!(rec.candidate.ty, CandidateType::SquareCorner);

    let low = Ratio::new(2, 2, 1);
    let rec = hetmmm::recommend(120, low, &Platform::new(low, 1e9, t_send), Algorithm::Scb);
    assert_ne!(rec.candidate.ty, CandidateType::SquareCorner);
}

#[test]
fn recommended_shape_beats_the_field_in_simulation() {
    // The model-based recommendation must be confirmed by the independent
    // message-level simulator.
    let ratio = Ratio::new(10, 1, 1);
    let plat = Platform::new(ratio, 1e9, 50.0 / 1e9);
    let rec = hetmmm::recommend(96, ratio, &plat, Algorithm::Scb);
    let best_sim = simulate(
        &rec.candidate.partition,
        &SimConfig::new(plat, Algorithm::Scb),
    )
    .exe_time;
    for c in all_feasible(96, ratio) {
        let t = simulate(&c.partition, &SimConfig::new(plat, Algorithm::Scb)).exe_time;
        assert!(
            best_sim <= t + 1e-12,
            "{} simulated faster than the recommendation",
            c.ty
        );
    }
}

#[test]
fn candidate_voc_ordering_respects_fig13_regions() {
    // Two probes of the Fig. 13 surface: deep in the Square-Corner region
    // and deep in the Block-Rectangle region.
    let n = 200;
    let sc_region = Ratio::new(20, 1, 1);
    let sc = CandidateType::SquareCorner.construct(n, sc_region).unwrap();
    let br = CandidateType::BlockRectangle
        .construct(n, sc_region)
        .unwrap();
    assert!(sc.partition.voc() < br.partition.voc());

    let br_region = Ratio::new(5, 4, 1);
    if let Some(sc) = CandidateType::SquareCorner.construct(n, br_region) {
        let br = CandidateType::BlockRectangle
            .construct(n, br_region)
            .unwrap();
        assert!(br.partition.voc() < sc.partition.voc());
    }
}

#[test]
fn dfa_never_beats_the_best_candidate_by_much() {
    // The six candidates are postulated optimal; a search outcome
    // dramatically below the best candidate VoC would falsify the
    // enumeration (small slack for discrete local effects like the
    // Archetype D sandwich).
    for ratio in [Ratio::new(2, 1, 1), Ratio::new(5, 2, 1)] {
        let n = 40;
        let best = all_feasible(n, ratio)
            .into_iter()
            .map(|c| c.partition.voc())
            .min()
            .unwrap();
        let runner = DfaRunner::new(DfaConfig::new(n, ratio));
        for out in runner.run_many(0..12u64) {
            let mut part = out.partition;
            beautify(&mut part);
            assert!(
                part.voc() as f64 >= best as f64 * 0.75,
                "{ratio}: search found VoC {} far below best candidate {best}",
                part.voc()
            );
        }
    }
}
