//! Parity between the three-processor machinery and its k-processor
//! generalization: for `k = 3` the two implementations must agree on the
//! quantities they both define.

use hetmmm::prelude::*;
use hetmmm_nproc::{NDfaConfig, NDfaRunner, NPartition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirror a three-processor `Partition` into an `NPartition` with the id
/// mapping P→0, R→1, S→2 (fastest first).
fn mirror(part: &Partition) -> NPartition {
    let n = part.n();
    let mut npart = NPartition::new(n, 3);
    for i in 0..n {
        for j in 0..n {
            let id = match part.get(i, j) {
                Proc::P => 0u8,
                Proc::R => 1,
                Proc::S => 2,
            };
            npart.set(i, j, id);
        }
    }
    npart
}

#[test]
fn voc_agrees_between_representations() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..10 {
        let part = random_partition(24, Ratio::new(4, 2, 1), &mut rng);
        let npart = mirror(&part);
        assert_eq!(part.voc(), npart.voc());
        assert_eq!(part.voc_units(), npart.voc_units());
        npart.assert_invariants();
    }
}

#[test]
fn enclosing_rects_agree() {
    let mut rng = StdRng::seed_from_u64(12);
    let part = random_partition(20, Ratio::new(3, 2, 1), &mut rng);
    let npart = mirror(&part);
    for (proc, id) in [(Proc::P, 0u8), (Proc::R, 1), (Proc::S, 2)] {
        let a = part.enclosing_rect(proc).expect("non-empty");
        let b = npart.enclosing_rect(id).expect("non-empty");
        assert_eq!(
            (a.top, a.bottom, a.left, a.right),
            (b.top, b.bottom, b.left, b.right)
        );
    }
}

#[test]
fn element_counts_agree() {
    let mut rng = StdRng::seed_from_u64(13);
    let part = random_partition(30, Ratio::new(5, 3, 1), &mut rng);
    let npart = mirror(&part);
    assert_eq!(part.elems(Proc::P), npart.elems(0));
    assert_eq!(part.elems(Proc::R), npart.elems(1));
    assert_eq!(part.elems(Proc::S), npart.elems(2));
}

#[test]
fn k3_search_reaches_comparable_quality() {
    // The generalized engine collapses the six push types into three
    // modes, so fixed points differ in detail — but the achieved VoC
    // should be in the same band as the specialized engine across seeds.
    let n = 30;
    let ratio = Ratio::new(2, 1, 1);

    let runner3 = DfaRunner::new(DfaConfig::new(n, ratio));
    let best3 = runner3
        .run_many(0..12u64)
        .into_iter()
        .map(|o| o.voc_final)
        .min()
        .unwrap();

    let runner_n = NDfaRunner::new(NDfaConfig::new(n, vec![2, 1, 1]));
    let best_n = runner_n
        .run_many(0..12u64)
        .into_iter()
        .map(|o| o.voc_final)
        .min()
        .unwrap();

    let lo = best3.min(best_n) as f64;
    let hi = best3.max(best_n) as f64;
    assert!(
        hi / lo < 1.5,
        "engines diverged: specialized best {best3}, generalized best {best_n}"
    );
}

#[test]
fn generalized_push_preserves_conservation_at_k3() {
    use hetmmm_nproc::{try_push_n, NDirection};
    let mut rng = StdRng::seed_from_u64(14);
    let part = random_partition(20, Ratio::new(3, 1, 1), &mut rng);
    let mut npart = mirror(&part);
    let before: Vec<usize> = (0..3).map(|p| npart.elems(p as u8)).collect();
    let mut voc = npart.voc();
    for proc in 1..3u8 {
        for dir in NDirection::ALL {
            if let Some(ap) = try_push_n(&mut npart, proc, dir) {
                assert!(ap.delta_voc_units <= 0);
                assert!(npart.voc() <= voc);
                voc = npart.voc();
            }
        }
    }
    let after: Vec<usize> = (0..3).map(|p| npart.elems(p as u8)).collect();
    assert_eq!(before, after);
    npart.assert_invariants();
}
