//! Fault-tolerance integration: for *any* partition, a single worker
//! crash at *any* pivot step must be absorbed by survivor
//! re-partitioning — the recovered product matches the serial reference
//! exactly, and the recovery counters account for every re-assigned cell.

use hetmmm::error::HetmmmError;
use hetmmm::mmm::{
    kij_serial, multiply_partitioned, multiply_partitioned_with, ExecConfig, FaultKind, FaultPlan,
    Matrix,
};
use hetmmm::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random partitions, random victim, random crash step: the executor
    /// must return `Ok` with a correct C, one detected fault, one retry,
    /// and exactly the dead worker's cells re-assigned.
    #[test]
    fn any_single_crash_is_survivable(
        seed in 0u64..10_000,
        n in 6usize..24,
        proc_idx in 0usize..3,
        step_seed in 0usize..1_000,
    ) {
        let ratio = Ratio::new(3, 2, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, ratio, &mut rng);
        let a = Matrix::random(n, &mut rng);
        let b = Matrix::random(n, &mut rng);
        let dead = Proc::ALL[proc_idx];
        let step = step_seed % n;
        let config = ExecConfig::default()
            .with_fault_plan(FaultPlan::crash(dead, step))
            .with_recv_timeout(Duration::from_millis(500));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config)
            .expect("a single crash must be survivable");
        prop_assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        prop_assert_eq!(stats.recovery.faults_detected, 1);
        prop_assert_eq!(stats.recovery.retries, 1);
        prop_assert_eq!(stats.recovery.elems_reassigned, part.elems(dead) as u64);
        // The dead worker contributes nothing to the final attempt; the
        // survivors between them still perform the full N^3 workload.
        prop_assert_eq!(stats.per_proc[dead.idx()].updates, 0);
        prop_assert_eq!(stats.total_updates(), (n * n * n) as u64);
        // Recovery is deterministic: the final attempt's traffic equals
        // the analytic VoC of the independently computed degraded
        // partition.
        let degraded = degrade_partition(&part, dead);
        prop_assert_eq!(stats.total_sent(), degraded.partition.voc());
    }
}

#[test]
fn dropped_message_recovers_end_to_end() {
    let n = 16;
    let mut rng = StdRng::seed_from_u64(4242);
    let part = random_partition(n, Ratio::new(4, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let plan = FaultPlan::new().with_fault(Proc::R, FaultKind::DropMessageAt { step: 5 });
    let config = ExecConfig::default()
        .with_fault_plan(plan)
        .with_recv_timeout(Duration::from_millis(200));
    let (c, stats) =
        multiply_partitioned_with(&a, &b, &part, &config).expect("lost message is survivable");
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    assert!(stats.recovery.faults_detected >= 1);
    assert_eq!(stats.recovery.elems_reassigned, part.elems(Proc::R) as u64);
}

#[test]
fn fault_free_run_reports_zero_recovery() {
    let n = 20;
    let mut rng = StdRng::seed_from_u64(77);
    let part = random_partition(n, Ratio::new(5, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    assert_eq!(stats.recovery.faults_detected, 0);
    assert_eq!(stats.recovery.elems_reassigned, 0);
    assert_eq!(stats.recovery.retries, 0);
}

#[test]
fn recovery_stats_roundtrip_through_json() {
    let n = 12;
    let mut rng = StdRng::seed_from_u64(88);
    let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let config = ExecConfig::default()
        .with_fault_plan(FaultPlan::crash(Proc::S, 3))
        .with_recv_timeout(Duration::from_millis(300));
    let (_, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
    let json = serde_json::to_string(&stats).unwrap();
    let back: hetmmm::mmm::ExecStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    assert!(json.contains("elems_reassigned"));
}

#[test]
fn total_loss_surfaces_no_survivors() {
    let n = 10;
    let mut rng = StdRng::seed_from_u64(99);
    let part = random_partition(n, Ratio::new(2, 1, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let plan = FaultPlan::new()
        .with_fault(Proc::R, FaultKind::CrashAt { step: 0 })
        .with_fault(Proc::S, FaultKind::CrashAt { step: 0 })
        .with_fault(Proc::P, FaultKind::CrashAt { step: 1 });
    let config = ExecConfig::default()
        .with_fault_plan(plan)
        .with_recv_timeout(Duration::from_millis(200));
    match multiply_partitioned_with(&a, &b, &part, &config) {
        Err(HetmmmError::NoSurvivors { .. }) => {}
        other => panic!("expected NoSurvivors, got {other:?}"),
    }
}
