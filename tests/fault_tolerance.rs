//! Fault-tolerance integration: for *any* partition, a single worker
//! crash at *any* pivot step must be absorbed — the recovered product
//! matches the serial reference, the re-attempt resumes from the banked
//! checkpoint instead of replaying from scratch, transient delays are
//! absorbed without blame, and even a total fault cascade degrades to a
//! correct serial result rather than an error.

use hetmmm::mmm::{
    kij_serial, multiply_partitioned, multiply_partitioned_with, ExecConfig, ExecStats, FaultKind,
    FaultPlan, Matrix, RecoveryStats,
};
use hetmmm::prelude::*;
use hetmmm_obs::FakeClock;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random partitions, random victim, random crash step: the executor
    /// must return `Ok` with a correct C, one detected fault, one retry,
    /// exactly the dead worker's cells re-assigned — and, with the
    /// step-checkpointed resume, a replay strictly smaller than a full
    /// restart whenever the crash lands past step zero.
    #[test]
    fn any_single_crash_is_survivable(
        seed in 0u64..10_000,
        n in 6usize..24,
        proc_idx in 0usize..3,
        step_seed in 0usize..1_000,
    ) {
        let ratio = Ratio::new(3, 2, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, ratio, &mut rng);
        let a = Matrix::random(n, &mut rng);
        let b = Matrix::random(n, &mut rng);
        let dead = Proc::ALL[proc_idx];
        let step = step_seed % n;
        let config = ExecConfig::default()
            .with_fault_plan(FaultPlan::crash(dead, step))
            .with_recv_timeout(Duration::from_millis(500));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config)
            .expect("a single crash must be survivable");
        prop_assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        prop_assert_eq!(stats.recovery.faults_detected, 1);
        prop_assert_eq!(stats.recovery.retries, 1);
        prop_assert_eq!(stats.recovery.elems_reassigned, part.elems(dead) as u64);
        prop_assert!(!stats.recovery.degraded_mode);
        // The dead worker contributes nothing to the final result.
        prop_assert_eq!(stats.per_proc[dead.idx()].updates, 0);
        // Checkpoint cadence is 1, every receiver waits on every peer at
        // every step, and a crash at `step` withholds that step's
        // messages: everyone banks through exactly `step`, so the single
        // re-attempt resumes there and replays only the tail.
        prop_assert_eq!(stats.recovery.resumed_steps, step as u64);
        prop_assert_eq!(stats.recovery.replayed_steps, (n - step) as u64);
        if step > 0 {
            // Strictly better than the pre-checkpoint full restart.
            prop_assert!(stats.recovery.resumed_steps > 0);
            prop_assert!(stats.recovery.replayed_steps < n as u64);
        }
    }
}

#[test]
fn dropped_message_recovers_end_to_end() {
    let n = 16;
    let mut rng = StdRng::seed_from_u64(4242);
    let part = random_partition(n, Ratio::new(4, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let plan = FaultPlan::new().with_fault(Proc::R, FaultKind::DropMessageAt { step: 5 });
    let config = ExecConfig::default()
        .with_fault_plan(plan)
        .with_recv_timeout(Duration::from_millis(200))
        .with_retry_attempts(1)
        .with_backoff(Duration::from_millis(20), Duration::from_millis(40));
    let (c, stats) =
        multiply_partitioned_with(&a, &b, &part, &config).expect("lost message is survivable");
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    // A dropped message is inconclusive, so the supervisor re-attempts
    // (the drop re-fires each time) before convicting the dropper.
    assert_eq!(stats.recovery.attempt_retries, 1);
    assert!(stats.recovery.faults_detected >= 1);
    assert_eq!(stats.recovery.elems_reassigned, part.elems(Proc::R) as u64);
}

#[test]
fn fault_free_run_reports_zero_recovery() {
    let n = 20;
    let mut rng = StdRng::seed_from_u64(77);
    let part = random_partition(n, Ratio::new(5, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    // Every recovery counter — including the new retry/resume/checkpoint
    // breakdown — stays at its default on a clean run.
    assert_eq!(stats.recovery, RecoveryStats::default());
}

#[test]
fn recovery_stats_roundtrip_through_json() {
    let n = 12;
    let mut rng = StdRng::seed_from_u64(88);
    let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let config = ExecConfig::default()
        .with_fault_plan(FaultPlan::crash(Proc::S, 3))
        .with_recv_timeout(Duration::from_millis(300));
    let (_, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
    let json = serde_json::to_string(&stats).unwrap();
    let back: ExecStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    for field in [
        "elems_reassigned",
        "recv_retries",
        "attempt_retries",
        "resumed_steps",
        "replayed_steps",
        "checkpoints",
        "degraded_mode",
    ] {
        assert!(json.contains(field), "missing {field} in {json}");
    }
}

#[test]
fn total_loss_degrades_to_a_correct_serial_result() {
    let n = 10;
    let mut rng = StdRng::seed_from_u64(99);
    let part = random_partition(n, Ratio::new(2, 1, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let plan = FaultPlan::new()
        .with_fault(Proc::R, FaultKind::CrashAt { step: 0 })
        .with_fault(Proc::S, FaultKind::CrashAt { step: 0 })
        .with_fault(Proc::P, FaultKind::CrashAt { step: 1 });
    let config = ExecConfig::default()
        .with_fault_plan(plan)
        .with_recv_timeout(Duration::from_millis(200))
        .with_retry_attempts(1)
        .with_backoff(Duration::from_millis(20), Duration::from_millis(40));
    // PR 1 surfaced `NoSurvivors` here. The recovery engine instead
    // finishes the multiply serially and reports degraded mode — a typed
    // outcome, not an error.
    let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config)
        .expect("total loss must degrade, not error");
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    assert!(stats.recovery.degraded_mode);
    assert!(stats.recovery.faults_detected >= 2);
}

/// Satellite 3a: a delay comfortably under the receive timeout leaves no
/// trace at all — no blame, no receive retries, no supervisor attempts.
#[test]
fn delay_under_timeout_leaves_zero_blame_trace() {
    let n = 12;
    let mut rng = StdRng::seed_from_u64(1001);
    let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let plan = FaultPlan::new().with_fault(
        Proc::S,
        FaultKind::DelaySendAt {
            step: 4,
            millis: 30,
        },
    );
    let config = ExecConfig::default()
        .with_recv_timeout(Duration::from_millis(150))
        .with_fault_plan(plan);
    let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    assert_eq!(stats.recovery.faults_detected, 0);
    assert_eq!(stats.recovery.recv_retries, 0);
    assert_eq!(stats.recovery.attempt_retries, 0);
    assert!(!stats.recovery.degraded_mode);
}

/// Satellite 3b: a delay far beyond the whole receive budget exhausts the
/// worker re-waits *and* the supervisor's transient attempts, then
/// escalates to blame — the full retry-then-blame trace.
#[test]
fn delay_beyond_budget_retries_then_blames() {
    let n = 10;
    let mut rng = StdRng::seed_from_u64(1002);
    let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let plan = FaultPlan::new().with_fault(
        Proc::P,
        FaultKind::DelaySendAt {
            step: 3,
            millis: 300,
        },
    );
    // Receive budget: 50ms timeout + one 30ms backoff slice = 80ms,
    // far below the 300ms delay.
    let config = ExecConfig::default()
        .with_recv_timeout(Duration::from_millis(50))
        .with_retry_attempts(1)
        .with_backoff(Duration::from_millis(30), Duration::from_millis(30))
        .with_fault_plan(plan);
    let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    // Retried at both layers first...
    assert!(stats.recovery.recv_retries > 0);
    assert_eq!(stats.recovery.attempt_retries, 1);
    // ...then blamed the persistently-slow worker.
    assert_eq!(stats.recovery.faults_detected, 1);
    assert_eq!(
        stats.per_proc[Proc::P.idx()],
        hetmmm::mmm::ProcExec::default()
    );
    assert!(!stats.recovery.degraded_mode);
}

/// Acceptance: a delayed send within the backoff budget completes with
/// zero faults and a nonzero retry counter, and the whole `ExecStats` is
/// bit-identical across two runs of the same seed under `FakeClock`.
#[test]
fn absorbed_delay_is_bit_identical_across_seeded_runs() {
    let n = 12;
    let run = || {
        let mut rng = StdRng::seed_from_u64(2024);
        let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
        let a = Matrix::random(n, &mut rng);
        let b = Matrix::random(n, &mut rng);
        let plan = FaultPlan::new().with_fault(
            Proc::S,
            FaultKind::DelaySendAt {
                step: 5,
                millis: 150,
            },
        );
        // Windows end at 100ms, 200ms, 400ms: the 150ms delay lands
        // mid-second-window, 50ms clear of both boundaries, so every
        // victim re-waits exactly once regardless of scheduling jitter.
        let config = ExecConfig::default()
            .with_recv_timeout(Duration::from_millis(100))
            .with_retry_attempts(2)
            .with_backoff(Duration::from_millis(100), Duration::from_millis(400))
            .with_clock(Arc::new(FakeClock::new()))
            .with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        stats
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.recovery.faults_detected, 0,
        "delay absorbed, not blamed"
    );
    assert!(
        first.recovery.recv_retries > 0,
        "absorption leaves a retry trace"
    );
    assert_eq!(first.recovery.attempt_retries, 0);
    assert_eq!(
        first, second,
        "same seed, same FakeClock => identical stats"
    );
}

/// Acceptance: checkpointed resume after a mid-run crash replays strictly
/// fewer steps than a full restart would.
#[test]
fn checkpointed_resume_beats_full_restart() {
    let n = 16;
    let crash_step = 12;
    let mut rng = StdRng::seed_from_u64(3003);
    let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let config = ExecConfig::default()
        .with_recv_timeout(Duration::from_millis(300))
        .with_fault_plan(FaultPlan::crash(Proc::S, crash_step));
    let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
    assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    assert!(stats.recovery.resumed_steps > 0);
    assert_eq!(stats.recovery.resumed_steps, crash_step as u64);
    assert!(
        stats.recovery.replayed_steps < n as u64,
        "resume must replay strictly less than a full restart"
    );
    assert!(stats.recovery.checkpoints > 0);
}
