//! The threaded kij executor must compute the exact product for *any*
//! partition — candidates, DFA outcomes, scatters — and its measured
//! traffic must equal the analytic pairwise volumes the cost models charge.

use hetmmm::mmm::{kij_serial, multiply_partitioned, Matrix};
use hetmmm::partition::pairwise_volumes;
use hetmmm::prelude::*;
use hetmmm::shapes::candidates::all_feasible;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_candidates_multiply_correctly() {
    let n = 36;
    let mut rng = StdRng::seed_from_u64(100);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let reference = kij_serial(&a, &b);
    for ratio in [
        Ratio::new(2, 1, 1),
        Ratio::new(5, 2, 1),
        Ratio::new(10, 1, 1),
    ] {
        for c in all_feasible(n, ratio) {
            let (product, stats) =
                multiply_partitioned(&a, &b, &c.partition).expect("executor failed");
            assert!(
                product.max_abs_diff(&reference) < 1e-9,
                "{} at {ratio}",
                c.ty
            );
            let analytic: u64 = pairwise_volumes(&c.partition).iter().flatten().sum();
            assert_eq!(stats.total_sent(), analytic, "{} at {ratio}", c.ty);
        }
    }
}

#[test]
fn dfa_outcome_partitions_multiply_correctly() {
    let n = 24;
    let runner = DfaRunner::new(DfaConfig::new(n, Ratio::new(3, 2, 1)));
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let reference = kij_serial(&a, &b);
    for out in runner.run_many(0..4u64) {
        let (product, stats) =
            multiply_partitioned(&a, &b, &out.partition).expect("executor failed");
        assert!(product.max_abs_diff(&reference) < 1e-9);
        assert_eq!(stats.total_sent(), out.partition.voc());
    }
}

#[test]
fn executor_workload_split_follows_areas() {
    let n = 30;
    let ratio = Ratio::new(5, 2, 1);
    let c = &all_feasible(n, ratio)[0];
    let mut rng = StdRng::seed_from_u64(8);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let (_, stats) = multiply_partitioned(&a, &b, &c.partition).expect("executor failed");
    for p in Proc::ALL {
        assert_eq!(
            stats.per_proc[p.idx()].updates,
            (n * c.partition.elems(p)) as u64,
            "{p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random scatters: correctness and exact traffic accounting.
    #[test]
    fn random_partitions_multiply_correctly(seed in 0u64..1_000, n in 4usize..20) {
        let ratio = Ratio::new(3, 2, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, ratio, &mut rng);
        let a = Matrix::random(n, &mut rng);
        let b = Matrix::random(n, &mut rng);
        let (product, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        prop_assert!(product.max_abs_diff(&kij_serial(&a, &b)) < 1e-9);
        prop_assert_eq!(stats.total_sent(), part.voc());
        // Receive totals equal send totals (conservation).
        let recv: u64 = stats.per_proc.iter().map(|p| p.elems_recv).sum();
        prop_assert_eq!(recv, stats.total_sent());
    }
}

#[test]
fn push_improves_executor_traffic() {
    // The whole point: condensing a partition with the Push DFA reduces the
    // traffic the real execution moves.
    let n = 24;
    let ratio = Ratio::new(4, 1, 1);
    let mut rng = StdRng::seed_from_u64(33);
    let scatter = random_partition(n, ratio, &mut rng);
    let mut condensed = scatter.clone();
    beautify(&mut condensed);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let (_, before) = multiply_partitioned(&a, &b, &scatter).unwrap();
    let (_, after) = multiply_partitioned(&a, &b, &condensed).unwrap();
    assert!(
        after.total_sent() < before.total_sent(),
        "condensed {} !< scatter {}",
        after.total_sent(),
        before.total_sent()
    );
}
