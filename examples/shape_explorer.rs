//! Scenario: explore how one partition shape behaves across the whole
//! modeling stack.
//!
//! Builds a shape (any of the six candidates, or a hand-drawn one), prints
//! its render, region profiles, corner counts, archetype, VoC breakdown,
//! the cost of all five algorithms on two topologies, and a Push
//! trajectory from a perturbed version back to a fixed point.
//!
//! ```text
//! cargo run --release -p hetmmm-examples --bin shape_explorer -- [square-corner|
//!     rectangle-corner|square-rectangle|block-rectangle|l-rectangle|traditional]
//! ```

use hetmmm::partition::render_ascii;
use hetmmm::prelude::*;
use hetmmm::shapes::{corner_count, RegionProfile};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pick_type(name: &str) -> CandidateType {
    match name {
        "rectangle-corner" => CandidateType::RectangleCorner,
        "square-rectangle" => CandidateType::SquareRectangle,
        "block-rectangle" => CandidateType::BlockRectangle,
        "l-rectangle" => CandidateType::LRectangle,
        "traditional" => CandidateType::TraditionalRectangle,
        _ => CandidateType::SquareCorner,
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "square-corner".into());
    let ty = pick_type(&name);
    let n = 60;
    let ratio = Ratio::new(6, 2, 1);
    let candidate = ty
        .construct(n, ratio)
        .unwrap_or_else(|| panic!("{ty} infeasible at ratio {ratio}"));
    let part = candidate.partition;

    println!("=== {} at ratio {ratio}, N = {n} ===\n", ty.paper_name());
    println!("{}", render_ascii(&part, 15));

    println!("region profiles:");
    for proc in [Proc::R, Proc::S, Proc::P] {
        let prof = RegionProfile::new(&part, proc);
        println!(
            "  {proc}: {:>5} elements, kind {:?}, {} corners, rect {}",
            part.elems(proc),
            prof.kind,
            corner_count(&part, proc),
            prof.rect.map_or("-".into(), |r| r.to_string()),
        );
    }
    println!("archetype: {}", classify(&part));
    println!(
        "VoC: {} elements ({:.3} x N^2)\n",
        part.voc(),
        part.voc() as f64 / (n * n) as f64
    );

    println!("execution-time models (base 1 Gupdate/s, 8 ns/element):");
    let full = Platform::new(ratio, 1e9, 8e-9);
    let star = full.with_star(Proc::P);
    println!(
        "{:>6} {:>14} {:>14}",
        "algo", "fully-conn (s)", "star@P (s)"
    );
    for algo in Algorithm::ALL {
        let a = evaluate(algo, &part, &full);
        let b = evaluate(algo, &part, &star);
        println!("{:>6} {:>14.6} {:>14.6}", algo.name(), a.total, b.total);
    }

    // Perturb the shape, then watch the Push bring it back.
    println!("\nperturbing 5% of elements and re-condensing with Push:");
    let mut rng = StdRng::seed_from_u64(9);
    let mut messy = part.clone();
    for _ in 0..(n * n / 20) {
        let (i1, j1) = (rng.random_range(0..n), rng.random_range(0..n));
        let (i2, j2) = (rng.random_range(0..n), rng.random_range(0..n));
        messy.swap((i1, j1), (i2, j2));
    }
    println!("  perturbed VoC: {}", messy.voc());
    let steps = beautify(&mut messy);
    println!(
        "  after {steps} pushes: VoC {} (original shape had {}), archetype {}",
        messy.voc(),
        part.voc(),
        classify_coarse(&messy, 10)
    );
}
