//! Scenario: planning the data layout for a hybrid compute node.
//!
//! The paper motivates the three-processor abstraction with modern hybrid
//! nodes (Section I, citing [9]): a GPU, a multicore socket, and a host
//! core modeled as three abstract processors of very different speeds.
//! This example plans the MMM data layout for such a node across a range
//! of GPU-to-CPU speed gaps and two interconnect qualities, showing where
//! the non-rectangular Square-Corner pays off and where the traditional
//! rectangular layout remains fine.
//!
//! ```text
//! cargo run --release -p hetmmm-examples --bin hybrid_node_planner
//! ```

use hetmmm::prelude::*;

fn main() {
    let n = 120;
    println!("hybrid node layout planner — N = {n} blocks\n");

    // Think of the columns as "GPU : socket : host-core" speed ratios.
    let scenarios: &[(u32, u32, u32, &str)] = &[
        (2, 1, 1, "balanced tri-socket"),
        (5, 2, 1, "entry GPU + socket + core"),
        (10, 2, 1, "mid GPU + socket + core"),
        (20, 2, 1, "fast GPU + socket + core"),
        (40, 3, 1, "flagship GPU + big socket + core"),
    ];
    // Interconnects: slow cluster-style vs fast NVLink-style, expressed as
    // element-send cost relative to one scalar update.
    let networks: &[(f64, &str)] = &[(50.0, "slow interconnect"), (2.0, "fast interconnect")];

    for &(comm_weight, net_name) in networks {
        println!("== {net_name} (send/update cost ratio {comm_weight}) ==");
        println!(
            "{:>28}  {:>22}  {:>12}  {:>12}",
            "platform", "best shape (SCB)", "SCB time", "vs worst"
        );
        for &(p, r, s, label) in scenarios {
            let ratio = Ratio::new(p, r, s);
            let base_speed = 1e9;
            let platform = Platform::new(ratio, base_speed, comm_weight / base_speed);
            let rec = hetmmm::recommend(n, ratio, &platform, Algorithm::Scb);
            let worst = rec.ranking.last().expect("non-empty").1;
            println!(
                "{label:>28}  {:>22}  {:>10.4} s  {:>10.1}%",
                rec.candidate.ty.paper_name(),
                rec.predicted_total,
                (worst - rec.predicted_total) / worst * 100.0
            );
        }
        println!();
    }

    // Also show how the answer changes with the algorithm on one platform.
    let ratio = Ratio::new(20, 2, 1);
    let platform = Platform::new(ratio, 1e9, 50.0 / 1e9);
    println!("== algorithm sensitivity at ratio {ratio}, slow interconnect ==");
    for algo in Algorithm::ALL {
        let rec = hetmmm::recommend(n, ratio, &platform, algo);
        println!(
            "  {:<4} → {:<24} ({:.4} s)",
            algo.name(),
            rec.candidate.ty.paper_name(),
            rec.predicted_total
        );
    }
    println!(
        "\ntakeaway: the stronger the fast device and the slower the network, \
         the more the non-rectangular corner shapes win."
    );
}
