//! Scenario: re-run the paper's randomized shape search yourself.
//!
//! Spawns the Push DFA from many random start states for a ratio you pick,
//! prints the archetype census, and renders the best (lowest-VoC) fixed
//! point found — a miniature of the Section VII experiment.
//!
//! ```text
//! cargo run --release -p hetmmm-examples --bin search_census -- [n] [P_r] [R_r] [S_r] [runs]
//! e.g. cargo run --release -p hetmmm-examples --bin search_census -- 80 4 2 1 64
//! ```

use hetmmm::partition::render_ascii;
use hetmmm::prelude::*;
use hetmmm::{census, CensusConfig};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let n = args.first().copied().unwrap_or(60);
    let p = args.get(1).copied().unwrap_or(3) as u32;
    let r = args.get(2).copied().unwrap_or(2) as u32;
    let s = args.get(3).copied().unwrap_or(1) as u32;
    let runs = args.get(4).copied().unwrap_or(48) as u64;
    let ratio = Ratio::new(p, r, s);

    println!("Push-DFA shape search: N = {n}, ratio {ratio}, {runs} runs\n");

    let report = census(&CensusConfig::new(n, ratio).with_runs(runs));
    println!("archetype census:");
    println!("  A (no overlap, min corners) : {}", report.counts[0]);
    println!("  B (overlap, L shape)        : {}", report.counts[1]);
    println!("  C (overlap, interlock)      : {}", report.counts[2]);
    println!("  D (overlap, surround)       : {}", report.counts[3]);
    println!("  unclassified (staircase)    : {}", report.non_shapes);
    println!(
        "\nmean VoC: random start {:.0} → fixed point {:.0} ({:.0}% reduction), \
         mean {:.0} pushes per run",
        report.mean_voc_initial,
        report.mean_voc_final,
        (1.0 - report.mean_voc_final / report.mean_voc_initial) * 100.0,
        report.mean_steps
    );

    // Re-run the best seed to show its shape.
    let runner = DfaRunner::new(DfaConfig::new(n, ratio));
    let best = runner
        .run_many(0..runs)
        .into_iter()
        .min_by_key(|o| o.voc_final)
        .expect("at least one run");
    let mut part = best.partition;
    beautify(&mut part);
    println!(
        "\nbest fixed point found (VoC {}, archetype {}):\n",
        part.voc(),
        classify_coarse(&part, 10)
    );
    println!("{}", render_ascii(&part, 20.min(n)));

    // And how does the search's best compare with the analytic candidates?
    let best_candidate = hetmmm::shapes::candidates::all_feasible(n, ratio)
        .into_iter()
        .min_by_key(|c| c.partition.voc())
        .expect("candidates exist");
    println!(
        "best canonical candidate: {} with VoC {}",
        best_candidate.ty,
        best_candidate.partition.voc()
    );
}
