//! Quickstart: pick a partition shape for your heterogeneous platform,
//! check it with the simulator, and actually multiply two matrices with it.
//!
//! ```text
//! cargo run --release -p hetmmm-examples --bin quickstart
//! ```

use hetmmm::mmm::{kij_serial, multiply_partitioned, Matrix};
use hetmmm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Describe the platform: a fast node, a medium node, a slow node,
    //    relative speeds 5 : 2 : 1, 1 GB/s network, 8-byte elements.
    let ratio = Ratio::new(5, 2, 1);
    let platform = Platform::new(ratio, 1e9, 8e-9);
    let n = 96;

    // 2. Ask for the best of the paper's six candidate shapes under the
    //    Serial-Communication-with-Barrier algorithm.
    let rec = hetmmm::recommend(n, ratio, &platform, Algorithm::Scb);
    println!("recommended shape: {}", rec.candidate.ty);
    println!("predicted SCB time: {:.6} s", rec.predicted_total);
    println!("\nfull ranking:");
    for (ty, t) in &rec.ranking {
        println!("  {ty:<24} {t:.6} s");
    }

    // 3. Cross-check the prediction with the message-level simulator.
    let sim = simulate(
        &rec.candidate.partition,
        &SimConfig::new(platform, Algorithm::Scb),
    );
    println!(
        "\nsimulator: comm {:.6} s + compute {:.6} s = {:.6} s ({} messages, {} elements moved)",
        sim.comm_time, sim.compute_time, sim.exe_time, sim.messages, sim.elems_sent
    );

    // 4. Run a real multiplication with that data layout — three worker
    //    threads exchanging pivot fragments, exactly as the partition
    //    dictates.
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let (c, stats) =
        multiply_partitioned(&a, &b, &rec.candidate.partition).expect("executor failed");
    let err = c.max_abs_diff(&kij_serial(&a, &b));
    println!(
        "\nthreaded kij executor: max |err| = {err:.2e}, {} elements exchanged \
         (analytic VoC = {})",
        stats.total_sent(),
        rec.candidate.partition.voc()
    );
    assert!(err < 1e-9);
    println!("\nok.");
}
