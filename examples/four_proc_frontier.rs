//! Scenario: beyond the paper — searching shapes for four processors.
//!
//! The paper closes by calling the three-processor case "an excellent
//! starting point for four or more processors". This example runs the
//! generalized search (`hetmmm-nproc`) on a four-device platform — say a
//! GPU, two CPU sockets and a host core — renders the best fixed point
//! found, and compares its communication volume against the natural
//! baselines (strips, nested corners).
//!
//! ```text
//! cargo run --release -p hetmmm-examples --bin four_proc_frontier -- [n] [runs]
//! ```

use hetmmm_nproc::stats::outcome_stats;
use hetmmm_nproc::{NDfaConfig, NDfaRunner, NPartition};

/// Simple ASCII render for k-processor partitions (digits as owners).
fn render(part: &NPartition, blocks: usize) -> String {
    let n = part.n();
    let blocks = blocks.clamp(1, n);
    let mut out = String::new();
    for bi in 0..blocks {
        let i0 = bi * n / blocks;
        let i1 = ((bi + 1) * n / blocks).max(i0 + 1);
        for bj in 0..blocks {
            let j0 = bj * n / blocks;
            let j1 = ((bj + 1) * n / blocks).max(j0 + 1);
            let mut counts = vec![0usize; part.k()];
            for i in i0..i1 {
                for j in j0..j1 {
                    counts[part.get(i, j) as usize] += 1;
                }
            }
            let best = (0..part.k()).max_by_key(|&p| counts[p]).unwrap();
            out.push(char::from_digit(best as u32, 10).unwrap());
        }
        out.push('\n');
    }
    out
}

/// Baseline 1: horizontal strips proportional to the weights.
fn strips(n: usize, weights: &[u32]) -> NPartition {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut part = NPartition::new(n, weights.len());
    let mut row = 0usize;
    let mut acc = 0u64;
    for (p, &w) in weights.iter().enumerate().skip(1) {
        acc += u64::from(w);
        let _ = p;
        let until = ((n as u64 * acc) / total) as usize;
        for i in row..until {
            for j in 0..n {
                part.set(i, j, p as u8);
            }
        }
        row = until;
    }
    // Processor 0 keeps rows `row..n` (it was the background).
    part
}

/// Baseline 2: nested corner squares (each slower processor a square in
/// its own corner, fastest the remainder).
fn corner_squares(n: usize, weights: &[u32]) -> NPartition {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut part = NPartition::new(n, weights.len());
    let corners = [(0usize, 0usize), (1, 1), (0, 1), (1, 0)];
    for (p, &w) in weights.iter().enumerate().skip(1) {
        let share = (n * n) as u64 * u64::from(w) / total;
        let side = ((share as f64).sqrt().ceil() as usize).min(n / 2);
        let (ci, cj) = corners[(p - 1) % 4];
        let mut remaining = share as usize;
        'fill: for di in 0..side {
            for dj in 0..side.min(remaining.div_ceil(side)) {
                if remaining == 0 {
                    break 'fill;
                }
                let i = if ci == 0 { di } else { n - 1 - di };
                let j = if cj == 0 { dj } else { n - 1 - dj };
                if part.get(i, j) == 0 {
                    part.set(i, j, p as u8);
                    remaining -= 1;
                }
            }
        }
    }
    part
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let n = args.first().copied().unwrap_or(60);
    let runs = args.get(1).copied().unwrap_or(32) as u64;
    let weights = vec![8u32, 3, 2, 1];

    println!("four-processor shape frontier: weights {weights:?}, N = {n}, {runs} runs\n");

    let strips_voc = strips(n, &weights).voc();
    let corners_voc = corner_squares(n, &weights).voc();
    println!("baseline strips VoC        : {strips_voc}");
    println!("baseline corner-squares VoC: {corners_voc}");

    let runner = NDfaRunner::new(NDfaConfig::new(n, weights));
    let best = runner
        .run_many(0..runs)
        .into_iter()
        .min_by_key(|o| o.voc_final)
        .expect("runs");
    println!("search best VoC            : {}\n", best.voc_final);

    println!(
        "best fixed point (0 = fastest):\n{}",
        render(&best.partition, 20)
    );

    let stats = outcome_stats(&best.partition);
    for (p, ps) in stats.per_proc.iter().enumerate().skip(1) {
        println!(
            "P{p}: {} elements, enclosing-rect fill {:.2}, {} corners",
            ps.elems, ps.fill, ps.corners
        );
    }
    println!(
        "\nthe search beats or matches both baselines whenever heterogeneity \
         leaves room to hide the slow processors ({}).",
        if best.voc_final <= strips_voc.min(corners_voc) {
            "it does here"
        } else {
            "here the baselines win — try a more heterogeneous weight vector"
        }
    );
}
