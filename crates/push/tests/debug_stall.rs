//! Diagnostic: why does a run stall?

use hetmmm_partition::{Proc, Ratio};
use hetmmm_push::{beautify, is_condensed, try_push, DfaConfig, DfaRunner, Direction, PushType};

#[test]
#[ignore = "diagnostic"]
fn diagnose_stall() {
    // Diagnostic output goes through the tracing facade; attach a stderr
    // sink for the duration so it stays visible under `--ignored` runs.
    let sink = hetmmm_obs::install_sink(std::sync::Arc::new(hetmmm_obs::FmtSink::stderr()));
    let ratio = Ratio::new(2, 1, 1);
    let runner = DfaRunner::new(DfaConfig::new(30, ratio));
    for seed in 0..12u64 {
        let out = runner.run_seed(seed);
        let mut part = out.partition.clone();
        let b_steps = beautify(&mut part);
        hetmmm_obs::message(
            "push.debug_stall",
            format!(
                "seed {seed}: steps={} conv={} voc {} -> {} residual={} plan={:?} beautify_steps={b_steps} condensed_after={}",
                out.steps,
                out.converged,
                out.voc_initial,
                out.voc_final,
                out.residual_pushes.len(),
                out.plan.entries,
                is_condensed(&part),
            ),
        );
        if !is_condensed(&part) {
            // Which pushes legal? Try each type and report.
            for proc in Proc::PUSHABLE {
                for dir in Direction::ALL {
                    for ty in PushType::ALL {
                        let mut scratch = part.clone();
                        if let Some(ap) = try_push(&mut scratch, proc, dir, ty) {
                            hetmmm_obs::message(
                                "push.debug_stall",
                                format!("  legal: {proc} {dir} {ty} delta={}", ap.delta_voc_units),
                            );
                        }
                    }
                }
            }
            hetmmm_obs::message("push.debug_stall", format!("{part:?}"));
            panic!("not condensed after beautify");
        }
    }
    hetmmm_obs::uninstall_sink(sink);
}
