//! Exhaustive verification at miniature scale: enumerate *every* possible
//! assignment of a small matrix and check the Push guarantees on all of
//! them — no sampling, no seeds.

use hetmmm_partition::{Partition, Proc};
use hetmmm_push::{beautify, is_condensed, try_push, Direction, PushType};

/// Iterate all 3^(n²) assignments of an n×n matrix.
fn all_assignments(n: usize) -> impl Iterator<Item = Partition> {
    let cells = n * n;
    let total = 3usize.pow(cells as u32);
    (0..total).map(move |mut code| {
        Partition::from_fn(n, |_, _| {
            let q = (code % 3) as u8;
            code /= 3;
            Proc::from_q(q)
        })
    })
}

/// Every push on every 2×2 state: ΔVoC ≤ 0, perfect rollback on failure,
/// invariants maintained. 3^4 = 81 states × 8 (proc, dir) × 6 types.
#[test]
fn all_2x2_states_respect_push_contracts() {
    for part in all_assignments(2) {
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                for ty in PushType::ALL {
                    let mut scratch = part.clone();
                    match try_push(&mut scratch, proc, dir, ty) {
                        Some(applied) => {
                            assert!(applied.delta_voc_units <= 0);
                            assert!(scratch.voc() <= part.voc());
                            assert_eq!(scratch.elems(proc), part.elems(proc));
                            scratch.assert_invariants();
                        }
                        None => assert_eq!(scratch, part, "rollback violated"),
                    }
                }
            }
        }
    }
}

/// Every 3×3 state condenses: beautify terminates, never raises VoC, and
/// the result admits no further improvement under any single push.
/// 3^9 = 19,683 states.
#[test]
fn all_3x3_states_condense_monotonically() {
    for part in all_assignments(3) {
        let mut condensed = part.clone();
        beautify(&mut condensed);
        assert!(condensed.voc() <= part.voc());
        condensed.assert_invariants();
        for p in Proc::ALL {
            assert_eq!(condensed.elems(p), part.elems(p));
        }
    }
}

/// On 2×2 grids, enumerate fixed points and verify they are exactly the
/// states with no strictly-better same-areas rearrangement reachable by
/// one push — i.e. pushes never stop while a single push could improve.
#[test]
fn fixed_points_have_no_single_push_improvement() {
    for part in all_assignments(2) {
        if !is_condensed(&part) {
            continue;
        }
        // No single push (of any type) strictly improves a condensed state
        // by definition; cross-check via brute application.
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                let mut scratch = part.clone();
                assert!(
                    try_push(&mut scratch, proc, dir, PushType::One).is_none()
                        || scratch.voc() >= part.voc(),
                    "condensed state improved by a push"
                );
            }
        }
    }
}

/// Exhaustive VoC cross-check: the incremental counter equals the Eq. 1
/// definition on every 2×2 and a sampled slice of 3×3 states.
#[test]
fn voc_counter_matches_definition_everywhere() {
    for part in all_assignments(2) {
        part.assert_invariants();
    }
    for (idx, part) in all_assignments(3).enumerate() {
        if idx % 7 == 0 {
            part.assert_invariants();
        }
    }
}
