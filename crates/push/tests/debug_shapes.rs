//! Diagnostic: print condensed shapes.

use hetmmm_partition::Ratio;
use hetmmm_push::{beautify, DfaConfig, DfaRunner};

#[test]
#[ignore = "diagnostic"]
fn show_condensed_shapes() {
    let ratio = Ratio::new(2, 1, 1);
    let runner = DfaRunner::new(DfaConfig::new(30, ratio));
    for seed in [0u64, 3, 4, 7] {
        let out = runner.run_seed(seed);
        let mut part = out.partition.clone();
        beautify(&mut part);
        eprintln!("==== seed {seed} voc={} ====\n{part:?}", part.voc());
    }
}
