//! Diagnostic: print condensed shapes.

use hetmmm_partition::Ratio;
use hetmmm_push::{beautify, DfaConfig, DfaRunner};

#[test]
#[ignore = "diagnostic"]
fn show_condensed_shapes() {
    // Diagnostic output goes through the tracing facade; attach a stderr
    // sink for the duration so it stays visible under `--ignored` runs.
    let sink = hetmmm_obs::install_sink(std::sync::Arc::new(hetmmm_obs::FmtSink::stderr()));
    let ratio = Ratio::new(2, 1, 1);
    let runner = DfaRunner::new(DfaConfig::new(30, ratio));
    for seed in [0u64, 3, 4, 7] {
        let out = runner.run_seed(seed);
        let mut part = out.partition.clone();
        beautify(&mut part);
        hetmmm_obs::message(
            "push.debug_shapes",
            format!("==== seed {seed} voc={} ====\n{part:?}", part.voc()),
        );
    }
    hetmmm_obs::uninstall_sink(sink);
}
