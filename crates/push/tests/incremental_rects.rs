//! Property suite for the incrementally maintained enclosing rectangles:
//! through arbitrary push sequences, `Partition::enclosing_rect` must
//! always equal a from-scratch occupancy scan. The partition's own
//! `assert_invariants` cross-validates the same bounds; this suite drives
//! them through the real mutation pattern (push swap journals, including
//! rollbacks of failed type attempts).

use hetmmm_partition::{random_partition, Partition, Proc, Ratio, Rect};
use hetmmm_push::{try_push_any_type, Direction};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// From-scratch recompute of the enclosing rectangle from per-line
/// occupancy, the way the pre-incremental implementation derived it.
fn scan_rect(part: &Partition, proc: Proc) -> Option<Rect> {
    let n = part.n();
    let top = (0..n).find(|&i| part.row_has(proc, i))?;
    let bottom = (0..n).rfind(|&i| part.row_has(proc, i))?;
    let left = (0..n).find(|&j| part.col_has(proc, j))?;
    let right = (0..n).rfind(|&j| part.col_has(proc, j))?;
    Some(Rect::new(top, bottom, left, right))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every intermediate state of a push sequence keeps the cached
    /// rectangles equal to a full recompute, for all three processors.
    #[test]
    fn rects_match_recompute_through_push_sequences(
        seed in 0u64..1_000_000,
        n in 8usize..=24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
        for p in Proc::ALL {
            prop_assert_eq!(part.enclosing_rect(p), scan_rect(&part, p));
        }
        for _round in 0..16 {
            let mut moved = false;
            for proc in Proc::PUSHABLE {
                for dir in Direction::ALL {
                    if try_push_any_type(&mut part, proc, dir).is_some() {
                        moved = true;
                        for p in Proc::ALL {
                            prop_assert_eq!(
                                part.enclosing_rect(p),
                                scan_rect(&part, p),
                                "rect drift after {} {} at seed {}", proc, dir, seed
                            );
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
        part.assert_invariants();
    }
}
