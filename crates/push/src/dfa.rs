//! The DFA search engine (Sections V–VI).
//!
//! The paper models the search for candidate optimal shapes as a
//! Deterministic Finite Automaton: states are partition shapes, the alphabet
//! is (active processor, push direction), the transition function is the
//! Push, and the accept states are the fixed points where no push applies.
//! The experimental program draws a random start state `q0` (Section
//! VI-A-2), selects a random set of push directions for each slower
//! processor (Section VI-A-1), and interleaves pushes in random order until
//! no transition remains.
//!
//! [`DfaRunner`] reproduces that program. Each run is fully determined by a
//! `u64` seed, and [`DfaRunner::run_many`] fans independent seeds out over
//! rayon — the paper ran "multiple instances of the program on multiple
//! processors" of a cluster for the same reason.

use crate::op::{try_push_any_type, Direction, PushType};
use crate::probe::ProbeCache;
use hetmmm_error::{HetmmmError, NonConvergence};
use hetmmm_obs as obs;
use hetmmm_partition::{random_partition, Partition, Proc, Ratio};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The randomized push plan of a single DFA run: which directions each
/// slower processor may be pushed in (Section VI-A-1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushPlan {
    /// `(active processor, direction)` pairs the run is allowed to use.
    pub entries: Vec<(Proc, Direction)>,
}

impl PushPlan {
    /// The paper's randomization: for each of `R` and `S`, draw the number
    /// of directions (1–4), then that many distinct random directions.
    pub fn random<RNG: Rng>(rng: &mut RNG) -> PushPlan {
        let mut entries = Vec::with_capacity(8);
        for proc in Proc::PUSHABLE {
            let count = rng.random_range(1..=4usize);
            let mut dirs = Direction::ALL;
            dirs.shuffle(rng);
            for &dir in dirs.iter().take(count) {
                entries.push((proc, dir));
            }
        }
        entries.shuffle(rng);
        PushPlan { entries }
    }

    /// The full plan: both processors, all four directions. Used by
    /// `beautify` and exhaustive condensation.
    pub fn full() -> PushPlan {
        let mut entries = Vec::with_capacity(8);
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                entries.push((proc, dir));
            }
        }
        PushPlan { entries }
    }

    /// Restrict to a fixed direction set per processor (used to script runs
    /// such as the Fig. 7 example: R ↓→, S ↓←).
    pub fn scripted(r_dirs: &[Direction], s_dirs: &[Direction]) -> PushPlan {
        let mut entries = Vec::new();
        for &d in r_dirs {
            entries.push((Proc::R, d));
        }
        for &d in s_dirs {
            entries.push((Proc::S, d));
        }
        PushPlan { entries }
    }
}

/// Configuration of a DFA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DfaConfig {
    /// Matrix dimension `N` (the paper uses 1000; smaller values keep the
    /// same qualitative behaviour and are much faster — see DESIGN.md).
    pub n: usize,
    /// Processor speed ratio `P_r : R_r : S_r`.
    pub ratio: Ratio,
    /// Hard cap on applied pushes; a backstop, generously above the
    /// `~2 N` steps a typical run needs (the Fig. 7 example converges in
    /// ~2100 steps at `N = 1000`).
    pub step_cap: usize,
    /// Cap on *consecutive* VoC-neutral (Type 5/6) pushes, guarding against
    /// neutral-push oscillation that the paper's informal argument does not
    /// rule out.
    pub zero_delta_cap: usize,
    /// Steps at which to clone the partition into the outcome (Fig. 7
    /// snapshots). Empty for search runs.
    pub snapshot_steps: Vec<usize>,
}

impl DfaConfig {
    /// Defaults for a given size and ratio.
    pub fn new(n: usize, ratio: Ratio) -> DfaConfig {
        DfaConfig {
            n,
            ratio,
            step_cap: 100 * n.max(8),
            zero_delta_cap: (4 * n).max(64),
            snapshot_steps: Vec::new(),
        }
    }

    /// Builder-style: record snapshots at the given step counts.
    pub fn with_snapshots(mut self, steps: Vec<usize>) -> DfaConfig {
        self.snapshot_steps = steps;
        self
    }
}

/// Why a DFA run stopped. `StepCapExhausted` and `ZeroDeltaCapExhausted`
/// are the two distinct non-converged outcomes (previously collapsed into a
/// single `converged = false`); the checked entry points turn them into
/// [`HetmmmError::NonConverged`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// No push in the plan applies — a genuine fixed point.
    FixedPoint,
    /// The run revisited a state with no VoC improvement in between — a
    /// VoC-neutral cycle, an accept state for practical purposes.
    NeutralCycle,
    /// The hard cap on applied pushes was exhausted.
    StepCapExhausted,
    /// The cap on consecutive VoC-neutral pushes was exhausted.
    ZeroDeltaCapExhausted,
}

impl Termination {
    /// The non-convergence kind, if this termination is one.
    pub fn non_convergence(self) -> Option<NonConvergence> {
        match self {
            Termination::FixedPoint | Termination::NeutralCycle => None,
            Termination::StepCapExhausted => Some(NonConvergence::StepCapExhausted),
            Termination::ZeroDeltaCapExhausted => Some(NonConvergence::ZeroDeltaCapExhausted),
        }
    }
}

/// Result of one DFA run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DfaOutcome {
    /// The final (fixed-point) partition.
    pub partition: Partition,
    /// The randomized plan the run used.
    pub plan: PushPlan,
    /// Number of pushes applied.
    pub steps: usize,
    /// VoC of the random start state.
    pub voc_initial: u64,
    /// VoC of the final state — never greater than `voc_initial`.
    pub voc_final: u64,
    /// `true` if the run reached a genuine fixed point of its plan, or a
    /// recurrent VoC-neutral cycle (see `cycled`), rather than hitting a
    /// cap.
    pub converged: bool,
    /// `true` when the run terminated because it revisited a previously
    /// seen state without any VoC improvement in between — a VoC-neutral
    /// push cycle. The state is then an accept state for practical
    /// purposes: no sequence of plan moves the run explored can improve it.
    pub cycled: bool,
    /// Exactly why the run stopped; refines `converged`/`cycled` by
    /// distinguishing the two safety caps.
    pub termination: Termination,
    /// `(step, partition)` snapshots at the configured steps.
    pub snapshots: Vec<(usize, Partition)>,
    /// How many pushes of each type (index 0 = Type One) were applied.
    pub pushes_by_type: [usize; 6],
    /// `(proc, dir)` pairs that would still push under the *full* direction
    /// set (nonempty exactly for Archetype C outcomes, Theorem 8.3).
    pub residual_pushes: Vec<(Proc, Direction)>,
}

impl DfaOutcome {
    /// Is the outcome condensed under every direction, not just the plan's?
    pub fn fully_condensed(&self) -> bool {
        self.residual_pushes.is_empty()
    }
}

/// Executes DFA runs for a fixed configuration.
#[derive(Clone, Debug)]
pub struct DfaRunner {
    config: DfaConfig,
}

impl DfaRunner {
    /// Create a runner.
    pub fn new(config: DfaConfig) -> DfaRunner {
        DfaRunner { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &DfaConfig {
        &self.config
    }

    /// Run the DFA from the seed-determined random start state with a
    /// seed-determined random plan.
    pub fn run_seed(&self, seed: u64) -> DfaOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(self.config.n, self.config.ratio, &mut rng);
        let plan = PushPlan::random(&mut rng);
        self.run_core(part, plan, &mut rng, Some(seed))
    }

    /// Run the DFA from an explicit start state and plan.
    pub fn run_with<RNG: Rng>(&self, part: Partition, plan: PushPlan, rng: &mut RNG) -> DfaOutcome {
        self.run_core(part, plan, rng, None)
    }

    fn run_core<RNG: Rng>(
        &self,
        mut part: Partition,
        plan: PushPlan,
        rng: &mut RNG,
        seed: Option<u64>,
    ) -> DfaOutcome {
        let _span = obs::span_arg("dfa.run", seed.unwrap_or(0));
        if obs::enabled() {
            obs::emit(obs::EventKind::DfaRunStart {
                seed: seed.unwrap_or(0),
                n: self.config.n as u64,
                ratio: self.config.ratio.to_string(),
                plan_len: plan.entries.len() as u64,
            });
        }
        let voc_initial = part.voc();
        let mut steps = 0usize;
        let mut zero_streak = 0usize;
        let mut converged = false;
        let mut cycled = false;
        let termination;
        let mut snapshots = Vec::new();
        let mut pushes_by_type = [0usize; 6];
        let mut order: Vec<usize> = (0..plan.entries.len()).collect();
        // States visited since the last strict VoC improvement; a revisit
        // means the run entered a VoC-neutral cycle (Type 5/6 pushes can
        // shuffle elements without progress).
        let mut seen = std::collections::HashSet::new();
        seen.insert(part.state_hash());
        // Known-infeasible (proc, dir) verdicts keyed on the exact state
        // hash. A failed attempt is a pure function of the state, so when
        // the hash still matches, re-running `try_push_any_type` is provably
        // a no-op — skip it and emit the same rejection event. No RNG is
        // consumed either way, so seeded runs are bit-identical.
        let mut probes = ProbeCache::default();
        // Sorted copy of the requested snapshot steps: one binary search
        // per applied step instead of three linear scans.
        let snapshot_at = {
            let mut steps = self.config.snapshot_steps.clone();
            steps.sort_unstable();
            steps.dedup();
            steps
        };
        let want_snapshot = |s: usize| snapshot_at.binary_search(&s).is_ok();
        if want_snapshot(0) {
            snapshots.push((0, part.clone()));
        }

        'outer: loop {
            order.shuffle(rng);
            let mut progressed = false;
            for &idx in &order {
                let (proc, dir) = plan.entries[idx];
                let hash = part.state_hash();
                if probes.lookup(hash, proc, dir) == Some(false) {
                    if obs::enabled() {
                        obs::emit(obs::EventKind::DfaPushRejected {
                            proc: proc.to_string(),
                            dir: dir.to_string(),
                        });
                    }
                    continue;
                }
                if let Some(applied) = try_push_any_type(&mut part, proc, dir) {
                    probes.evict_touched(&applied.touched);
                    steps += 1;
                    progressed = true;
                    pushes_by_type[type_index(applied.ty)] += 1;
                    if obs::enabled() {
                        obs::emit(obs::EventKind::DfaPush {
                            step: steps as u64,
                            proc: proc.to_string(),
                            dir: dir.to_string(),
                            push_type: type_index(applied.ty) as u8 + 1,
                            delta_voc: applied.delta_voc_units,
                        });
                    }
                    if obs::metrics_enabled() {
                        obs::metrics()
                            .counter(
                                obs::metrics::names::DFA_PUSH[type_index(applied.ty)][dir.index()],
                            )
                            .inc();
                    }
                    if applied.delta_voc_units == 0 {
                        zero_streak += 1;
                    } else {
                        zero_streak = 0;
                        seen.clear();
                    }
                    let revisited = !seen.insert(part.state_hash());
                    if want_snapshot(steps) {
                        snapshots.push((steps, part.clone()));
                    }
                    if revisited {
                        cycled = true;
                        converged = true;
                        termination = Termination::NeutralCycle;
                        break 'outer;
                    }
                    if steps >= self.config.step_cap {
                        termination = Termination::StepCapExhausted;
                        break 'outer;
                    }
                    if zero_streak > self.config.zero_delta_cap {
                        termination = Termination::ZeroDeltaCapExhausted;
                        break 'outer;
                    }
                    break; // re-randomize the interleaving after each push
                } else {
                    probes.record(hash, proc, dir, false);
                    if obs::enabled() {
                        obs::emit(obs::EventKind::DfaPushRejected {
                            proc: proc.to_string(),
                            dir: dir.to_string(),
                        });
                    }
                }
            }
            if !progressed {
                converged = true;
                termination = Termination::FixedPoint;
                break;
            }
        }

        // At a fixed point the final failed round has just recorded a
        // `false` verdict for every plan pair at the final hash, so this
        // re-probes only the pairs the plan did not cover (~4 of 12 for a
        // typical random plan) instead of all 12.
        let residual_pushes: Vec<(Proc, Direction)> = Proc::PUSHABLE
            .into_iter()
            .flat_map(|p| Direction::ALL.into_iter().map(move |d| (p, d)))
            .filter(|&(p, d)| probes.probe(&part, p, d))
            .collect();

        let voc_final = part.voc();
        debug_assert!(voc_final <= voc_initial, "DFA must never increase VoC");
        if obs::enabled() {
            obs::emit(obs::EventKind::DfaRunEnd {
                steps: steps as u64,
                termination: format!("{termination:?}"),
                voc_initial,
                voc_final,
                residual_pushes: residual_pushes.len() as u64,
                condensed: residual_pushes.is_empty(),
            });
        }
        if obs::metrics_enabled() {
            obs::metrics()
                .histogram(obs::metrics::names::DFA_STEPS_TO_CONVERGENCE, || {
                    obs::Histogram::exponential(1, 2, 16)
                })
                .observe(steps as u64);
        }
        DfaOutcome {
            partition: part,
            plan,
            steps,
            voc_initial,
            voc_final,
            converged,
            cycled,
            termination,
            snapshots,
            pushes_by_type,
            residual_pushes,
        }
    }

    /// Checked [`DfaRunner::run_seed`]: returns `Err` if the run hit a
    /// safety cap ([`HetmmmError::NonConverged`], carrying which cap) or —
    /// checked even in release builds, unlike the `debug_assert!` in
    /// `run_with` — if the final VoC exceeds the initial
    /// ([`HetmmmError::VocIncreased`]).
    pub fn run(&self, seed: u64) -> Result<DfaOutcome, HetmmmError> {
        Self::check(self.run_seed(seed))
    }

    fn check(out: DfaOutcome) -> Result<DfaOutcome, HetmmmError> {
        if out.voc_final > out.voc_initial {
            return Err(HetmmmError::VocIncreased {
                voc_initial: out.voc_initial,
                voc_final: out.voc_final,
            });
        }
        if let Some(kind) = out.termination.non_convergence() {
            return Err(HetmmmError::NonConverged {
                kind,
                steps: out.steps,
                voc_initial: out.voc_initial,
                voc_final: out.voc_final,
            });
        }
        Ok(out)
    }

    /// Run many independent seeds in parallel (rayon).
    pub fn run_many(&self, seeds: impl IntoIterator<Item = u64>) -> Vec<DfaOutcome> {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.par_iter().map(|&s| self.run_seed(s)).collect()
    }

    /// Checked [`DfaRunner::run_many`]: every outcome passes the same
    /// release-mode checks as [`DfaRunner::run`]; the first failure (in
    /// seed order) is returned as `Err`.
    pub fn run_many_checked(
        &self,
        seeds: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<DfaOutcome>, HetmmmError> {
        self.run_many(seeds).into_iter().map(Self::check).collect()
    }
}

fn type_index(ty: PushType) -> usize {
    match ty {
        PushType::One => 0,
        PushType::Two => 1,
        PushType::Three => 2,
        PushType::Four => 3,
        PushType::Five => 4,
        PushType::Six => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_random_is_within_spec() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let plan = PushPlan::random(&mut rng);
            let r_count = plan.entries.iter().filter(|(p, _)| *p == Proc::R).count();
            let s_count = plan.entries.iter().filter(|(p, _)| *p == Proc::S).count();
            assert!((1..=4).contains(&r_count));
            assert!((1..=4).contains(&s_count));
            // no duplicate (proc, dir) pairs
            let mut pairs = plan.entries.clone();
            pairs.sort_by_key(|&(p, d)| (p.idx(), Direction::ALL.iter().position(|&x| x == d)));
            pairs.dedup();
            assert_eq!(pairs.len(), plan.entries.len());
        }
    }

    #[test]
    fn termination_refines_converged() {
        let runner = DfaRunner::new(DfaConfig::new(24, Ratio::new(2, 1, 1)));
        let out = runner.run_seed(17);
        match out.termination {
            Termination::FixedPoint => assert!(out.converged && !out.cycled),
            Termination::NeutralCycle => assert!(out.converged && out.cycled),
            Termination::StepCapExhausted | Termination::ZeroDeltaCapExhausted => {
                assert!(!out.converged)
            }
        }
        assert_eq!(out.termination.non_convergence().is_some(), !out.converged);
    }

    #[test]
    fn checked_run_ok_on_convergent_seed() {
        let runner = DfaRunner::new(DfaConfig::new(24, Ratio::new(2, 1, 1)));
        let out = runner.run(17).expect("seed 17 converges");
        assert!(out.converged);
        assert!(out.voc_final <= out.voc_initial);
    }

    #[test]
    fn checked_run_reports_step_cap_exhaustion() {
        // A step cap of 1 cannot reach a fixed point from a random start.
        let mut config = DfaConfig::new(24, Ratio::new(2, 1, 1));
        config.step_cap = 1;
        let runner = DfaRunner::new(config);
        let err = runner.run(17).unwrap_err();
        match err {
            HetmmmError::NonConverged { kind, steps, .. } => {
                assert_eq!(kind, NonConvergence::StepCapExhausted);
                assert_eq!(steps, 1);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn checked_run_many_propagates_first_failure() {
        let mut config = DfaConfig::new(16, Ratio::new(2, 1, 1));
        config.step_cap = 1;
        let runner = DfaRunner::new(config);
        assert!(runner.run_many_checked(0..4u64).is_err());

        let runner = DfaRunner::new(DfaConfig::new(16, Ratio::new(2, 1, 1)));
        let outs = runner
            .run_many_checked(0..4u64)
            .expect("all seeds converge");
        assert_eq!(outs.len(), 4);
    }

    #[test]
    fn run_converges_and_voc_decreases() {
        let runner = DfaRunner::new(DfaConfig::new(24, Ratio::new(2, 1, 1)));
        let out = runner.run_seed(17);
        assert!(out.converged, "run should reach a fixed point");
        assert!(out.voc_final <= out.voc_initial);
        assert!(
            out.steps > 0,
            "a random start should admit at least one push"
        );
        out.partition.assert_invariants();
        // Element counts must be preserved through the whole run.
        let areas = Ratio::new(2, 1, 1).areas(24);
        for p in Proc::ALL {
            assert_eq!(out.partition.elems(p), areas[p.idx()]);
        }
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let runner = DfaRunner::new(DfaConfig::new(16, Ratio::new(3, 2, 1)));
        let a = runner.run_seed(5);
        let b = runner.run_seed(5);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn snapshots_recorded_at_requested_steps() {
        let config = DfaConfig::new(16, Ratio::new(2, 1, 1)).with_snapshots(vec![1, 3, 5]);
        let runner = DfaRunner::new(config);
        let out = runner.run_seed(11);
        let steps: Vec<usize> = out.snapshots.iter().map(|(s, _)| *s).collect();
        for s in steps {
            assert!([1, 3, 5].contains(&s));
        }
        assert!(!out.snapshots.is_empty());
    }

    #[test]
    fn run_many_matches_individual_runs() {
        let runner = DfaRunner::new(DfaConfig::new(12, Ratio::new(4, 2, 1)));
        let batch = runner.run_many(0..4u64);
        for (seed, out) in (0..4u64).zip(&batch) {
            let single = runner.run_seed(seed);
            assert_eq!(single.partition, out.partition);
        }
    }

    #[test]
    fn scripted_plan_restricts_directions() {
        let plan = PushPlan::scripted(
            &[Direction::Down, Direction::Right],
            &[Direction::Down, Direction::Left],
        );
        assert_eq!(plan.entries.len(), 4);
        assert!(plan.entries.contains(&(Proc::R, Direction::Down)));
        assert!(plan.entries.contains(&(Proc::S, Direction::Left)));
    }

    #[test]
    fn residual_pushes_empty_after_full_plan() {
        // With the full plan the fixed point must be condensed in every
        // direction.
        let config = DfaConfig::new(20, Ratio::new(3, 1, 1));
        let runner = DfaRunner::new(config);
        let mut rng = StdRng::seed_from_u64(99);
        let part = random_partition(20, Ratio::new(3, 1, 1), &mut rng);
        let out = runner.run_with(part, PushPlan::full(), &mut rng);
        assert!(out.converged);
        assert!(out.fully_condensed());
    }
}
