//! # hetmmm-push
//!
//! The three-processor **Push** operation and the DFA search engine — the
//! primary contribution of DeFlumere & Lastovetsky (HCW/IPDPS-W 2014),
//! Sections IV–VI.
//!
//! A *Push* is an atomic transformation of a partition `q` into `q₁` that
//! cleans one edge line of the active processor's enclosing rectangle and is
//! guaranteed never to increase the Eq. 1 volume of communication. The paper
//! defines six Push *types* differing in how strictly the displaced elements
//! must respect existing row/column occupancy (Section IV-A), and a
//! Deterministic Finite Automaton whose states are partition shapes and whose
//! transition function is the Push (Section V). Running the DFA from random
//! start states to a fixed point yields the candidate optimal shapes.
//!
//! Modules:
//! - [`op`]: directions, push types, and the atomic [`op::try_push`] /
//!   [`op::try_push_any_type`] operations with exact ΔVoC accounting and
//!   rollback,
//! - [`geom`]: the canonical-coordinate table and the
//!   [`canonical_geometry!`] macro that generates it once per view type,
//! - [`view`]: the direction-canonicalizing coordinate view that lets one
//!   implementation serve ↓, ↑, ← and →,
//! - [`probe`]: clone-free feasibility probes ([`probe::push_feasible`])
//!   answered by the same kernel through a read-only overlay, plus the
//!   hash-verified per-run verdict cache the DFA uses,
//! - [`dfa`]: the randomized search engine (random `q0`, random direction
//!   sets, random interleaving) with snapshot support (Fig. 7),
//! - [`beautify`]: exhaustive condensation in *all* directions, used to
//!   finish Archetype C shapes (Theorem 8.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beautify;
pub mod dfa;
pub mod geom;
pub mod op;
pub mod probe;
pub mod view;

pub use beautify::{beautify, is_condensed};
pub use dfa::{DfaConfig, DfaOutcome, DfaRunner, PushPlan, Termination};
pub use op::{try_push, try_push_any_type, AppliedPush, Direction, PushType};
pub use probe::push_feasible;
