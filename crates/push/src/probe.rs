//! Clone-free push-feasibility probes.
//!
//! [`push_feasible`] answers "would *any* type of push of `proc` in `dir`
//! be legal?" — the question the DFA's end condition and `beautify`'s
//! progress check ask twelve times per fixed-point test — without cloning
//! the partition or mutating it.
//!
//! ## How it stays exact
//!
//! The probe runs the *same* push kernel ([`crate::op::prepare`] +
//! [`crate::op::attempt`]) that applies real pushes, through the
//! [`crate::op::PushGrid`] trait. Where a real push swaps cells of a
//! [`Partition`], the probe's [`ProbeView`] records the swaps in a small
//! overlay ([`ProbeScratch`]) layered over the immutable base grid:
//! per-cell reassignments, per-line occupancy deltas, and the running ΔVoC,
//! mirroring the incremental bookkeeping of `Partition::set` exactly. The
//! base partition is never written, so a probe is safe on a shared
//! reference, and because the kernel is shared there is no second legality
//! implementation that could drift from the real one.
//!
//! The overlay is O(cleaned-line) in size and reused across probes (via a
//! thread-local in [`push_feasible`], or owned by a [`ProbeCache`]), so a
//! probe allocates nothing in steady state. The old clone-based probe
//! cloned the full O(N²) grid *per question*; see `DESIGN.md` §11 for the
//! measured effect.

use crate::geom::Axis;
use crate::op::{attempt, prepare, Direction, PushGrid, PushType};
use hetmmm_obs as obs;
use hetmmm_partition::{Partition, Proc, Rect};
use std::cell::RefCell;

/// Reusable overlay storage for one probe at a time. Cheap to keep around,
/// cleared (not freed) between probes.
///
/// All three maps are sparse, keyed by the lines/cells a probe actually
/// touches — O(cleaned-line) entries — instead of mirroring `n`-sized
/// per-cell or per-line state. With the base grid now answering line
/// queries from bit-planes there is nothing dimension-shaped left to
/// pre-size, so the scratch needs no `ensure(n)` step and is identical for
/// every grid size.
#[derive(Debug, Default)]
pub(crate) struct ProbeScratch {
    /// Overlay cell assignments as `(flat index, owner q)`. Linear-scanned:
    /// a probe touches at most one cleaned line's worth of cells.
    cells: Vec<(u32, u8)>,
    /// Per-row element-count deltas relative to the base, one `[i32; 3]`
    /// per touched row. Linear-scanned like `cells`.
    row_delta: Vec<(u32, [i32; 3])>,
    /// Per-column element-count deltas relative to the base.
    col_delta: Vec<(u32, [i32; 3])>,
    /// Overlay ΔVoC in line units relative to the base.
    voc_delta: i64,
}

impl ProbeScratch {
    /// Empty the overlay without freeing its storage.
    fn reset(&mut self) {
        self.cells.clear();
        self.row_delta.clear();
        self.col_delta.clear();
        self.voc_delta = 0;
    }
}

/// A read-only, direction-canonicalized view: the base [`Partition`] plus
/// the [`ProbeScratch`] overlay. Implements the same canonical-coordinate
/// mapping as [`crate::view::View`] (see the table there).
pub(crate) struct ProbeView<'a> {
    base: &'a Partition,
    scratch: &'a mut ProbeScratch,
    dir: Direction,
    n: usize,
}

impl ProbeView<'_> {
    crate::canonical_geometry!(dir: crate::op::Direction, proc: Proc, base: base);

    /// Owner of real cell `(i, j)`, overlay first.
    #[inline]
    fn get_real(&self, i: usize, j: usize) -> Proc {
        let idx = (i * self.n + j) as u32;
        for &(k, q) in &self.scratch.cells {
            if k == idx {
                return Proc::from_q(q);
            }
        }
        self.base.get(i, j)
    }

    /// Overlay-adjusted element count of `proc` in real row `i`.
    #[inline]
    fn row_count_real(&self, proc: Proc, i: usize) -> i64 {
        let delta = self
            .scratch
            .row_delta
            .iter()
            .find(|(r, _)| *r == i as u32)
            .map_or(0, |(_, d)| d[proc.idx()]);
        i64::from(self.base.row_count(proc, i)) + i64::from(delta)
    }

    /// Overlay-adjusted element count of `proc` in real column `j`.
    #[inline]
    fn col_count_real(&self, proc: Proc, j: usize) -> i64 {
        let delta = self
            .scratch
            .col_delta
            .iter()
            .find(|(c, _)| *c == j as u32)
            .map_or(0, |(_, d)| d[proc.idx()]);
        i64::from(self.base.col_count(proc, j)) + i64::from(delta)
    }

    fn bump_row(&mut self, proc: Proc, i: usize, by: i32) {
        match self
            .scratch
            .row_delta
            .iter_mut()
            .find(|(r, _)| *r == i as u32)
        {
            Some((_, d)) => d[proc.idx()] += by,
            None => {
                let mut d = [0i32; 3];
                d[proc.idx()] = by;
                self.scratch.row_delta.push((i as u32, d));
            }
        }
    }

    fn bump_col(&mut self, proc: Proc, j: usize, by: i32) {
        match self
            .scratch
            .col_delta
            .iter_mut()
            .find(|(c, _)| *c == j as u32)
        {
            Some((_, d)) => d[proc.idx()] += by,
            None => {
                let mut d = [0i32; 3];
                d[proc.idx()] = by;
                self.scratch.col_delta.push((j as u32, d));
            }
        }
    }

    /// Overlay mirror of `Partition::set`: reassign real cell `(i, j)` and
    /// update the per-line deltas and ΔVoC with the same 1→0 / 0→1
    /// transition rules the real grid uses.
    fn set_real(&mut self, i: usize, j: usize, proc: Proc) {
        let old = self.get_real(i, j);
        if old == proc {
            return;
        }
        let idx = (i * self.n + j) as u32;
        match self.scratch.cells.iter_mut().find(|(k, _)| *k == idx) {
            Some(entry) => entry.1 = proc.q(),
            None => self.scratch.cells.push((idx, proc.q())),
        }
        // Row i bookkeeping (count-before-transition rules, as in set()).
        if self.row_count_real(old, i) == 1 {
            self.scratch.voc_delta -= 1;
        }
        self.bump_row(old, i, -1);
        if self.row_count_real(proc, i) == 0 {
            self.scratch.voc_delta += 1;
        }
        self.bump_row(proc, i, 1);
        // Column j bookkeeping.
        if self.col_count_real(old, j) == 1 {
            self.scratch.voc_delta -= 1;
        }
        self.bump_col(old, j, -1);
        if self.col_count_real(proc, j) == 0 {
            self.scratch.voc_delta += 1;
        }
        self.bump_col(proc, j, 1);
    }
}

impl PushGrid for ProbeView<'_> {
    #[inline]
    fn get(&self, u: usize, v: usize) -> Proc {
        let (i, j) = self.map(u, v);
        self.get_real(i, j)
    }

    fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let ra = self.map(a.0, a.1);
        let rb = self.map(b.0, b.1);
        let pa = self.get_real(ra.0, ra.1);
        let pb = self.get_real(rb.0, rb.1);
        if pa == pb {
            return;
        }
        self.set_real(ra.0, ra.1, pb);
        self.set_real(rb.0, rb.1, pa);
    }

    #[inline]
    fn row_has(&self, proc: Proc, u: usize) -> bool {
        self.row_count(proc, u) > 0
    }

    #[inline]
    fn col_has(&self, proc: Proc, v: usize) -> bool {
        self.col_count(proc, v) > 0
    }

    #[inline]
    fn row_count(&self, proc: Proc, u: usize) -> u32 {
        let count = match self.canon_row_line(u) {
            (i, Axis::Row) => self.row_count_real(proc, i),
            (j, Axis::Col) => self.col_count_real(proc, j),
        };
        debug_assert!(count >= 0, "overlay drove a line count negative");
        count as u32
    }

    #[inline]
    fn col_count(&self, proc: Proc, v: usize) -> u32 {
        let count = match self.canon_col_line(v) {
            (j, Axis::Col) => self.col_count_real(proc, j),
            (i, Axis::Row) => self.row_count_real(proc, i),
        };
        debug_assert!(count >= 0, "overlay drove a line count negative");
        count as u32
    }

    /// Canonical enclosing rectangle, answered from the *base* grid. The
    /// kernel only consults it in [`prepare`], before any overlay swap, so
    /// base and overlay agree whenever this is called (leftover identity
    /// entries from a rolled-back attempt have zero net occupancy effect).
    fn enclosing_rect(&self, proc: Proc) -> Option<Rect> {
        let r = self.base.enclosing_rect(proc)?;
        let (top, bottom, left, right) = self.canon_rect(r.top, r.bottom, r.left, r.right);
        Some(Rect::new(top, bottom, left, right))
    }

    #[inline]
    fn voc_units(&self) -> u64 {
        let units = self.base.voc_units() as i64 + self.scratch.voc_delta;
        debug_assert!(units >= 0, "overlay drove voc_units negative");
        units as u64
    }

    /// Bit-plane line words, answered from the *base* grid — valid under
    /// the same pre-swap contract as [`PushGrid::enclosing_rect`].
    #[inline]
    fn line_word(&self, proc: Proc, u: usize, w: usize) -> u64 {
        self.plane_line_word(proc, u, w)
    }
}

/// [`push_feasible`] against caller-owned scratch storage; used by
/// [`ProbeCache`] so cached probes never touch the thread-local.
pub(crate) fn push_feasible_with(
    scratch: &mut ProbeScratch,
    part: &Partition,
    proc: Proc,
    dir: Direction,
) -> bool {
    let _span = obs::fine_span("push.probe");
    if obs::metrics_enabled() {
        obs::metrics()
            .counter(obs::metrics::names::PUSH_PROBES)
            .inc();
    }
    scratch.reset();
    let voc_before = part.voc_units() as i64;
    let mut view = ProbeView {
        base: part,
        scratch,
        dir,
        n: part.n(),
    };
    let Some(prep) = prepare(&view, proc) else {
        return false;
    };
    PushType::ALL
        .iter()
        .any(|&ty| attempt(&mut view, proc, ty, &prep, voc_before).is_some())
}

thread_local! {
    static SCRATCH: RefCell<ProbeScratch> = RefCell::new(ProbeScratch::default());
}

/// Non-mutating query: would *any* type of push of `proc` in `dir` be
/// legal? Decided by the same kernel as [`crate::try_push_any_type`],
/// against a small reusable overlay — no clone, no allocation in steady
/// state, and safe on a shared reference.
///
/// ```
/// use hetmmm_partition::{PartitionBuilder, Proc, Rect};
/// use hetmmm_push::{push_feasible, Direction};
///
/// // A stray R element above an almost-complete R block with a hole.
/// let part = PartitionBuilder::new(6)
///     .rect(Rect::new(1, 1, 2, 2), Proc::R)
///     .rect(Rect::new(2, 2, 1, 2), Proc::R)
///     .rect(Rect::new(3, 3, 1, 1), Proc::R)
///     .build();
/// assert!(push_feasible(&part, Proc::R, Direction::Down));
/// // Probing never mutates: the partition is still what we built.
/// assert_eq!(part.get(1, 2), Proc::R);
/// ```
pub fn push_feasible(part: &Partition, proc: Proc, dir: Direction) -> bool {
    SCRATCH.with(|scratch| push_feasible_with(&mut scratch.borrow_mut(), part, proc, dir))
}

/// Hash-verified probe-verdict cache for one DFA run.
///
/// One slot per `(pushable proc, direction)` pair holds the partition
/// [`state_hash`](Partition::state_hash) a verdict was computed at. A
/// lookup hits only on an **exact hash match** — that is what makes the
/// cache sound: a push by one processor can flip another processor's probe
/// verdict (the swap rewrites cells of a displaced receiver), so
/// "invalidate only the touched processors" alone would serve stale
/// verdicts. [`ProbeCache::evict_touched`] is still worth calling after a
/// successful push — it is eviction hygiene that keeps slots from pinning
/// hashes that can never match again — but correctness never depends on it.
#[derive(Debug, Default)]
pub(crate) struct ProbeCache {
    scratch: ProbeScratch,
    /// `(state hash, verdict)` per slot; slot = `proc.idx() * 4 + dir`.
    slots: [Option<(u64, bool)>; 8],
}

impl ProbeCache {
    fn slot(proc: Proc, dir: Direction) -> usize {
        debug_assert!(proc != Proc::P, "P is never pushed");
        proc.idx() * 4 + dir.index()
    }

    /// Cached verdict for `(proc, dir)` at exactly `hash`, if any.
    pub(crate) fn lookup(&mut self, hash: u64, proc: Proc, dir: Direction) -> Option<bool> {
        let (h, verdict) = self.slots[Self::slot(proc, dir)]?;
        if h != hash {
            return None;
        }
        if obs::metrics_enabled() {
            obs::metrics()
                .counter(obs::metrics::names::PUSH_PROBE_CACHE_HITS)
                .inc();
        }
        Some(verdict)
    }

    /// Record a verdict computed at `hash`.
    pub(crate) fn record(&mut self, hash: u64, proc: Proc, dir: Direction, verdict: bool) {
        self.slots[Self::slot(proc, dir)] = Some((hash, verdict));
    }

    /// Probe through the cache: serve a hash-matching slot, otherwise
    /// evaluate with the cache's own scratch and fill the slot.
    pub(crate) fn probe(&mut self, part: &Partition, proc: Proc, dir: Direction) -> bool {
        let hash = part.state_hash();
        if let Some(verdict) = self.lookup(hash, proc, dir) {
            return verdict;
        }
        let verdict = push_feasible_with(&mut self.scratch, part, proc, dir);
        self.record(hash, proc, dir, verdict);
        verdict
    }

    /// Drop the slots of every processor a successful push moved elements
    /// of (see the type-level docs: hygiene, not a correctness mechanism).
    pub(crate) fn evict_touched(&mut self, touched: &[bool; 3]) {
        for proc in Proc::PUSHABLE {
            if touched[proc.idx()] {
                for dir in Direction::ALL {
                    self.slots[Self::slot(proc, dir)] = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{try_push_any_type, would_push_reference};
    use hetmmm_partition::{random_partition, PartitionBuilder, Ratio};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The clone-free probe and the clone-based oracle agree for every
        /// (pushable proc, direction) pair on random partitions.
        #[test]
        fn probe_matches_clone_reference(seed in 0u64..1_000_000, n in 6usize..=20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
            for proc in Proc::PUSHABLE {
                for dir in Direction::ALL {
                    prop_assert_eq!(
                        push_feasible(&part, proc, dir),
                        would_push_reference(&part, proc, dir),
                        "disagreement at seed {} for {} {}", seed, proc, dir
                    );
                }
            }
        }

        /// Same agreement holds at every intermediate state of a push
        /// sequence, not just on fresh random partitions — the states the
        /// DFA actually probes.
        #[test]
        fn probe_matches_reference_along_push_sequences(
            seed in 0u64..1_000_000,
            n in 6usize..=16,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut part = random_partition(n, Ratio::new(2, 1, 1), &mut rng);
            for _round in 0..8 {
                let mut moved = false;
                for proc in Proc::PUSHABLE {
                    for dir in Direction::ALL {
                        prop_assert_eq!(
                            push_feasible(&part, proc, dir),
                            would_push_reference(&part, proc, dir),
                            "disagreement at seed {} for {} {}", seed, proc, dir
                        );
                        moved |= try_push_any_type(&mut part, proc, dir).is_some();
                    }
                }
                if !moved {
                    break;
                }
            }
        }
    }

    #[test]
    fn probe_never_mutates() {
        let mut rng = StdRng::seed_from_u64(77);
        let part = random_partition(10, Ratio::new(2, 1, 1), &mut rng);
        let copy = part.clone();
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                let _ = push_feasible(&part, proc, dir);
            }
        }
        assert_eq!(part, copy);
        part.assert_invariants();
    }

    #[test]
    fn probe_false_on_empty_processor() {
        let part = PartitionBuilder::new(5).build(); // all P
        for dir in Direction::ALL {
            assert!(!push_feasible(&part, Proc::R, dir));
            assert!(!push_feasible(&part, Proc::S, dir));
        }
    }

    #[test]
    fn cache_hits_only_on_exact_hash() {
        let mut rng = StdRng::seed_from_u64(5);
        let part = random_partition(10, Ratio::new(2, 1, 1), &mut rng);
        let mut cache = ProbeCache::default();
        let verdict = cache.probe(&part, Proc::R, Direction::Down);
        // Same state: served from the slot.
        assert_eq!(
            cache.lookup(part.state_hash(), Proc::R, Direction::Down),
            Some(verdict)
        );
        // Any other hash must miss.
        assert_eq!(
            cache.lookup(part.state_hash() ^ 1, Proc::R, Direction::Down),
            None
        );
    }

    #[test]
    fn cache_eviction_clears_touched_processors_only() {
        let mut rng = StdRng::seed_from_u64(6);
        let part = random_partition(10, Ratio::new(2, 1, 1), &mut rng);
        let mut cache = ProbeCache::default();
        cache.probe(&part, Proc::R, Direction::Down);
        cache.probe(&part, Proc::S, Direction::Up);
        cache.evict_touched(&[true, false, false]); // R moved, S did not
        assert_eq!(
            cache.lookup(part.state_hash(), Proc::R, Direction::Down),
            None
        );
        assert!(cache
            .lookup(part.state_hash(), Proc::S, Direction::Up)
            .is_some());
    }
}
