//! Direction-canonicalizing view over a [`Partition`].
//!
//! The paper describes Push↓ in full and notes "the ↑, ← and → directions
//! are similar" (Section IV-A). Rather than maintaining four near-identical
//! implementations, [`View`] maps *canonical* coordinates `(u, v)` — in which
//! every push is a Push↓ cleaning the canonical top row `u = rect.top` — onto
//! the real grid:
//!
//! The coordinate table lives in [`crate::geom`]; the
//! [`crate::canonical_geometry!`] macro expands it here so this view and
//! the read-only probe overlay cannot drift apart. Canonical "rows" are the
//! lines perpendicular to the push direction, and canonical "columns" the
//! lines parallel to it, so the occupancy predicates of the six push types
//! translate directly — and because within-line bit order is
//! direction-independent, the partition's bit-plane words are served to the
//! push kernel verbatim via [`crate::op::PushGrid::line_word`].

use crate::geom::Axis;
use crate::op::Direction;
use hetmmm_partition::{Partition, Proc, Rect};

/// A mutable, direction-canonicalized window onto a partition.
pub struct View<'a> {
    part: &'a mut Partition,
    dir: Direction,
    n: usize,
}

impl<'a> View<'a> {
    crate::canonical_geometry!(dir: crate::op::Direction, proc: Proc, base: part);

    /// Wrap `part` so that pushing in `dir` looks like a canonical Push↓.
    pub fn new(part: &'a mut Partition, dir: Direction) -> View<'a> {
        let n = part.n();
        View { part, dir, n }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Owner of canonical cell `(u, v)`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> Proc {
        let (i, j) = self.map(u, v);
        self.part.get(i, j)
    }

    /// Swap two canonical cells on the underlying grid.
    #[inline]
    pub fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let ra = self.map(a.0, a.1);
        let rb = self.map(b.0, b.1);
        self.part.swap(ra, rb);
    }

    /// Does canonical row `u` contain elements of `proc`?
    #[inline]
    pub fn row_has(&self, proc: Proc, u: usize) -> bool {
        match self.canon_row_line(u) {
            (i, Axis::Row) => self.part.row_has(proc, i),
            (j, Axis::Col) => self.part.col_has(proc, j),
        }
    }

    /// Does canonical column `v` contain elements of `proc`?
    #[inline]
    pub fn col_has(&self, proc: Proc, v: usize) -> bool {
        match self.canon_col_line(v) {
            (j, Axis::Col) => self.part.col_has(proc, j),
            (i, Axis::Row) => self.part.row_has(proc, i),
        }
    }

    /// Elements of `proc` in canonical row `u`.
    #[inline]
    pub fn row_count(&self, proc: Proc, u: usize) -> u32 {
        match self.canon_row_line(u) {
            (i, Axis::Row) => self.part.row_count(proc, i),
            (j, Axis::Col) => self.part.col_count(proc, j),
        }
    }

    /// Elements of `proc` in canonical column `v`.
    #[inline]
    pub fn col_count(&self, proc: Proc, v: usize) -> u32 {
        match self.canon_col_line(v) {
            (j, Axis::Col) => self.part.col_count(proc, j),
            (i, Axis::Row) => self.part.row_count(proc, i),
        }
    }

    /// Enclosing rectangle of `proc` in canonical coordinates.
    pub fn enclosing_rect(&self, proc: Proc) -> Option<Rect> {
        let r = self.part.enclosing_rect(proc)?;
        let (top, bottom, left, right) = self.canon_rect(r.top, r.bottom, r.left, r.right);
        Some(Rect::new(top, bottom, left, right))
    }

    /// VoC line units of the underlying partition (direction-independent).
    #[inline]
    pub fn voc_units(&self) -> u64 {
        self.part.voc_units()
    }

    /// Immutable access to the wrapped partition.
    #[inline]
    pub fn partition(&self) -> &Partition {
        self.part
    }
}

/// The push kernel sees a mutable `View` through the same trait as the
/// read-only probe overlay — pure delegation to the inherent methods.
impl crate::op::PushGrid for View<'_> {
    #[inline]
    fn get(&self, u: usize, v: usize) -> Proc {
        View::get(self, u, v)
    }
    #[inline]
    fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        View::swap(self, a, b)
    }
    #[inline]
    fn row_has(&self, proc: Proc, u: usize) -> bool {
        View::row_has(self, proc, u)
    }
    #[inline]
    fn col_has(&self, proc: Proc, v: usize) -> bool {
        View::col_has(self, proc, v)
    }
    #[inline]
    fn row_count(&self, proc: Proc, u: usize) -> u32 {
        View::row_count(self, proc, u)
    }
    #[inline]
    fn col_count(&self, proc: Proc, v: usize) -> u32 {
        View::col_count(self, proc, v)
    }
    fn enclosing_rect(&self, proc: Proc) -> Option<Rect> {
        View::enclosing_rect(self, proc)
    }
    #[inline]
    fn voc_units(&self) -> u64 {
        View::voc_units(self)
    }
    #[inline]
    fn line_word(&self, proc: Proc, u: usize, w: usize) -> u64 {
        self.plane_line_word(proc, u, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::PartitionBuilder;

    fn sample() -> Partition {
        // 5x5, R at (1,2), S block rows 3..=4 cols 0..=1.
        PartitionBuilder::new(5)
            .rect(Rect::new(1, 1, 2, 2), Proc::R)
            .rect(Rect::new(3, 4, 0, 1), Proc::S)
            .build()
    }

    #[test]
    fn map_roundtrips_ownership() {
        let mut part = sample();
        for dir in Direction::ALL {
            let view = View::new(&mut part, dir);
            // Every canonical cell maps to exactly one real cell.
            let mut seen = std::collections::HashSet::new();
            for u in 0..5 {
                for v in 0..5 {
                    assert!(seen.insert(view.map(u, v)), "duplicate mapping {dir:?}");
                }
            }
        }
    }

    #[test]
    fn down_view_is_identity() {
        let mut part = sample();
        let view = View::new(&mut part, Direction::Down);
        assert_eq!(view.get(1, 2), Proc::R);
        assert_eq!(view.enclosing_rect(Proc::S), Some(Rect::new(3, 4, 0, 1)));
        assert!(view.row_has(Proc::R, 1));
        assert!(view.col_has(Proc::R, 2));
    }

    #[test]
    fn up_view_flips_rows() {
        let mut part = sample();
        let view = View::new(&mut part, Direction::Up);
        // Real row 1 is canonical row 3 when n = 5.
        assert_eq!(view.get(3, 2), Proc::R);
        // S rows 3..=4 become canonical rows 0..=1.
        assert_eq!(view.enclosing_rect(Proc::S), Some(Rect::new(0, 1, 0, 1)));
    }

    #[test]
    fn right_view_transposes() {
        let mut part = sample();
        let view = View::new(&mut part, Direction::Right);
        // Real (1, 2) appears at canonical (2, 1).
        assert_eq!(view.get(2, 1), Proc::R);
        // S real rows 3..=4 / cols 0..=1 -> canonical rows 0..=1 / cols 3..=4.
        assert_eq!(view.enclosing_rect(Proc::S), Some(Rect::new(0, 1, 3, 4)));
        assert!(view.row_has(Proc::S, 0)); // real col 0 has S
        assert!(view.col_has(Proc::S, 3)); // real row 3 has S
    }

    #[test]
    fn left_view_flips_cols_and_transposes() {
        let mut part = sample();
        let view = View::new(&mut part, Direction::Left);
        // Real (1, 2): canonical u = n-1-j = 2, v = i = 1.
        assert_eq!(view.get(2, 1), Proc::R);
        // S cols 0..=1 -> canonical rows 3..=4; S rows 3..=4 -> canonical cols 3..=4.
        assert_eq!(view.enclosing_rect(Proc::S), Some(Rect::new(3, 4, 3, 4)));
    }

    #[test]
    fn swap_acts_on_real_grid() {
        let mut part = sample();
        {
            let mut view = View::new(&mut part, Direction::Right);
            // canonical (2, 1) is real (1, 2) = R; canonical (0, 0) is real (0, 0) = P.
            view.swap((2, 1), (0, 0));
        }
        assert_eq!(part.get(0, 0), Proc::R);
        assert_eq!(part.get(1, 2), Proc::P);
        part.assert_invariants();
    }

    #[test]
    fn counts_match_direction_semantics() {
        let mut part = sample();
        let view = View::new(&mut part, Direction::Left);
        // Canonical row u counts = real column n-1-u counts.
        assert_eq!(view.row_count(Proc::S, 4), 2); // real col 0
        assert_eq!(view.row_count(Proc::S, 3), 2); // real col 1
        assert_eq!(view.col_count(Proc::S, 3), 2); // real row 3
    }
}
