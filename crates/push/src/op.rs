//! The atomic Push operation, Types One through Six (Section IV-A).
//!
//! A `Push{proc, dir}` cleans the whole edge line of `proc`'s enclosing
//! rectangle facing *against* the push direction (Push↓ cleans the top row,
//! Push↑ the bottom row, Push→ the leftmost column, Push← the rightmost
//! column) by swapping each element of the active processor in that line
//! with a displaced element found strictly interior to the enclosing
//! rectangle, following the scan order of the paper's `find` pseudocode
//! (Section VI-B).
//!
//! ## Type semantics
//!
//! The six types differ in two orthogonal strictness knobs:
//!
//! - **active side** (where the active processor's elements may land):
//!   *strict* — only rows/columns already containing the active processor
//!   (Types 1, 3); *budgeted* — new rows/columns may be dirtied as long as at
//!   least as many are cleaned (Types 2, 4); *one-dirty* — at most a single
//!   new row or column over the whole operation (Types 5, 6);
//! - **displaced side** (what the receiving processor must satisfy):
//!   *strict* — the receiver must already own elements in the cleaned row
//!   `k` and in the column `j` it is being written to (Types 1, 2, 5);
//!   *relaxed* — no precondition, legality coming from the net
//!   dirtied-vs-cleaned budget (Types 3, 4, 6).
//!
//! ## Hard invariant
//!
//! Whatever the per-swap admissibility says, the engine computes the exact
//! ΔVoC of the whole atomic operation from the partition's incremental
//! counters and **rolls the operation back** unless the type's contract
//! holds: Types 1–4 must strictly decrease VoC, Types 5–6 must not increase
//! it. This turns the paper's prose guarantee ("a Push which decreases, or at
//! least does not increase, the volume of communication") into a
//! machine-checked property.
//!
//! Note on enclosing rectangles: targets are always inside the *active*
//! processor's enclosing rectangle, so its rectangle never grows and the
//! cleaned dimension shrinks by at least one line per applied push. The
//! relaxed types may grow a *receiver's* rectangle (that is exactly what
//! "dirtying" a line means); the ΔVoC contract still bounds the damage, and
//! this matches the paper's Types 3/4/6 which explicitly permit receiver
//! dirtying within budget.

use crate::view::View;
use hetmmm_partition::{Partition, Proc, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declare the four push directions in one table: variant, dense index
/// (the position in `ALL`, used for per-(proc, dir) slot arithmetic), and
/// the paper's arrow glyph. Generates the enum, `ALL`, `index`, `arrow`
/// and `Display` from a single row per direction.
macro_rules! directions {
    ($(
        $(#[$doc:meta])*
        $variant:ident => index $idx:literal, arrow $arrow:literal;
    )+) => {
        /// The four push directions (the paper's alphabet symbols ↓ ↑ ← →).
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
        pub enum Direction {
            $( $(#[$doc])* $variant, )+
        }

        impl Direction {
            /// All four directions.
            pub const ALL: [Direction; directions!(@count $($variant)+)] =
                [ $(Direction::$variant),+ ];

            /// Position of this direction in [`Direction::ALL`] (down 0,
            /// up 1, left 2, right 3). Used for dense per-(proc, dir)
            /// tables.
            pub(crate) fn index(self) -> usize {
                match self { $(Direction::$variant => $idx),+ }
            }

            /// Arrow glyph used in logs, matching the paper's notation.
            pub fn arrow(self) -> char {
                match self { $(Direction::$variant => $arrow),+ }
            }
        }

        impl fmt::Display for Direction {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.arrow())
            }
        }
    };
    (@count $($variant:ident)+) => { [$(directions!(@one $variant)),+].len() };
    (@one $variant:ident) => { () };
}

directions! {
    /// Clean the top row of the enclosing rectangle, elements move down.
    Down => index 0, arrow '↓';
    /// Clean the bottom row, elements move up.
    Up => index 1, arrow '↑';
    /// Clean the rightmost column, elements move left.
    Left => index 2, arrow '←';
    /// Clean the leftmost column, elements move right.
    Right => index 3, arrow '→';
}

/// Declare the paper's six push types as one table: variant, paper number,
/// active-side class, displaced-side strictness, and the ΔVoC contract
/// (Section IV-A, the two orthogonal strictness knobs from the module
/// docs). Generates the enum (discriminants in table order, so `ty as
/// usize` indexes per-type metric tables), `ALL`, every property accessor
/// the prepare/attempt kernel dispatches on, and `Display` — the whole
/// 6-type × 4-direction behavior table has exactly one definition.
macro_rules! push_types {
    ($(
        $(#[$doc:meta])*
        $variant:ident => number $num:literal,
            active $active:ident,
            displaced $displaced:ident,
            voc $voc:ident;
    )+) => {
        /// The six push types of Section IV-A.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
        pub enum PushType {
            $( $(#[$doc])* $variant, )+
        }

        impl PushType {
            /// All six types, in the order `try_push_any_type` attempts them
            /// (most restrictive / most profitable first).
            pub const ALL: [PushType; push_types!(@count $($variant)+)] =
                [ $(PushType::$variant),+ ];

            /// The paper's type number (1–6).
            #[inline]
            pub fn number(self) -> u8 {
                match self { $(PushType::$variant => $num),+ }
            }

            /// Must the displaced (receiving) processor already occupy the
            /// cleaned row and the destination column?
            #[inline]
            fn displaced_strict(self) -> bool {
                match self { $(PushType::$variant => push_types!(@displaced $displaced)),+ }
            }

            /// Active-side admissibility class.
            #[inline]
            fn active_side(self) -> ActiveSide {
                match self { $(PushType::$variant => ActiveSide::$active),+ }
            }

            /// The ΔVoC contract (in line units): `true` means strict
            /// decrease required.
            #[inline]
            fn requires_strict_decrease(self) -> bool {
                match self { $(PushType::$variant => push_types!(@voc $voc)),+ }
            }
        }

        impl fmt::Display for PushType {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "Type{}", self.number())
            }
        }
    };
    (@count $($variant:ident)+) => { [$(push_types!(@one $variant)),+].len() };
    (@one $variant:ident) => { () };
    (@displaced strict) => { true };
    (@displaced relaxed) => { false };
    (@voc decrease) => { true };
    (@voc nonincrease) => { false };
}

push_types! {
    /// Strict active side, strict displaced side; decreases VoC.
    One => number 1, active Strict, displaced strict, voc decrease;
    /// Budgeted active side, strict displaced side; decreases VoC.
    Two => number 2, active Budgeted, displaced strict, voc decrease;
    /// Strict active side, relaxed displaced side; decreases VoC.
    Three => number 3, active Strict, displaced relaxed, voc decrease;
    /// Budgeted active side, relaxed displaced side; decreases VoC.
    Four => number 4, active Budgeted, displaced relaxed, voc decrease;
    /// One-dirty active side, strict displaced side; VoC unchanged (or less).
    Five => number 5, active OneDirty, displaced strict, voc nonincrease;
    /// One-dirty active side, relaxed displaced side; VoC unchanged or less.
    Six => number 6, active OneDirty, displaced relaxed, voc nonincrease;
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ActiveSide {
    Strict,
    Budgeted,
    OneDirty,
}

/// Record of a successfully applied push.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedPush {
    /// The active processor.
    pub proc: Proc,
    /// Push direction.
    pub dir: Direction,
    /// The type under which the push was legal.
    pub ty: PushType,
    /// Exact change in VoC line units (`VoC` change is `n *` this); always
    /// `< 0` for Types 1–4 and `<= 0` for Types 5–6.
    pub delta_voc_units: i64,
    /// Number of element swaps performed (= active elements in the cleaned
    /// line).
    pub swaps: usize,
    /// Which processors' elements the push moved — the active processor
    /// plus every displaced receiver — indexed by `Proc::idx()`. The DFA
    /// uses this to evict probe-cache entries for exactly the processors
    /// whose occupancy changed.
    pub touched: [bool; 3],
}

/// Canonical-coordinate grid accessors the push kernel needs.
///
/// Two implementations share the kernel: the mutable [`View`] applies
/// pushes to a real [`Partition`], and the read-only overlay
/// [`crate::probe::ProbeView`] answers feasibility without cloning or
/// mutating. One kernel deciding both is what makes
/// [`crate::probe::push_feasible`] agree with [`try_push_any_type`] by
/// construction — there is no second legality implementation to drift.
///
/// `enclosing_rect` is only ever consulted by [`prepare`], before any swap;
/// overlay implementations may therefore answer it from their base grid.
pub(crate) trait PushGrid {
    /// Owner of canonical cell `(u, v)`.
    fn get(&self, u: usize, v: usize) -> Proc;
    /// Swap two canonical cells.
    fn swap(&mut self, a: (usize, usize), b: (usize, usize));
    /// Does canonical row `u` contain elements of `proc`?
    fn row_has(&self, proc: Proc, u: usize) -> bool;
    /// Does canonical column `v` contain elements of `proc`?
    fn col_has(&self, proc: Proc, v: usize) -> bool;
    /// Elements of `proc` in canonical row `u`.
    fn row_count(&self, proc: Proc, u: usize) -> u32;
    /// Elements of `proc` in canonical column `v`.
    fn col_count(&self, proc: Proc, v: usize) -> u32;
    /// Enclosing rectangle of `proc` in canonical coordinates.
    fn enclosing_rect(&self, proc: Proc) -> Option<Rect>;
    /// VoC line units of the underlying grid.
    fn voc_units(&self) -> u64;
    /// Word `w` of `proc`'s canonical-row-`u` bit-plane line: bit `b` is
    /// set iff canonical cell `(u, w * 64 + b)` belongs to `proc`. Like
    /// `enclosing_rect`, only consulted by [`prepare`] before any swap, so
    /// overlay implementations may answer from their base grid.
    fn line_word(&self, proc: Proc, u: usize, w: usize) -> u64;
}

/// The type-independent part of a push attempt: the cleaned line and the
/// per-owner candidate target lists (phase 1). None of it depends on the
/// [`PushType`], so [`try_push_any_type`] and the feasibility probe compute
/// it once and reuse it across all six type attempts.
pub(crate) struct Prepared {
    /// Canonical index of the cleaned line (`rect.top`).
    k: usize,
    /// Canonical columns of the active processor's elements in that line.
    cleaned: Vec<usize>,
    /// Candidate interior targets per displaced owner slot, best-first.
    owner_targets: [Vec<(usize, usize)>; 2],
}

/// Phase 1 — locate the cleaned line and collect candidate interior
/// targets per displaced owner. Returns `None` when no push of `proc` in
/// this view's direction can exist at all (no elements, or a single-line
/// enclosing rectangle that a push would be forced to enlarge).
pub(crate) fn prepare<G: PushGrid>(view: &G, proc: Proc) -> Option<Prepared> {
    let rect = view.enclosing_rect(proc)?;
    if rect.height() <= 1 {
        // No interior lines to receive the cleaned elements: the push would
        // have to enlarge the enclosing rectangle, which is forbidden.
        return None;
    }
    let k = rect.top;

    // Word range and per-word masks covering canonical columns
    // [rect.left, rect.right] of the bit-planes.
    let w_lo = rect.left / 64;
    let w_hi = rect.right / 64;
    let lo_mask = !0u64 << (rect.left % 64);
    let hi_mask = {
        let r = rect.right % 64;
        if r == 63 {
            !0u64
        } else {
            (1u64 << (r + 1)) - 1
        }
    };
    let rect_mask = |w: usize| -> u64 {
        let mut m = !0u64;
        if w == w_lo {
            m &= lo_mask;
        }
        if w == w_hi {
            m &= hi_mask;
        }
        m
    };

    // Elements of the active processor in the cleaned line, extracted
    // word-wise from its bit-plane (ascending v, as before).
    let mut cleaned: Vec<usize> = Vec::new();
    for w in w_lo..=w_hi {
        let mut bits = view.line_word(proc, k, w) & rect_mask(w);
        while bits != 0 {
            cleaned.push(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
    debug_assert!(
        !cleaned.is_empty(),
        "edge line of enclosing rect must contain proc"
    );
    let m = cleaned.len();
    let [o1, o2] = proc.others();

    // Per-column facts are invariant during prepare (the grid is in its
    // pre-push state throughout), so compute them once per rectangle width
    // as bitmasks over the rect words instead of once per interior cell:
    // `col_ok[w]` bit b — the active side's "column w*64+b already has X
    // outside the cleaned line" predicate; `col_cleans[slot][w]` bit b —
    // removing the owner's element empties the owner's column.
    let wn = w_hi - w_lo + 1;
    let mut col_ok = vec![0u64; wn];
    let mut col_cleans = [vec![0u64; wn], vec![0u64; wn]];
    for w in w_lo..=w_hi {
        let row_k = view.line_word(proc, k, w);
        let mut bits = rect_mask(w);
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let h = w * 64 + b;
            let mut cnt = view.col_count(proc, h);
            if (row_k >> b) & 1 == 1 {
                cnt -= 1;
            }
            if cnt > 0 {
                col_ok[w - w_lo] |= 1u64 << b;
            }
            if view.col_count(o1, h) == 1 {
                col_cleans[0][w - w_lo] |= 1u64 << b;
            }
            if view.col_count(o2, h) == 1 {
                col_cleans[1][w - w_lo] |= 1u64 << b;
            }
        }
    }

    // Collect candidate interior targets per displaced owner.
    //
    // The paper's `find` scans the enclosing-rectangle interior row-major
    // from (k+1, left). We sweep each owner's bit-plane words over the same
    // interior instead — per owner the candidates still arrive in (g, h)
    // lexicographic order, so every bucket receives the exact sequence the
    // per-cell scan produced and cap truncation is unchanged.
    //
    // Bucket candidates per owner by (active-side dirty cost, cleaning
    // bonus): landing the cleaned element where the active processor
    // already has presence costs nothing; targets whose removal cleans
    // one of the *owner's* lines reduce VoC further. Bucket order is
    // the paper's Type-1-first preference made operational. Each
    // bucket is capped — the matcher never needs more than `m` targets
    // per owner plus slack for budget skips — keeping the memory O(m).
    let cap = m + 64;
    let mut buckets: [[Vec<(usize, usize)>; 6]; 2] = Default::default();
    for g in (k + 1)..=rect.bottom {
        let row_dirty = usize::from(!view.row_has(proc, g));
        for (slot, owner) in [o1, o2].into_iter().enumerate() {
            let row_cleans = view.row_count(owner, g) == 1;
            for w in w_lo..=w_hi {
                let mut bits = view.line_word(owner, g, w) & rect_mask(w);
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let cost = row_dirty + usize::from((col_ok[w - w_lo] >> b) & 1 == 0);
                    let cleans = row_cleans || (col_cleans[slot][w - w_lo] >> b) & 1 == 1;
                    let bucket = cost * 2 + usize::from(!cleans);
                    let vec = &mut buckets[slot][bucket];
                    if vec.len() < cap {
                        vec.push((g, w * 64 + b));
                    }
                }
            }
        }
    }
    let mut owner_targets: [Vec<(usize, usize)>; 2] = [Vec::new(), Vec::new()];
    for slot in 0..2 {
        for bucket in &buckets[slot] {
            owner_targets[slot].extend(bucket.iter().copied());
        }
    }
    Some(Prepared {
        k,
        cleaned,
        owner_targets,
    })
}

/// Outcome of a successful [`attempt`].
pub(crate) struct AttemptOutcome {
    /// Exact ΔVoC in line units.
    pub(crate) delta: i64,
    /// Swaps performed.
    pub(crate) swaps: usize,
    /// Processors whose elements moved, indexed by `Proc::idx()`.
    pub(crate) touched: [bool; 3],
}

/// Phases 2 and 3 of a push of `ty` — owner assignment, greedy pairing,
/// swaps, and the final ΔVoC contract check. On failure every swap is
/// rolled back and the grid is left exactly as it was.
pub(crate) fn attempt<G: PushGrid>(
    view: &mut G,
    proc: Proc,
    ty: PushType,
    prep: &Prepared,
    voc_before: i64,
) -> Option<AttemptOutcome> {
    let k = prep.k;
    let cleaned = &prep.cleaned;
    let owner_targets = &prep.owner_targets;
    let active_side = ty.active_side();
    let displaced_strict = ty.displaced_strict();
    let m = cleaned.len();
    let [o1, o2] = proc.others();

    // -----------------------------------------------------------------
    // Phase 2 — decide which owner fills each vacated position.
    //
    // A position (k, v) is "free" for owner Y when writing Y there dirties
    // nothing: Y already owns elements in row k and in column v (the strict
    // displaced-side rule of Types 1/2/5). Forced positions (free for
    // exactly one owner) take that owner; flexible ones are balanced
    // against target availability; dead positions (free for neither) are
    // only allowed by the relaxed types, paid for through the final ΔVoC
    // contract.
    // -----------------------------------------------------------------
    let row_k_has = [view.row_has(o1, k), view.row_has(o2, k)];
    let free_for = |slot: usize, v: usize| -> bool {
        let owner = if slot == 0 { o1 } else { o2 };
        row_k_has[slot] && view.col_has(owner, v)
    };
    let mut assignment: Vec<usize> = Vec::with_capacity(m); // owner slot per cleaned position
    {
        let mut demand = [0usize; 2];
        let avail = [owner_targets[0].len(), owner_targets[1].len()];
        let mut flexible: Vec<usize> = Vec::new();
        for (idx, &v) in cleaned.iter().enumerate() {
            let f = [free_for(0, v), free_for(1, v)];
            match (f[0], f[1]) {
                (true, false) => {
                    assignment.push(0);
                    demand[0] += 1;
                }
                (false, true) => {
                    assignment.push(1);
                    demand[1] += 1;
                }
                _ => {
                    if displaced_strict && !f[0] && !f[1] {
                        return None; // dead position under a strict type
                    }
                    assignment.push(usize::MAX);
                    flexible.push(idx);
                }
            }
        }
        if demand[0] > avail[0] || demand[1] > avail[1] {
            return None; // not enough targets of a forced owner
        }
        // Hand flexible positions to whichever owner has spare targets,
        // preferring the owner that is free at that position.
        for idx in flexible {
            let v = cleaned[idx];
            let prefer = usize::from(!free_for(0, v)); // 0 unless only o2 free
            let order = [prefer, 1 - prefer];
            let mut placed = false;
            for slot in order {
                if demand[slot] < avail[slot] {
                    assignment[idx] = slot;
                    demand[slot] += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None; // fewer interior targets than cleaned elements
            }
        }
    }

    // -----------------------------------------------------------------
    // Phase 3 — pair positions with concrete targets and swap, enforcing
    // the active-side rules cumulatively (they depend on the evolving
    // grid, so validate at pop time and skip targets that violate them).
    // -----------------------------------------------------------------
    let _clean_span = hetmmm_obs::fine_span_arg("push.clean", m as u64);
    let mut journal: Vec<((usize, usize), (usize, usize))> = Vec::with_capacity(m);
    let mut dirty_lines_used = 0usize; // OneDirty budget
    let mut next_target = [0usize; 2];
    let mut touched = [false; 3];
    let mut ok = true;

    'elems: for (idx, &v) in cleaned.iter().enumerate() {
        let slot = assignment[idx];
        loop {
            let Some(&(g, h)) = owner_targets[slot].get(next_target[slot]) else {
                ok = false;
                break 'elems;
            };
            next_target[slot] += 1;
            // The cell may have been taken by an earlier swap of this push.
            if view.get(g, h) == proc {
                continue;
            }
            // Active side: may the cleaned element land at (g, h)?
            // "already containing elements of X" must not count the
            // elements sitting in the cleaned line itself, which all leave.
            let col_has_excl_k = {
                let mut cnt = view.col_count(proc, h);
                if view.get(k, h) == proc {
                    cnt -= 1;
                }
                cnt > 0
            };
            let row_dirty = !view.row_has(proc, g);
            let col_dirty = !col_has_excl_k;
            let dirty_cost = usize::from(row_dirty) + usize::from(col_dirty);
            let admissible = match active_side {
                ActiveSide::Strict => !(row_dirty && col_dirty),
                ActiveSide::OneDirty => dirty_lines_used + dirty_cost <= 1,
                ActiveSide::Budgeted => true,
            };
            if !admissible {
                continue;
            }
            view.swap((k, v), (g, h));
            journal.push(((k, v), (g, h)));
            touched[[o1, o2][slot].idx()] = true;
            dirty_lines_used += dirty_cost;
            break;
        }
    }

    let delta = view.voc_units() as i64 - voc_before;
    let contract_ok = if ty.requires_strict_decrease() {
        delta < 0
    } else {
        delta <= 0
    };

    if !ok || !contract_ok {
        // Roll back every swap in reverse order.
        for &(a, b) in journal.iter().rev() {
            view.swap(a, b);
        }
        debug_assert_eq!(
            view.voc_units() as i64,
            voc_before,
            "rollback must restore VoC"
        );
        return None;
    }

    touched[proc.idx()] = true;
    Some(AttemptOutcome {
        delta,
        swaps: journal.len(),
        touched,
    })
}

/// Try to apply a push of the given type. On success the partition is
/// mutated and a record returned; on failure the partition is left exactly
/// as it was.
pub fn try_push(
    part: &mut Partition,
    proc: Proc,
    dir: Direction,
    ty: PushType,
) -> Option<AppliedPush> {
    let _span = hetmmm_obs::fine_span_arg("push.apply", ty as u64 + 1);
    let voc_before = part.voc_units() as i64;
    let mut view = View::new(part, dir);
    let prep = prepare(&view, proc)?;
    attempt(&mut view, proc, ty, &prep, voc_before).map(|out| AppliedPush {
        proc,
        dir,
        ty,
        delta_voc_units: out.delta,
        swaps: out.swaps,
        touched: out.touched,
    })
}

/// Try each push type in order (1 → 6) and apply the first that is legal.
///
/// ```
/// use hetmmm_partition::{PartitionBuilder, Proc, Rect};
/// use hetmmm_push::{try_push_any_type, Direction};
///
/// // A stray R element above an almost-complete R block with a hole.
/// let mut part = PartitionBuilder::new(6)
///     .rect(Rect::new(1, 1, 2, 2), Proc::R)
///     .rect(Rect::new(2, 2, 1, 2), Proc::R)
///     .rect(Rect::new(3, 3, 1, 1), Proc::R)
///     .build();
/// let voc_before = part.voc();
/// let applied = try_push_any_type(&mut part, Proc::R, Direction::Down)
///     .expect("a push is legal here");
/// assert!(applied.delta_voc_units < 0);
/// assert!(part.voc() < voc_before);
/// ```
pub fn try_push_any_type(part: &mut Partition, proc: Proc, dir: Direction) -> Option<AppliedPush> {
    let voc_before = part.voc_units() as i64;
    let mut view = View::new(part, dir);
    // Phase 1 is type-independent (and failed attempts roll back exactly),
    // so compute it once instead of once per type.
    let prep = prepare(&view, proc)?;
    PushType::ALL.iter().find_map(|&ty| {
        let _span = hetmmm_obs::fine_span_arg("push.apply", ty as u64 + 1);
        attempt(&mut view, proc, ty, &prep, voc_before).map(|out| AppliedPush {
            proc,
            dir,
            ty,
            delta_voc_units: out.delta,
            swaps: out.swaps,
            touched: out.touched,
        })
    })
}

/// Clone-based reference probe: would *any* type of push of `proc` in `dir`
/// be legal?
///
/// Kept only as the test oracle for [`crate::probe::push_feasible`], which
/// answers the same question without cloning or mutating. Production code
/// must use the probe.
#[cfg(test)]
pub(crate) fn would_push_reference(part: &Partition, proc: Proc, dir: Direction) -> bool {
    let mut scratch = part.clone();
    try_push_any_type(&mut scratch, proc, dir).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{PartitionBuilder, Rect};

    /// R occupies a full-width horizontal strip: pushing down must fail
    /// (every interior cell is already R / there is nowhere to go without
    /// enlarging the rectangle).
    #[test]
    fn strip_cannot_be_pushed_into_itself() {
        let mut part = PartitionBuilder::new(6)
            .rect(Rect::new(2, 3, 0, 5), Proc::R)
            .build();
        let before = part.clone();
        for ty in PushType::ALL {
            assert!(try_push(&mut part, Proc::R, Direction::Down, ty).is_none());
            assert_eq!(part, before);
        }
    }

    /// Fig. 2 style: a ragged R region condenses when pushed down, filling
    /// a hole in its own interior and strictly decreasing VoC (Type One).
    #[test]
    fn ragged_region_condenses_down() {
        // R: a stray at (1,2) plus an almost-rectangle {(2,1),(2,2),(3,1)}
        // with a P hole at (3,2). Pushing down moves the stray into the hole.
        let mut part = PartitionBuilder::new(6)
            .rect(Rect::new(1, 1, 2, 2), Proc::R)
            .rect(Rect::new(2, 2, 1, 2), Proc::R)
            .rect(Rect::new(3, 3, 1, 1), Proc::R)
            .build();
        part.assert_invariants();
        let voc_before = part.voc();
        let applied =
            try_push_any_type(&mut part, Proc::R, Direction::Down).expect("push should be legal");
        assert_eq!(applied.swaps, 1);
        assert_eq!(applied.ty, PushType::One);
        assert!(applied.delta_voc_units < 0);
        assert!(part.voc() < voc_before);
        // Row 1 must now be clean of R and the hole filled.
        assert!(!part.row_has(Proc::R, 1));
        assert_eq!(part.get(3, 2), Proc::R);
        part.assert_invariants();
    }

    /// A VoC-neutral condensation is still accepted, but only under the
    /// Type Five/Six (unchanged-VoC) contract.
    #[test]
    fn neutral_condensation_uses_type_five_or_six() {
        // R: full row 3 plus two strays in row 1; every column keeps R after
        // the push, and the strays must land in virgin row 2, so the best
        // possible outcome is delta = 0.
        let mut part = PartitionBuilder::new(6)
            .rect(Rect::new(3, 3, 0, 5), Proc::R)
            .rect(Rect::new(1, 1, 1, 2), Proc::R)
            .build();
        let applied = try_push_any_type(&mut part, Proc::R, Direction::Down)
            .expect("neutral push should be legal");
        assert_eq!(applied.delta_voc_units, 0);
        assert!(matches!(applied.ty, PushType::Five | PushType::Six));
        assert!(!part.row_has(Proc::R, 1));
        part.assert_invariants();
    }

    #[test]
    fn push_preserves_element_counts() {
        let mut part = PartitionBuilder::new(8)
            .rect(Rect::new(4, 7, 0, 3), Proc::R)
            .rect(Rect::new(0, 1, 0, 7), Proc::S)
            .rect(Rect::new(2, 2, 3, 5), Proc::R)
            .build();
        let elems_before = [
            part.elems(Proc::R),
            part.elems(Proc::S),
            part.elems(Proc::P),
        ];
        for dir in Direction::ALL {
            let _ = try_push_any_type(&mut part, Proc::R, dir);
            let _ = try_push_any_type(&mut part, Proc::S, dir);
        }
        let elems_after = [
            part.elems(Proc::R),
            part.elems(Proc::S),
            part.elems(Proc::P),
        ];
        assert_eq!(elems_before, elems_after);
        part.assert_invariants();
    }

    #[test]
    fn failed_push_is_a_perfect_rollback() {
        // A shape engineered so Type One fails (receiver P has no elements in
        // the cleaned row under strict displaced rules, and VoC cannot
        // strictly decrease): a single R element in its own row/column
        // corner; pushing it down lands in a row/col that gains R.
        let part = PartitionBuilder::new(4)
            .rect(Rect::new(0, 0, 0, 0), Proc::R)
            .rect(Rect::new(1, 1, 1, 1), Proc::R)
            .build();
        let before = part.clone();
        // Direction Up on R: bottom row of rect is row 1 containing (1,1);
        // target row 0 inside rect. Whatever happens, failure must restore.
        for ty in PushType::ALL {
            let mut clone = before.clone();
            if try_push(&mut clone, Proc::R, Direction::Up, ty).is_none() {
                assert_eq!(clone, before, "rollback violated for {ty}");
            }
        }
    }

    #[test]
    fn voc_never_increases_for_any_type() {
        // Deterministic scattered grid.
        let mut part = hetmmm_partition::Partition::from_fn(12, |i, j| match (i * 7 + j * 5) % 6 {
            0..=2 => Proc::P,
            3 | 4 => Proc::R,
            _ => Proc::S,
        });
        for _ in 0..50 {
            let before = part.voc();
            let mut moved = false;
            for proc in Proc::PUSHABLE {
                for dir in Direction::ALL {
                    if let Some(ap) = try_push_any_type(&mut part, proc, dir) {
                        moved = true;
                        assert!(ap.delta_voc_units <= 0);
                    }
                }
            }
            assert!(part.voc() <= before);
            part.assert_invariants();
            if !moved {
                break;
            }
        }
    }

    #[test]
    fn would_push_does_not_mutate() {
        let part = PartitionBuilder::new(6)
            .rect(Rect::new(0, 0, 0, 3), Proc::R)
            .rect(Rect::new(1, 2, 0, 5), Proc::R)
            .build();
        let copy = part.clone();
        let _ = would_push_reference(&part, Proc::R, Direction::Down);
        assert_eq!(part, copy);
    }

    #[test]
    fn square_corner_is_a_fixed_point() {
        // R square top-left, S square bottom-right: the classic Square-Corner
        // partition. No push in any direction should be able to improve it.
        let part = PartitionBuilder::new(9)
            .rect(Rect::new(0, 2, 0, 2), Proc::R)
            .rect(Rect::new(6, 8, 6, 8), Proc::S)
            .build();
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                assert!(
                    !would_push_reference(&part, proc, dir),
                    "square-corner should be condensed, but {proc} {dir} is legal"
                );
            }
        }
    }

    #[test]
    fn horizontal_push_cleans_column() {
        // R: full column 4 plus strays in column 1; push Right cleans col 1.
        let mut part = PartitionBuilder::new(6)
            .rect(Rect::new(0, 5, 4, 4), Proc::R)
            .rect(Rect::new(2, 3, 1, 1), Proc::R)
            .build();
        let applied = try_push_any_type(&mut part, Proc::R, Direction::Right)
            .expect("push right should clean column 1");
        // Column 1 loses R but the strays must dirty one interior column, so
        // the best achievable outcome here is VoC-neutral.
        assert!(applied.delta_voc_units <= 0);
        assert!(!part.col_has(Proc::R, 1));
        part.assert_invariants();
    }

    #[test]
    fn empty_processor_cannot_push() {
        let mut part = hetmmm_partition::Partition::new(5, Proc::P);
        assert!(try_push_any_type(&mut part, Proc::R, Direction::Down).is_none());
    }
}
