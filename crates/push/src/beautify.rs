//! Exhaustive condensation — the paper's "beautify" pass (Theorem 8.3).
//!
//! Archetype C shapes are fixed points of a *restricted* plan on which valid
//! pushes remain in the directions the randomized run did not select. The
//! paper notes: "Transforming partition shapes of this archetype is a simple
//! matter of applying the Push operation in the direction not selected by the
//! program. In the program, this case is handled by a 'beautify' function."
//!
//! [`beautify`] applies pushes for both slower processors in all four
//! directions, round-robin, until no push is legal anywhere. The same
//! zero-delta streak guard as the DFA protects against VoC-neutral
//! oscillation.

use crate::op::{try_push_any_type, Direction};
use crate::probe::push_feasible;
use hetmmm_partition::{Partition, Proc};

/// Apply pushes in every direction until the partition is fully condensed.
/// Returns the number of pushes applied.
pub fn beautify(part: &mut Partition) -> usize {
    let n = part.n();
    let step_cap = 100 * n.max(8);
    let zero_cap = (4 * n).max(64);
    let mut steps = 0usize;
    let mut zero_streak = 0usize;
    // Revisiting a state with no VoC improvement in between means the
    // remaining pushes only cycle; stop there (same guard as the DFA).
    let mut seen = std::collections::HashSet::new();
    seen.insert(part.state_hash());
    loop {
        let mut progressed = false;
        for proc in Proc::PUSHABLE {
            for dir in Direction::ALL {
                while let Some(applied) = try_push_any_type(part, proc, dir) {
                    steps += 1;
                    progressed = true;
                    if applied.delta_voc_units == 0 {
                        zero_streak += 1;
                        if zero_streak > zero_cap {
                            return steps;
                        }
                    } else {
                        zero_streak = 0;
                        seen.clear();
                    }
                    if !seen.insert(part.state_hash()) || steps >= step_cap {
                        return steps;
                    }
                }
            }
        }
        if !progressed {
            return steps;
        }
    }
}

/// Is the partition a fixed point — no legal push for either slower
/// processor in any direction? (The paper's end condition, Section VI-C.)
pub fn is_condensed(part: &Partition) -> bool {
    Proc::PUSHABLE.into_iter().all(|p| {
        Direction::ALL
            .into_iter()
            .all(|d| !push_feasible(part, p, d))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{random_partition, PartitionBuilder, Ratio, Rect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beautify_reaches_fixed_point() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut part = random_partition(24, Ratio::new(3, 1, 1), &mut rng);
        let voc_before = part.voc();
        let steps = beautify(&mut part);
        assert!(steps > 0);
        assert!(part.voc() <= voc_before);
        assert!(is_condensed(&part), "beautify must fully condense");
        part.assert_invariants();
    }

    #[test]
    fn beautify_idempotent() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut part = random_partition(16, Ratio::new(2, 2, 1), &mut rng);
        beautify(&mut part);
        let snapshot = part.clone();
        let extra = beautify(&mut part);
        assert_eq!(extra, 0, "second beautify must be a no-op");
        assert_eq!(part, snapshot);
    }

    #[test]
    fn condensed_shape_detected() {
        let part = PartitionBuilder::new(12)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(8, 11, 8, 11), Proc::S)
            .build();
        assert!(is_condensed(&part));
    }

    #[test]
    fn scattered_shape_not_condensed() {
        let part = PartitionBuilder::new(12)
            .rect(Rect::new(0, 0, 0, 5), Proc::R)
            .rect(Rect::new(5, 8, 2, 3), Proc::R)
            .rect(Rect::new(10, 11, 10, 11), Proc::S)
            .build();
        assert!(!is_condensed(&part));
    }
}
