//! Canonical-coordinate geometry shared by every push view.
//!
//! The paper describes Push↓ in full and notes "the ↑, ← and → directions
//! are similar" (Section IV-A). All four direction-canonicalizing views —
//! the mutable 3-processor [`crate::view::View`], its read-only probe
//! overlay, and the n-processor pair in `hetmmm-nproc` — share one
//! coordinate convention:
//!
//! | direction | cleaned edge      | canonical `(u, v)` → real `(i, j)` |
//! |-----------|-------------------|-------------------------------------|
//! | Down      | top row           | `(u, v)`                            |
//! | Up        | bottom row        | `(n-1-u, v)`                        |
//! | Right     | leftmost column   | `(v, u)`                            |
//! | Left      | rightmost column  | `(v, n-1-u)`                        |
//!
//! Two facts fall out of the table and are load-bearing for the bit-plane
//! fast path:
//!
//! 1. a canonical **row** `u` is always one whole real line — a real row
//!    (Down/Up) or a real column (Right/Left), possibly with a flipped
//!    *line index* (`n-1-u`);
//! 2. the canonical **within-line** position `v` is never reversed by any
//!    direction, so a base grid's plane words can be handed out verbatim:
//!    word `w` of the canonical line is word `w` of the real line, bit for
//!    bit.
//!
//! [`canonical_geometry!`] generates the whole dispatch once per view type
//! instead of four hand-written `match self.dir` blocks per view, so the
//! 6-types × 4-directions push table has exactly one definition of "which
//! real line is canonical row `u`" to drift from.

/// Which real axis a canonical line maps to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    /// The canonical line is a real row; pair it with row counts and the
    /// row-major bit-plane.
    Row,
    /// The canonical line is a real column; pair it with column counts and
    /// the transposed (column-major) bit-plane.
    Col,
}

/// Generate the canonical-coordinate geometry methods for one view type.
///
/// The expanding type must have `dir: $dir_ty` and `n: usize` fields, and a
/// `$base` field whose grid exposes `row_plane_word(proc, line, word)` and
/// `col_plane_word(proc, line, word)` (both
/// [`Partition`](hetmmm_partition::Partition) and `hetmmm-nproc`'s
/// `NPartition` do). `$dir_ty` must have `Down` / `Up` / `Left` / `Right`
/// variants with the table's semantics.
///
/// Generated methods (all inherent, `pub(crate)`-free so the expanding
/// module controls visibility through the impl block):
///
/// - `map(u, v) -> (i, j)`: canonical cell to real cell,
/// - `canon_row_line(u) -> (line, Axis)`: the real line behind canonical
///   row `u`,
/// - `canon_col_line(v) -> (line, Axis)`: the real line behind canonical
///   column `v`,
/// - `canon_rect(t, b, l, r) -> (t, b, l, r)`: a real bounding box in
///   canonical coordinates,
/// - `plane_line_word(proc, u, w)`: the bit-plane fast path, answered from
///   the base grid (valid pre-swap, the same contract as `enclosing_rect`
///   — `prepare` is the only consumer).
#[macro_export]
macro_rules! canonical_geometry {
    (dir: $dir_ty:path, proc: $proc_ty:ty, base: $base:ident) => {
        /// Map canonical `(u, v)` to real `(i, j)` (see the table in
        /// `hetmmm_push::geom`).
        #[inline]
        fn map(&self, u: usize, v: usize) -> (usize, usize) {
            use $dir_ty as D;
            match self.dir {
                D::Down => (u, v),
                D::Up => (self.n - 1 - u, v),
                D::Right => (v, u),
                D::Left => (v, self.n - 1 - u),
            }
        }

        /// The real line holding canonical row `u`: its index and axis.
        #[inline]
        fn canon_row_line(&self, u: usize) -> (usize, $crate::geom::Axis) {
            use $crate::geom::Axis;
            use $dir_ty as D;
            match self.dir {
                D::Down => (u, Axis::Row),
                D::Up => (self.n - 1 - u, Axis::Row),
                D::Right => (u, Axis::Col),
                D::Left => (self.n - 1 - u, Axis::Col),
            }
        }

        /// The real line holding canonical column `v`. Within-line indices
        /// are never flipped, so the line index is always `v` itself.
        #[inline]
        fn canon_col_line(&self, v: usize) -> (usize, $crate::geom::Axis) {
            use $crate::geom::Axis;
            use $dir_ty as D;
            match self.dir {
                D::Down | D::Up => (v, Axis::Col),
                D::Right | D::Left => (v, Axis::Row),
            }
        }

        /// A real bounding box `(top, bottom, left, right)` in canonical
        /// coordinates.
        #[inline]
        fn canon_rect(
            &self,
            top: usize,
            bottom: usize,
            left: usize,
            right: usize,
        ) -> (usize, usize, usize, usize) {
            use $dir_ty as D;
            let n = self.n;
            match self.dir {
                D::Down => (top, bottom, left, right),
                D::Up => (n - 1 - bottom, n - 1 - top, left, right),
                D::Right => (left, right, top, bottom),
                D::Left => (n - 1 - right, n - 1 - left, top, bottom),
            }
        }

        /// Bit-plane fast path: word `w` of `proc`'s canonical-row-`u`
        /// plane line, straight from the base grid (fact 2 in
        /// `hetmmm_push::geom`: within-line bit order is direction-
        /// independent). Pre-swap only, like `enclosing_rect`.
        #[inline]
        fn plane_line_word(&self, proc: $proc_ty, u: usize, w: usize) -> u64 {
            match self.canon_row_line(u) {
                (i, $crate::geom::Axis::Row) => self.$base.row_plane_word(proc, i, w),
                (j, $crate::geom::Axis::Col) => self.$base.col_plane_word(proc, j, w),
            }
        }
    };
}
