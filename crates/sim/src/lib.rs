//! # hetmmm-sim
//!
//! Message-level simulation of the five parallel MMM algorithms on a
//! three-processor heterogeneous platform.
//!
//! Where `hetmmm-cost` evaluates the paper's closed-form execution-time
//! formulas (Eqs. 2–9), this crate *schedules the actual messages and
//! compute phases* implied by a partition: every processor-to-processor
//! transfer becomes a message with a start and end time on the Hockney
//! network, serialized per the algorithm (one shared medium for serial
//! communication, per-sender NICs for parallel communication, two-hop
//! relays on a star). This is the substitute for the paper's Open-MPI
//! testbed (Section X-B / Fig. 14): under the linear Hockney model the
//! communication time of SCB is a deterministic function of the partition
//! shape, matrix size and bandwidth — exactly what the simulator computes,
//! message by message.
//!
//! The cross-checks (unit tests here plus workspace integration tests)
//! assert that the simulated totals coincide with the closed-form models
//! whenever the paper's modelling assumptions (unicast volumes for SCB,
//! Eq. 6 broadcast volumes for PCB, global barriers) are selected, and
//! bound them otherwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod schedule;
pub mod timeline;

pub use message::{build_messages, CommMode, Message};
pub use schedule::{simulate, simulate_all, SimConfig};
pub use timeline::{Phase, SimResult, Span};
