//! Building the message set a partition implies.
//!
//! Under the kij algorithm (Fig. 1), processor `Y` needs the full row `i`
//! of A whenever it owns any C element in row `i`, and the full column `j`
//! of B whenever it owns any element in column `j`. Aggregated over a whole
//! barrier-style exchange this yields the pairwise volumes of
//! `hetmmm_partition::pairwise_volumes`; the paper's Eq. 6 instead charges
//! each owner the full rows and columns it touches once
//! (`N·i_X + N·j_X − ∈X`), i.e. a broadcast/multicast accounting. Both
//! modes are supported; see [`CommMode`].

use hetmmm_cost::Topology;
use hetmmm_partition::{pairwise_volumes, CommMetrics, Partition, Proc};
use serde::{Deserialize, Serialize};

/// How transfer volumes are accounted.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CommMode {
    /// Exact pairwise unicast volumes (consistent with Eq. 1 / Eq. 3:
    /// their sum equals the VoC).
    Unicast,
    /// The paper's Eq. 6 accounting: each owner sends every row and column
    /// it touches once, regardless of how many receivers need it. Only
    /// meaningful on a fully connected topology.
    Broadcast,
}

/// One bulk transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sending processor.
    pub from: Proc,
    /// Receiving processor (for broadcast messages, a nominal "all others"
    /// is represented by the receiver being the sender's first other).
    pub to: Proc,
    /// Elements carried.
    pub elems: u64,
    /// Relay leg: this message may only start once the same-`relay_of`
    /// first hop has arrived (index into the message list).
    pub relay_of: Option<usize>,
}

/// Build the bulk message list for a barrier-style exchange.
///
/// On a star topology, rim-to-rim traffic becomes two messages: rim → hub
/// and hub → rim, the second depending on the first.
pub fn build_messages(part: &Partition, topology: Topology, mode: CommMode) -> Vec<Message> {
    let mut messages = Vec::new();
    match mode {
        CommMode::Unicast => {
            let vol = pairwise_volumes(part);
            for x in Proc::ALL {
                for y in Proc::ALL {
                    if x == y || vol[x.idx()][y.idx()] == 0 {
                        continue;
                    }
                    let elems = vol[x.idx()][y.idx()];
                    match topology {
                        Topology::FullyConnected => {
                            messages.push(Message {
                                from: x,
                                to: y,
                                elems,
                                relay_of: None,
                            });
                        }
                        Topology::Star { center } => {
                            if x == center || y == center {
                                messages.push(Message {
                                    from: x,
                                    to: y,
                                    elems,
                                    relay_of: None,
                                });
                            } else {
                                let first = messages.len();
                                messages.push(Message {
                                    from: x,
                                    to: center,
                                    elems,
                                    relay_of: None,
                                });
                                messages.push(Message {
                                    from: center,
                                    to: y,
                                    elems,
                                    relay_of: Some(first),
                                });
                            }
                        }
                    }
                }
            }
        }
        CommMode::Broadcast => {
            assert!(
                matches!(topology, Topology::FullyConnected),
                "Eq. 6 broadcast accounting is only defined for the fully \
                 connected topology; use Unicast for a star"
            );
            let metrics = CommMetrics::from_partition_comm_only(part);
            let vol = pairwise_volumes(part);
            for x in Proc::ALL {
                // Only processors with actual receivers send anything.
                let has_receiver = Proc::ALL
                    .iter()
                    .any(|&y| y != x && vol[x.idx()][y.idx()] > 0);
                if !has_receiver {
                    continue;
                }
                let elems = metrics.proc(x).send_elems(metrics.n);
                if elems == 0 {
                    continue;
                }
                messages.push(Message {
                    from: x,
                    to: x.others()[0],
                    elems,
                    relay_of: None,
                });
            }
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{PartitionBuilder, Rect};

    fn square_corner() -> Partition {
        PartitionBuilder::new(12)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(8, 11, 8, 11), Proc::S)
            .build()
    }

    #[test]
    fn unicast_totals_match_voc() {
        let part = square_corner();
        let msgs = build_messages(&part, Topology::FullyConnected, CommMode::Unicast);
        let total: u64 = msgs.iter().map(|m| m.elems).sum();
        assert_eq!(total, part.voc());
    }

    #[test]
    fn square_corner_has_no_rs_traffic() {
        // Diagonally opposite squares share no rows or columns, so R and S
        // exchange nothing — the defining communication advantage of the
        // Square-Corner shape.
        let part = square_corner();
        let msgs = build_messages(&part, Topology::FullyConnected, CommMode::Unicast);
        assert!(msgs.iter().all(|m| m.from == Proc::P || m.to == Proc::P));
        assert!(!msgs.is_empty());
    }

    #[test]
    fn star_relays_rim_traffic() {
        // Strips force R↔S traffic; with P as hub it must be relayed.
        let part = Partition::from_fn(9, |i, _| {
            if i < 3 {
                Proc::P
            } else if i < 6 {
                Proc::R
            } else {
                Proc::S
            }
        });
        let full = build_messages(&part, Topology::FullyConnected, CommMode::Unicast);
        let star = build_messages(&part, Topology::Star { center: Proc::P }, CommMode::Unicast);
        assert!(star.len() > full.len());
        let relayed: Vec<&Message> = star.iter().filter(|m| m.relay_of.is_some()).collect();
        assert_eq!(relayed.len(), 2, "R→S and S→R each relayed once");
        for m in relayed {
            assert_eq!(m.from, Proc::P);
        }
        // Total elements on the wire grow by exactly the relayed volume.
        let full_total: u64 = full.iter().map(|m| m.elems).sum();
        let star_total: u64 = star.iter().map(|m| m.elems).sum();
        assert!(star_total > full_total);
    }

    #[test]
    fn broadcast_uses_eq6_volumes() {
        let part = square_corner();
        let msgs = build_messages(&part, Topology::FullyConnected, CommMode::Broadcast);
        let metrics = CommMetrics::from_partition_comm_only(&part);
        for m in &msgs {
            assert_eq!(m.elems, metrics.proc(m.from).send_elems(12));
        }
    }

    #[test]
    #[should_panic(expected = "fully connected")]
    fn broadcast_on_star_rejected() {
        let part = square_corner();
        let _ = build_messages(
            &part,
            Topology::Star { center: Proc::P },
            CommMode::Broadcast,
        );
    }

    #[test]
    fn uniform_partition_sends_nothing() {
        let part = Partition::new(6, Proc::P);
        for mode in [CommMode::Unicast, CommMode::Broadcast] {
            assert!(build_messages(&part, Topology::FullyConnected, mode).is_empty());
        }
    }
}
