//! The per-algorithm schedules: messages and compute phases on a clock.
//!
//! Serial algorithms (SCB, SCO) run all messages back-to-back on one shared
//! medium; parallel algorithms (PCB, PCO, PIO) serialize messages per
//! *sender* (each processor drives its own NIC), with relay legs waiting
//! for their inbound hop. Barrier algorithms start every computation at the
//! global communication end; bulk-overlap algorithms run each processor's
//! local (`o_X`) work concurrently with communication and start the
//! remainder at the global barrier `max(comm, max o_X)` — matching Eqs. 7–8
//! exactly. PIO alternates per-pivot-step sends and computes in a software
//! pipeline (Eq. 9).

use crate::message::{build_messages, CommMode, Message};
use crate::timeline::{Phase, SimResult, Span};
use hetmmm_cost::{Algorithm, Platform};
use hetmmm_obs as obs;
use hetmmm_partition::{CommMetrics, Partition, Proc};
use serde::{Deserialize, Serialize};

/// Simulation configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Platform (speeds, network, topology).
    pub platform: Platform,
    /// Which of the five algorithms to schedule.
    pub algorithm: Algorithm,
    /// Volume accounting (see [`CommMode`]). `Unicast` is the physically
    /// consistent default; `Broadcast` reproduces the paper's Eq. 6 PCB
    /// accounting.
    pub comm_mode: CommMode,
    /// Record individual [`Span`]s (costly for PIO at large `N`).
    pub record_spans: bool,
}

impl SimConfig {
    /// Default configuration: unicast, no span recording.
    pub fn new(platform: Platform, algorithm: Algorithm) -> SimConfig {
        SimConfig {
            platform,
            algorithm,
            comm_mode: CommMode::Unicast,
            record_spans: false,
        }
    }

    /// Enable span recording.
    pub fn with_spans(mut self) -> SimConfig {
        self.record_spans = true;
        self
    }

    /// Use Eq. 6 broadcast volume accounting.
    pub fn with_broadcast(mut self) -> SimConfig {
        self.comm_mode = CommMode::Broadcast;
        self
    }
}

/// Schedule the bulk-exchange messages and return `(global end, spans)`.
fn schedule_bulk(
    messages: &[Message],
    plat: &Platform,
    serial: bool,
    record: bool,
) -> (f64, Vec<Span>) {
    let _span = obs::fine_span_arg("sim.schedule", messages.len() as u64);
    let mut spans = Vec::new();
    let mut ends: Vec<f64> = vec![0.0; messages.len()];
    if serial {
        // One shared medium: strict message order, but a relay leg may not
        // begin before its inbound hop ended (always true in list order).
        let mut clock = 0.0f64;
        for (idx, m) in messages.iter().enumerate() {
            let ready = m.relay_of.map_or(0.0, |dep| ends[dep]);
            let start = clock.max(ready);
            let end = start + plat.network.message_time(m.elems);
            ends[idx] = end;
            clock = end;
            if record {
                spans.push(Span {
                    start,
                    end,
                    phase: Phase::Transfer {
                        from: m.from,
                        to: m.to,
                        elems: m.elems,
                    },
                });
            }
        }
        (clock, spans)
    } else {
        // Per-sender NICs: each sender transmits its messages in list
        // order; a relay leg additionally waits for its inbound hop.
        let mut nic_free = [0.0f64; 3];
        let mut done = false;
        let mut remaining: Vec<usize> = (0..messages.len()).collect();
        // Relay legs may depend on hops of *other* senders, so iterate to a
        // fixed point (at most a few rounds with 3 processors).
        while !done {
            done = true;
            remaining.retain(|&idx| {
                let m = &messages[idx];
                let ready = match m.relay_of {
                    None => 0.0,
                    Some(dep) if ends[dep] > 0.0 || messages[dep].elems == 0 => ends[dep],
                    Some(_) => return true, // dependency not yet scheduled
                };
                let start = nic_free[m.from.idx()].max(ready);
                let end = start + plat.network.message_time(m.elems);
                ends[idx] = end;
                nic_free[m.from.idx()] = end;
                if record {
                    spans.push(Span {
                        start,
                        end,
                        phase: Phase::Transfer {
                            from: m.from,
                            to: m.to,
                            elems: m.elems,
                        },
                    });
                }
                done = false;
                false
            });
            if remaining.is_empty() {
                break;
            }
        }
        let end = ends.iter().copied().fold(0.0f64, f64::max);
        (end, spans)
    }
}

/// Run the simulation.
///
/// ```
/// use hetmmm_cost::{Algorithm, Platform};
/// use hetmmm_partition::{PartitionBuilder, Proc, Ratio, Rect};
/// use hetmmm_sim::{simulate, SimConfig};
///
/// let part = PartitionBuilder::new(12)
///     .rect(Rect::new(0, 3, 0, 3), Proc::R)
///     .rect(Rect::new(8, 11, 8, 11), Proc::S)
///     .build();
/// let platform = Platform::new(Ratio::new(4, 1, 1), 1e9, 8e-9);
/// let result = simulate(&part, &SimConfig::new(platform, Algorithm::Scb));
/// // Square-Corner: R and S never exchange data directly.
/// assert_eq!(result.elems_sent, part.voc());
/// assert!(result.exe_time > result.comm_time);
/// ```
pub fn simulate(part: &Partition, config: &SimConfig) -> SimResult {
    let _span = obs::span_arg("sim.run", part.n() as u64);
    let result = simulate_inner(part, config);
    if obs::enabled() {
        obs::emit(obs::EventKind::SimRun {
            algorithm: config.algorithm.to_string(),
            comm_time: result.comm_time,
            exe_time: result.exe_time,
            messages: result.messages as u64,
            elems_sent: result.elems_sent,
        });
        // Simulated seconds → integer nanos on the shared segment axis.
        let nanos = |t: f64| (t * 1e9).round().max(0.0) as u64;
        for span in &result.spans {
            let (phase, from, to, elems) = match span.phase {
                Phase::Transfer { from, to, elems } => {
                    ("transfer", from.to_string(), to.to_string(), elems)
                }
                Phase::OverlapCompute { proc } => {
                    ("overlap", proc.to_string(), proc.to_string(), 0)
                }
                Phase::Compute { proc } => ("compute", proc.to_string(), proc.to_string(), 0),
            };
            // Mirror each simulated span as an ExecSegment so the report
            // timeline (Chrome trace, critical path, T_comm/T_exe) works
            // identically on simulated and measured streams: transfers
            // become the sender's `send` time, compute phases `compute`.
            let (seg_kind, seg_peer) = match span.phase {
                Phase::Transfer { .. } => ("send", to.clone()),
                _ => ("compute", String::new()),
            };
            obs::emit(obs::EventKind::ExecSegment {
                worker: from.clone(),
                kind: seg_kind.to_string(),
                peer: seg_peer,
                step: 0,
                start_nanos: nanos(span.start),
                end_nanos: nanos(span.end),
            });
            obs::emit(obs::EventKind::SimPhase {
                phase: phase.to_string(),
                from,
                to,
                start: span.start,
                end: span.end,
                elems,
            });
        }
    }
    result
}

fn simulate_inner(part: &Partition, config: &SimConfig) -> SimResult {
    let plat = &config.platform;
    match config.algorithm {
        Algorithm::Scb | Algorithm::Pcb | Algorithm::Sco | Algorithm::Pco => {
            let serial = matches!(config.algorithm, Algorithm::Scb | Algorithm::Sco);
            let overlapped = matches!(config.algorithm, Algorithm::Sco | Algorithm::Pco);
            let messages = build_messages(part, plat.topology, config.comm_mode);
            let (comm_time, mut spans) =
                schedule_bulk(&messages, plat, serial, config.record_spans);
            let elems_sent: u64 = messages.iter().map(|m| m.elems).sum();

            let metrics = if overlapped {
                CommMetrics::from_partition(part)
            } else {
                CommMetrics::from_partition_comm_only(part)
            };
            let n = metrics.n as u64;

            let (overlap_time, compute_time) = if overlapped {
                let o = Proc::ALL.map(|x| plat.compute_time(x, metrics.proc(x).local_updates));
                let c = Proc::ALL
                    .map(|x| plat.compute_time(x, metrics.proc(x).remote_updates(metrics.n)));
                if config.record_spans {
                    for x in Proc::ALL {
                        if o[x.idx()] > 0.0 {
                            spans.push(Span {
                                start: 0.0,
                                end: o[x.idx()],
                                phase: Phase::OverlapCompute { proc: x },
                            });
                        }
                    }
                }
                (
                    o.into_iter().fold(0.0f64, f64::max),
                    c.into_iter().fold(0.0f64, f64::max),
                )
            } else {
                let c = Proc::ALL.map(|x| plat.compute_time(x, n * metrics.proc(x).elems as u64));
                (0.0, c.into_iter().fold(0.0f64, f64::max))
            };

            let barrier = comm_time.max(overlap_time);
            let exe_time = barrier + compute_time;
            if config.record_spans && compute_time > 0.0 {
                for x in Proc::ALL {
                    let updates = if overlapped {
                        metrics.proc(x).remote_updates(metrics.n)
                    } else {
                        n * metrics.proc(x).elems as u64
                    };
                    let t = plat.compute_time(x, updates);
                    if t > 0.0 {
                        spans.push(Span {
                            start: barrier,
                            end: barrier + t,
                            phase: Phase::Compute { proc: x },
                        });
                    }
                }
            }
            SimResult {
                comm_time,
                overlap_time,
                compute_time,
                exe_time,
                messages: messages.len(),
                elems_sent,
                spans,
            }
        }
        Algorithm::Pio => simulate_pio(part, config),
    }
}

/// Parallel interleaving overlap: per pivot step `k`, the owners of row and
/// column `k` send the fragments other processors need while everyone
/// computes the previous step (Eq. 9).
fn simulate_pio(part: &Partition, config: &SimConfig) -> SimResult {
    let plat = &config.platform;
    let n = part.n();
    let metrics = CommMetrics::from_partition_comm_only(part);
    let kcomp = Proc::ALL
        .map(|x| plat.compute_time(x, metrics.proc(x).elems as u64))
        .into_iter()
        .fold(0.0f64, f64::max);

    let mut messages_total = 0usize;
    let mut elems_total = 0u64;
    // Per-step communication time: per-sender volumes of row/col k
    // fragments, parallel across senders, hop-weighted on a star.
    let mut step_comm = |k: usize| -> f64 {
        let mut per_sender = [0u64; 3];
        let mut msgs = 0usize;
        for x in Proc::ALL {
            for y in x.others() {
                let mut elems = 0u64;
                if part.row_has(y, k) {
                    elems += u64::from(part.row_count(x, k));
                }
                if part.col_has(y, k) {
                    elems += u64::from(part.col_count(x, k));
                }
                if elems == 0 {
                    continue;
                }
                let hops = u64::from(plat.topology.hops(x, y));
                per_sender[x.idx()] += elems * hops;
                msgs += hops as usize;
                elems_total += elems * hops;
            }
        }
        messages_total += msgs;
        per_sender
            .into_iter()
            .map(|e| {
                if e == 0 {
                    0.0
                } else {
                    plat.network.message_time(e)
                }
            })
            .fold(0.0f64, f64::max)
    };

    let mut total = step_comm(0); // pipeline fill
    let mut comm_sum = total;
    for k in 1..n {
        let c = step_comm(k);
        comm_sum += c;
        total += c.max(kcomp);
    }
    total += kcomp; // pipeline drain

    SimResult {
        comm_time: comm_sum,
        overlap_time: 0.0,
        compute_time: kcomp * n as f64,
        exe_time: total,
        messages: messages_total,
        elems_sent: elems_total,
        spans: Vec::new(),
    }
}

/// Simulate all five algorithms with one configuration template.
pub fn simulate_all(part: &Partition, platform: Platform) -> [(Algorithm, SimResult); 5] {
    Algorithm::ALL.map(|a| {
        let config = SimConfig::new(platform, a);
        (a, simulate(part, &config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_cost::{evaluate, HockneyModel, Topology};
    use hetmmm_partition::{PartitionBuilder, Ratio, Rect};

    fn strips(n: usize) -> Partition {
        Partition::from_fn(n, |i, _| {
            if i < n / 3 {
                Proc::P
            } else if i < 2 * n / 3 {
                Proc::R
            } else {
                Proc::S
            }
        })
    }

    fn plat() -> Platform {
        Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9)
    }

    #[test]
    fn scb_sim_matches_model_exactly() {
        let part = strips(12);
        let p = plat();
        let sim = simulate(&part, &SimConfig::new(p, Algorithm::Scb));
        let model = evaluate(Algorithm::Scb, &part, &p);
        assert!((sim.comm_time - model.comm).abs() < 1e-12);
        assert!((sim.exe_time - model.total).abs() < 1e-12);
        assert_eq!(sim.elems_sent, part.voc());
    }

    #[test]
    fn pcb_broadcast_sim_matches_eq6_model() {
        let part = strips(12);
        let p = plat();
        let sim = simulate(&part, &SimConfig::new(p, Algorithm::Pcb).with_broadcast());
        let model = evaluate(Algorithm::Pcb, &part, &p);
        assert!((sim.comm_time - model.comm).abs() < 1e-12);
        assert!((sim.exe_time - model.total).abs() < 1e-12);
    }

    #[test]
    fn sco_pco_match_models() {
        let part = strips(12);
        let p = plat();
        for algo in [Algorithm::Sco, Algorithm::Pco] {
            let cfg = if algo == Algorithm::Pco {
                SimConfig::new(p, algo).with_broadcast()
            } else {
                SimConfig::new(p, algo)
            };
            let sim = simulate(&part, &cfg);
            let model = evaluate(algo, &part, &p);
            assert!(
                (sim.exe_time - model.total).abs() < 1e-12,
                "{algo}: {} vs {}",
                sim.exe_time,
                model.total
            );
            assert!(sim.overlap_time > 0.0);
        }
    }

    #[test]
    fn pio_sim_matches_model_on_fully_connected() {
        // The model's Eq. 9 step cost is the serial per-step volume; the
        // simulator parallelizes across senders, so it can only be faster.
        let part = strips(12);
        let p = plat();
        let sim = simulate(&part, &SimConfig::new(p, Algorithm::Pio));
        let model = evaluate(Algorithm::Pio, &part, &p);
        assert!(sim.exe_time <= model.total + 1e-12);
        assert!(sim.exe_time >= sim.compute_time - 1e-12);
    }

    #[test]
    fn star_topology_slower_or_equal() {
        let part = strips(12);
        let full = Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9);
        let star = full.with_star(Proc::P);
        for algo in Algorithm::ALL {
            let a = simulate(&part, &SimConfig::new(full, algo));
            let b = simulate(&part, &SimConfig::new(star, algo));
            assert!(
                b.exe_time >= a.exe_time - 1e-12,
                "{algo}: star {} < full {}",
                b.exe_time,
                a.exe_time
            );
        }
    }

    #[test]
    fn relay_leg_waits_for_inbound_hop() {
        // Parallel schedule on a star: the hub's relay of R→S data must
        // start no earlier than R's hop to the hub ends.
        let part = strips(9);
        let p = Platform::new(Ratio::new(1, 1, 1), 1e9, 1e-9).with_star(Proc::P);
        let sim = simulate(&part, &SimConfig::new(p, Algorithm::Pcb).with_spans());
        sim.assert_spans_consistent();
        // Find a relayed span: hub sends to a rim processor data that the
        // rim pair exchanged.
        let transfers: Vec<&Span> = sim
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Transfer { .. }))
            .collect();
        assert!(!transfers.is_empty());
    }

    #[test]
    fn square_corner_beats_strips_on_comm() {
        let n = 12;
        let corner = PartitionBuilder::new(n)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(8, 11, 8, 11), Proc::S)
            .build();
        let strips = strips(n);
        let p = plat();
        let a = simulate(&corner, &SimConfig::new(p, Algorithm::Scb));
        let b = simulate(&strips, &SimConfig::new(p, Algorithm::Scb));
        assert!(a.comm_time < b.comm_time);
    }

    #[test]
    fn fig14_configuration_runs() {
        // Fig. 14 parameters scaled down: 1000 MB/s, 8-byte elements.
        let network = HockneyModel::from_bandwidth(1000e6, 8.0);
        let p = Platform {
            ratio: Ratio::new(10, 1, 1),
            base_speed: 1e9,
            network,
            topology: Topology::FullyConnected,
        };
        let part = strips(30);
        let sim = simulate(&part, &SimConfig::new(p, Algorithm::Scb));
        assert!(sim.comm_time > 0.0);
        assert_eq!(sim.elems_sent, part.voc());
    }

    #[test]
    fn span_recording_is_complete_for_barrier_algos() {
        let part = strips(9);
        let p = plat();
        let sim = simulate(&part, &SimConfig::new(p, Algorithm::Scb).with_spans());
        sim.assert_spans_consistent();
        let transfer_count = sim
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Transfer { .. }))
            .count();
        assert_eq!(transfer_count, sim.messages);
        let compute_count = sim
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Compute { .. }))
            .count();
        assert_eq!(compute_count, 3);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use hetmmm_cost::Platform;
    use hetmmm_partition::{Partition, Proc, Ratio};

    #[test]
    fn utilization_sums_are_sane() {
        let part = Partition::from_fn(12, |i, _| {
            if i < 4 {
                Proc::P
            } else if i < 8 {
                Proc::R
            } else {
                Proc::S
            }
        });
        let plat = Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9);
        let sim = simulate(&part, &SimConfig::new(plat, Algorithm::Scb).with_spans());
        for proc in Proc::ALL {
            let c = sim.compute_utilization(proc);
            let s = sim.send_utilization(proc);
            assert!((0.0..=1.0 + 1e-9).contains(&c), "{proc}: {c}");
            assert!((0.0..=1.0 + 1e-9).contains(&s), "{proc}: {s}");
        }
        // The slowest processor's compute phase dominates the barrier
        // epilogue; the fast processor idles more.
        assert!(sim.compute_utilization(Proc::S) > sim.compute_utilization(Proc::P));
    }

    #[test]
    fn unrecorded_spans_yield_zero_utilization() {
        let part = Partition::new(6, Proc::P);
        let plat = Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9);
        let sim = simulate(&part, &SimConfig::new(plat, Algorithm::Scb));
        assert_eq!(sim.compute_utilization(Proc::P), 0.0);
    }
}
