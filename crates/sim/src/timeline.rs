//! Simulation results: timed spans and aggregates.

use hetmmm_partition::Proc;

use serde::{Deserialize, Serialize};

/// What a span of simulated time represents.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// A network transfer.
    Transfer {
        /// Sender.
        from: Proc,
        /// Receiver.
        to: Proc,
        /// Elements carried.
        elems: u64,
    },
    /// Computation overlapped with communication (SCO/PCO `o_X`).
    OverlapCompute {
        /// The computing processor.
        proc: Proc,
    },
    /// Post-barrier (or per-step) computation.
    Compute {
        /// The computing processor.
        proc: Proc,
    },
}

/// A half-open time interval `[start, end)` tagged with its phase.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
    /// What happened.
    pub phase: Phase,
}

/// Aggregated outcome of one simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Time at which all communication completed.
    pub comm_time: f64,
    /// Time spent in overlapped computation (max over processors; 0 for
    /// barrier algorithms).
    pub overlap_time: f64,
    /// Post-communication computation time (max over processors).
    pub compute_time: f64,
    /// Total simulated execution time.
    pub exe_time: f64,
    /// Number of point-to-point transfers (including relay legs).
    pub messages: usize,
    /// Total elements that crossed the network (hop-weighted).
    pub elems_sent: u64,
    /// Recorded spans (empty unless event recording was enabled).
    pub spans: Vec<Span>,
}

impl SimResult {
    /// Sanity-check the recorded spans: non-negative durations, nothing
    /// beyond `exe_time`.
    pub fn assert_spans_consistent(&self) {
        for span in &self.spans {
            assert!(span.end >= span.start, "negative span {span:?}");
            assert!(
                span.end <= self.exe_time + 1e-9,
                "span beyond exe_time: {span:?}"
            );
        }
    }

    /// Fraction of the execution a processor spent computing (overlap +
    /// post-barrier), from the recorded spans. Requires span recording;
    /// returns 0 otherwise.
    pub fn compute_utilization(&self, proc: Proc) -> f64 {
        if self.exe_time <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| {
                matches!(s.phase,
                    Phase::Compute { proc: p } | Phase::OverlapCompute { proc: p }
                    if p == proc)
            })
            .map(|s| s.end - s.start)
            .sum();
        busy / self.exe_time
    }

    /// Fraction of the execution a processor spent transmitting, from the
    /// recorded spans.
    pub fn send_utilization(&self, proc: Proc) -> f64 {
        if self.exe_time <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| matches!(s.phase, Phase::Transfer { from, .. } if from == proc))
            .map(|s| s.end - s.start)
            .sum();
        busy / self.exe_time
    }
}
