//! The heterogeneous platform description: relative speeds + network.
//!
//! Section IV assumes heterogeneity in processing speed only
//! (`P_r : R_r : S_r`, Assumption 2) and a fully connected network
//! (Assumption 3); Section X adds the star topology as the second case to
//! consider for three processors.

use crate::hockney::HockneyModel;
use hetmmm_partition::{Proc, Ratio};
use serde::{Deserialize, Serialize};

/// Network topology (Section X).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every processor exchanges data directly with every other.
    FullyConnected,
    /// One central processor relays traffic between the other two.
    Star {
        /// The hub processor.
        center: Proc,
    },
}

impl Topology {
    /// The number of link traversals a message from `from` to `to` costs.
    pub fn hops(self, from: Proc, to: Proc) -> u32 {
        assert_ne!(from, to, "no self-messages");
        match self {
            Topology::FullyConnected => 1,
            Topology::Star { center } => {
                if from == center || to == center {
                    1
                } else {
                    2
                }
            }
        }
    }
}

/// A three-processor heterogeneous platform.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Relative processing speeds `P_r : R_r : S_r`.
    pub ratio: Ratio,
    /// Scalar updates per second achieved by the *slowest* processor `S`.
    pub base_speed: f64,
    /// Communication model.
    pub network: HockneyModel,
    /// Network topology.
    pub topology: Topology,
}

impl Platform {
    /// A platform with the paper's default assumptions: fully connected,
    /// latency-free network.
    pub fn new(ratio: Ratio, base_speed: f64, t_send: f64) -> Platform {
        Platform {
            ratio,
            base_speed,
            network: HockneyModel::per_element(t_send),
            topology: Topology::FullyConnected,
        }
    }

    /// Switch to a star topology centered on `center`.
    pub fn with_star(mut self, center: Proc) -> Platform {
        self.topology = Topology::Star { center };
        self
    }

    /// Replace the network model.
    pub fn with_network(mut self, network: HockneyModel) -> Platform {
        self.network = network;
        self
    }

    /// Updates per second of a given processor:
    /// `base_speed * X_r / S_r`.
    pub fn speed(&self, proc: Proc) -> f64 {
        self.base_speed * f64::from(self.ratio.speed(proc)) / f64::from(self.ratio.s)
    }

    /// Seconds for `proc` to execute `updates` scalar updates.
    pub fn compute_time(&self, proc: Proc, updates: u64) -> f64 {
        updates as f64 / self.speed(proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speeds_follow_ratio() {
        let plat = Platform::new(Ratio::new(4, 2, 1), 1e9, 1e-9);
        assert!((plat.speed(Proc::P) - 4e9).abs() < 1.0);
        assert!((plat.speed(Proc::R) - 2e9).abs() < 1.0);
        assert!((plat.speed(Proc::S) - 1e9).abs() < 1.0);
    }

    #[test]
    fn compute_time_scales_inversely() {
        let plat = Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9);
        let t_s = plat.compute_time(Proc::S, 1_000_000_000);
        let t_p = plat.compute_time(Proc::P, 1_000_000_000);
        assert!((t_s - 1.0).abs() < 1e-9);
        assert!((t_p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn star_doubles_rim_traffic() {
        let star = Topology::Star { center: Proc::P };
        assert_eq!(star.hops(Proc::R, Proc::S), 2);
        assert_eq!(star.hops(Proc::R, Proc::P), 1);
        assert_eq!(star.hops(Proc::P, Proc::S), 1);
        assert_eq!(Topology::FullyConnected.hops(Proc::R, Proc::S), 1);
    }

    #[test]
    #[should_panic(expected = "no self-messages")]
    fn self_message_rejected() {
        let _ = Topology::FullyConnected.hops(Proc::P, Proc::P);
    }

    #[test]
    fn non_normalized_ratio_base_is_s() {
        // Ratio 10:4:2 has S_r = 2; base_speed describes S itself.
        let plat = Platform::new(Ratio::new(10, 4, 2), 1e9, 1e-9);
        assert!((plat.speed(Proc::S) - 1e9).abs() < 1.0);
        assert!((plat.speed(Proc::P) - 5e9).abs() < 1.0);
    }
}
