//! Execution-time models of the five parallel MMM algorithms (Eqs. 2–9).
//!
//! Each model decomposes the total execution time into communication,
//! overlapped computation, and (remaining) computation, following Section
//! IV-B. The Push legality argument rests on these models: every one of
//! them is monotone non-decreasing in the communication quantities the Push
//! operation reduces, so decreasing VoC can never hurt — the property the
//! integration tests verify empirically.
//!
//! Faithfulness notes:
//! - PCB's per-processor send time `d_X` uses the paper's Eq. 6 formula
//!   (`N·i_X + N·j_X − ∈X`) under the fully connected topology; under the
//!   star topology (Section X) it uses the exact pairwise volumes routed
//!   through the hub, since Eq. 6 does not model relaying.
//! - The bulk-overlap terms `o_X`/`c_X` (Eqs. 7–8) are expressed in scalar
//!   updates: `o_X` counts updates whose three operands are all local.

use crate::platform::{Platform, Topology};
use hetmmm_partition::{pairwise_volumes, CommMetrics, Partition, Proc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five parallel MMM algorithms of Section II.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Algorithm {
    /// Serial Communication with Barrier (Eqs. 2–3).
    Scb,
    /// Parallel Communication with Barrier (Eqs. 4–6).
    Pcb,
    /// Serial Communication with Bulk Overlap (Eq. 7).
    Sco,
    /// Parallel Communication with Bulk Overlap (Eq. 8).
    Pco,
    /// Parallel Interleaving Overlap (Eq. 9).
    Pio,
}

impl Algorithm {
    /// All five algorithms.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Scb,
        Algorithm::Pcb,
        Algorithm::Sco,
        Algorithm::Pco,
        Algorithm::Pio,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Scb => "SCB",
            Algorithm::Pcb => "PCB",
            Algorithm::Sco => "SCO",
            Algorithm::Pco => "PCO",
            Algorithm::Pio => "PIO",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Execution-time breakdown, all in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoTime {
    /// Communication-phase time (serial sum or parallel max, per algorithm).
    pub comm: f64,
    /// Bulk-overlapped computation time (`max o_X`; 0 for barrier
    /// algorithms).
    pub overlap: f64,
    /// Computation time after communication completes (`max c_X`, or the
    /// full `max comp_X` for barrier algorithms).
    pub comp: f64,
    /// Total execution time per the algorithm's composition rule.
    pub total: f64,
}

/// Total elements crossing the network (hop-weighted), plus the number of
/// distinct directed messages — inputs to the serial-communication models.
fn traffic(part: &Partition, topology: Topology) -> (u64, u64) {
    let vol = pairwise_volumes(part);
    let mut elems = 0u64;
    let mut messages = 0u64;
    for x in Proc::ALL {
        for y in Proc::ALL {
            if x == y || vol[x.idx()][y.idx()] == 0 {
                continue;
            }
            let hops = u64::from(topology.hops(x, y));
            elems += vol[x.idx()][y.idx()] * hops;
            messages += hops;
        }
    }
    (elems, messages)
}

/// Per-processor outgoing volume under the parallel-communication models.
fn out_volumes(part: &Partition, topology: Topology) -> [u64; 3] {
    let vol = pairwise_volumes(part);
    let mut out = [0u64; 3];
    match topology {
        Topology::FullyConnected => {
            for x in Proc::ALL {
                for y in Proc::ALL {
                    if x != y {
                        out[x.idx()] += vol[x.idx()][y.idx()];
                    }
                }
            }
        }
        Topology::Star { center } => {
            for x in Proc::ALL {
                for y in Proc::ALL {
                    if x != y {
                        out[x.idx()] += vol[x.idx()][y.idx()];
                        // Rim-to-rim traffic is re-sent by the hub.
                        if x != center && y != center {
                            out[center.idx()] += vol[x.idx()][y.idx()];
                        }
                    }
                }
            }
        }
    }
    out
}

/// PCB send time per processor: the paper's Eq. 6 under a fully connected
/// network, exact routed volumes under a star.
fn d_times(part: &Partition, metrics: &CommMetrics, plat: &Platform) -> [f64; 3] {
    match plat.topology {
        Topology::FullyConnected => {
            // Eq. 6 presumes the data is needed by someone; a processor with
            // no actual outgoing traffic (degenerate partitions) sends
            // nothing.
            let out = out_volumes(part, plat.topology);
            Proc::ALL.map(|x| {
                if out[x.idx()] == 0 {
                    return 0.0;
                }
                let elems = metrics.proc(x).send_elems(metrics.n);
                plat.network.message_time(elems)
            })
        }
        Topology::Star { .. } => {
            let out = out_volumes(part, plat.topology);
            Proc::ALL.map(|x| {
                let elems = out[x.idx()];
                if elems == 0 {
                    0.0
                } else {
                    plat.network.message_time(elems)
                }
            })
        }
    }
}

fn max3(values: [f64; 3]) -> f64 {
    values.into_iter().fold(0.0f64, f64::max)
}

/// Full-kij computation time per processor: `N · ∈X` updates.
fn comp_times(metrics: &CommMetrics, plat: &Platform) -> [f64; 3] {
    Proc::ALL.map(|x| plat.compute_time(x, metrics.n as u64 * metrics.proc(x).elems as u64))
}

/// Evaluate one algorithm's execution time for a partition on a platform.
///
/// ```
/// use hetmmm_cost::{evaluate, Algorithm, Platform};
/// use hetmmm_partition::{Partition, Proc, Ratio};
///
/// // Three equal strips on a 2:1:1 platform.
/// let part = Partition::from_fn(9, |i, _| {
///     if i < 3 { Proc::P } else if i < 6 { Proc::R } else { Proc::S }
/// });
/// let platform = Platform::new(Ratio::new(2, 1, 1), 1e9, 1e-9);
/// let t = evaluate(Algorithm::Scb, &part, &platform);
/// assert!(t.comm > 0.0 && t.total == t.comm + t.comp);
/// ```
pub fn evaluate(algo: Algorithm, part: &Partition, plat: &Platform) -> AlgoTime {
    match algo {
        Algorithm::Scb => {
            let metrics = CommMetrics::from_partition_comm_only(part);
            let (elems, messages) = traffic(part, plat.topology);
            let comm = plat.network.beta * elems as f64 + plat.network.alpha * messages as f64;
            let comp = max3(comp_times(&metrics, plat));
            AlgoTime {
                comm,
                overlap: 0.0,
                comp,
                total: comm + comp,
            }
        }
        Algorithm::Pcb => {
            let metrics = CommMetrics::from_partition_comm_only(part);
            let comm = max3(d_times(part, &metrics, plat));
            let comp = max3(comp_times(&metrics, plat));
            AlgoTime {
                comm,
                overlap: 0.0,
                comp,
                total: comm + comp,
            }
        }
        Algorithm::Sco | Algorithm::Pco => {
            let metrics = CommMetrics::from_partition(part);
            let comm = if algo == Algorithm::Sco {
                let (elems, messages) = traffic(part, plat.topology);
                plat.network.beta * elems as f64 + plat.network.alpha * messages as f64
            } else {
                max3(d_times(part, &metrics, plat))
            };
            let overlap =
                max3(Proc::ALL.map(|x| plat.compute_time(x, metrics.proc(x).local_updates)));
            let comp = max3(
                Proc::ALL.map(|x| plat.compute_time(x, metrics.proc(x).remote_updates(metrics.n))),
            );
            AlgoTime {
                comm,
                overlap,
                comp,
                total: comm.max(overlap) + comp,
            }
        }
        Algorithm::Pio => {
            let metrics = CommMetrics::from_partition_comm_only(part);
            let n = part.n();
            // Per-step computation: each pivot step applies one update to
            // every owned element.
            let kcomp = max3(Proc::ALL.map(|x| plat.compute_time(x, metrics.proc(x).elems as u64)));
            let step_comm = |k: usize| -> f64 {
                let units =
                    u64::from(part.procs_in_row(k) - 1) + u64::from(part.procs_in_col(k) - 1);
                if units == 0 {
                    0.0
                } else {
                    plat.network.alpha + plat.network.beta * (n as u64 * units) as f64
                }
            };
            let mut total = step_comm(0); // pipeline fill: send step 0
            let mut comm_sum = step_comm(0);
            for k in 1..n {
                let c = step_comm(k);
                comm_sum += c;
                total += c.max(kcomp);
            }
            total += kcomp; // pipeline drain: compute the final step
            AlgoTime {
                comm: comm_sum,
                overlap: 0.0,
                comp: kcomp * n as f64,
                total,
            }
        }
    }
}

/// PIO with block interleaving: the paper's "(or k rows and columns) at a
/// time" variant of Eq. 9. Pivot steps are grouped `block` at a time: each
/// super-step sends the fragments of `block` consecutive pivot lines (one
/// message per sender per super-step, so per-message latency is amortized)
/// while the previous super-step's computation runs.
///
/// `block = 1` is exactly [`Algorithm::Pio`].
pub fn evaluate_pio_blocked(part: &Partition, plat: &Platform, block: usize) -> AlgoTime {
    assert!(block >= 1, "block size must be at least 1");
    let metrics = CommMetrics::from_partition_comm_only(part);
    let n = part.n();
    // Per-super-step computation: `block` updates per owned element.
    let kcomp =
        max3(Proc::ALL.map(|x| plat.compute_time(x, (block * metrics.proc(x).elems) as u64)));
    let super_comm = |s: usize| -> f64 {
        let mut units = 0u64;
        for k in (s * block)..((s + 1) * block).min(n) {
            units += u64::from(part.procs_in_row(k) - 1) + u64::from(part.procs_in_col(k) - 1);
        }
        if units == 0 {
            0.0
        } else {
            plat.network.alpha + plat.network.beta * (n as u64 * units) as f64
        }
    };
    let steps = n.div_ceil(block);
    let mut total = super_comm(0);
    let mut comm_sum = super_comm(0);
    for s in 1..steps {
        let c = super_comm(s);
        comm_sum += c;
        total += c.max(kcomp);
    }
    total += kcomp;
    AlgoTime {
        comm: comm_sum,
        overlap: 0.0,
        comp: kcomp * steps as f64,
        total,
    }
}

/// Evaluate all five algorithms.
pub fn evaluate_all(part: &Partition, plat: &Platform) -> [(Algorithm, AlgoTime); 5] {
    Algorithm::ALL.map(|a| (a, evaluate(a, part, plat)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{Partition, Ratio};

    fn strips(n: usize) -> Partition {
        Partition::from_fn(n, |i, _| {
            if i < n / 3 {
                Proc::P
            } else if i < 2 * n / 3 {
                Proc::R
            } else {
                Proc::S
            }
        })
    }

    fn plat(ratio: Ratio) -> Platform {
        Platform::new(ratio, 1e9, 1e-9)
    }

    #[test]
    fn scb_comm_equals_voc_times_tsend() {
        let part = strips(9);
        let p = plat(Ratio::new(1, 1, 1));
        let t = evaluate(Algorithm::Scb, &part, &p);
        // Latency-free, fully connected: comm = VoC * beta.
        assert!((t.comm - part.voc() as f64 * 1e-9).abs() < 1e-15);
        assert_eq!(t.total, t.comm + t.comp);
    }

    #[test]
    fn uniform_partition_has_zero_comm() {
        let part = Partition::new(8, Proc::P);
        let p = plat(Ratio::new(2, 1, 1));
        for algo in Algorithm::ALL {
            let t = evaluate(algo, &part, &p);
            assert_eq!(t.comm, 0.0, "{algo}");
            assert!(t.total > 0.0, "{algo}");
        }
    }

    #[test]
    fn pcb_comm_is_max_of_eq6() {
        let part = strips(9);
        let p = plat(Ratio::new(1, 1, 1));
        let metrics = CommMetrics::from_partition_comm_only(&part);
        let expect = Proc::ALL
            .iter()
            .map(|&x| metrics.proc(x).send_elems(9) as f64 * 1e-9)
            .fold(0.0f64, f64::max);
        let t = evaluate(Algorithm::Pcb, &part, &p);
        assert!((t.comm - expect).abs() < 1e-15);
        // Parallel communication can not be slower than serial.
        let serial = evaluate(Algorithm::Scb, &part, &p);
        assert!(t.comm <= serial.comm + 1e-15);
    }

    #[test]
    fn overlap_never_hurts() {
        let part = strips(12);
        let p = plat(Ratio::new(2, 1, 1));
        let scb = evaluate(Algorithm::Scb, &part, &p);
        let sco = evaluate(Algorithm::Sco, &part, &p);
        let pcb = evaluate(Algorithm::Pcb, &part, &p);
        let pco = evaluate(Algorithm::Pco, &part, &p);
        assert!(sco.total <= scb.total + 1e-12);
        assert!(pco.total <= pcb.total + 1e-12);
        assert!(sco.overlap > 0.0);
    }

    #[test]
    fn star_topology_increases_serial_comm() {
        let part = strips(9);
        let ratio = Ratio::new(1, 1, 1);
        let full = evaluate(Algorithm::Scb, &part, &plat(ratio));
        let star = evaluate(Algorithm::Scb, &part, &plat(ratio).with_star(Proc::P));
        assert!(star.comm > full.comm, "relayed traffic must cost more");
    }

    #[test]
    fn star_hub_bears_relay_load_in_pcb() {
        let part = strips(9);
        let ratio = Ratio::new(1, 1, 1);
        let p = plat(ratio).with_star(Proc::P);
        let out = out_volumes(&part, p.topology);
        let vol = pairwise_volumes(&part);
        let relay = vol[Proc::R.idx()][Proc::S.idx()] + vol[Proc::S.idx()][Proc::R.idx()];
        let direct: u64 = Proc::ALL
            .iter()
            .filter(|&&y| y != Proc::P)
            .map(|&y| vol[Proc::P.idx()][y.idx()])
            .sum();
        assert_eq!(out[Proc::P.idx()], direct + relay);
    }

    #[test]
    fn pio_total_bounded_by_serial_phases() {
        let part = strips(12);
        let p = plat(Ratio::new(2, 1, 1));
        let t = evaluate(Algorithm::Pio, &part, &p);
        // Interleaving can never be slower than doing all communication and
        // all computation serially, nor faster than either phase alone.
        assert!(t.total <= t.comm + t.comp + 1e-12);
        assert!(t.total >= t.comp - 1e-12);
        assert!(t.total >= t.comm - 1e-12);
    }

    #[test]
    fn faster_processors_lower_compute_time() {
        let part = strips(12);
        let slow = evaluate(Algorithm::Scb, &part, &plat(Ratio::new(1, 1, 1)));
        let fast = evaluate(Algorithm::Scb, &part, &plat(Ratio::new(4, 2, 1)));
        // Same partition, faster P and R: the max comp time cannot grow.
        assert!(fast.comp <= slow.comp + 1e-12);
    }

    #[test]
    fn voc_reduction_reduces_every_model() {
        // The central monotonicity claim of Section IV-B: at high
        // heterogeneity (well past the P_r ~ 10.6 crossover, where discretization
        // cannot flip the ordering) the Square-Corner candidate has strictly lower VoC
        // than the Traditional-Rectangle; every model must rank the shapes
        // consistently with their communication volumes, computation being
        // equal (identical element counts).
        use hetmmm_shapes::CandidateType;
        let ratio = Ratio::new(25, 1, 1);
        let n = 60;
        let sc = CandidateType::SquareCorner
            .construct(n, ratio)
            .unwrap()
            .partition;
        let tr = CandidateType::TraditionalRectangle
            .construct(n, ratio)
            .unwrap()
            .partition;
        assert!(sc.voc() < tr.voc(), "SC must beat TR at 25:1:1");
        let p = plat(ratio);
        let a = evaluate(Algorithm::Scb, &sc, &p);
        let b = evaluate(Algorithm::Scb, &tr, &p);
        assert!(a.comm < b.comm, "SCB comm follows VoC exactly");
        assert!(a.total < b.total, "equal computation, so totals follow too");
        assert!((a.comp - b.comp).abs() < 1e-12, "identical element counts");
    }

    #[test]
    fn pio_blocked_with_block_one_matches_pio() {
        let part = strips(12);
        let p = plat(Ratio::new(2, 1, 1));
        let a = evaluate(Algorithm::Pio, &part, &p);
        let b = evaluate_pio_blocked(&part, &p, 1);
        assert!((a.total - b.total).abs() < 1e-15);
        assert!((a.comm - b.comm).abs() < 1e-15);
    }

    #[test]
    fn blocking_amortizes_latency() {
        // With a per-message latency, grouping pivot lines strictly reduces
        // the total number of latency payments.
        let part = strips(24);
        let mut p = plat(Ratio::new(2, 1, 1));
        p.network = p.network.with_latency(1e-5);
        let b1 = evaluate_pio_blocked(&part, &p, 1);
        let b4 = evaluate_pio_blocked(&part, &p, 4);
        let b8 = evaluate_pio_blocked(&part, &p, 8);
        assert!(b4.comm < b1.comm);
        assert!(b8.comm < b4.comm);
    }

    #[test]
    fn huge_block_degenerates_to_barrier_shape() {
        // block >= n: one send super-step then one compute block — the
        // total approaches comm + comp with no interleaving benefit.
        let part = strips(12);
        let p = plat(Ratio::new(2, 1, 1));
        let b = evaluate_pio_blocked(&part, &p, 12);
        assert!((b.total - (b.comm + b.comp)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_block_rejected() {
        let part = strips(6);
        let p = plat(Ratio::new(2, 1, 1));
        let _ = evaluate_pio_blocked(&part, &p, 0);
    }
}
