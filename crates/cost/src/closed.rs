//! Normalized closed-form costs (Section X-A, Fig. 13).
//!
//! With the matrix normalized to `N = 1` and `T = P_r + R_r + S_r`
//! (Eq. 12), the SCB communication costs of the two headline shapes are:
//!
//! - **Square-Corner**: `2 (R_width + S_width) = 2 (√(R_r/T) + √(S_r/T))` —
//!   each corner square of side `√(X_r/T)` communicates along its two
//!   exposed dimensions;
//! - **Block-Rectangle**: `R_length + 1 = (R_r + S_r)/T + 1` — every matrix
//!   column plus every strip row is shared.
//!
//! Multiplying by `N²·T_send` recovers absolute communication seconds. The
//! Fig. 13 surface plots these two functions over `R_r ∈ [1, 10]`,
//! `P_r ∈ [1, 20]` with the feasibility wall `P_r = 2√R_r` (Theorem 9.1
//! with `S_r = 1`).

use hetmmm_partition::Ratio;
use serde::{Deserialize, Serialize};

/// Normalized SCB communication cost of each canonical shape the Section X
/// analysis compares (fraction of `N²` elements crossing the network).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ShapeCost {
    /// Square-Corner: `2(√(R_r/T) + √(S_r/T))`.
    SquareCorner,
    /// Block-Rectangle: `(R_r + S_r)/T + 1`.
    BlockRectangle,
}

/// Normalized SCB communication volume (fraction of `N²`) of a shape.
///
/// Returns `None` for the Square-Corner when Theorem 9.1 makes it
/// infeasible (`√(R_r/T) + √(S_r/T) > 1`).
pub fn scb_comm_norm(shape: ShapeCost, ratio: Ratio) -> Option<f64> {
    let t = f64::from(ratio.total());
    let r = f64::from(ratio.r) / t;
    let s = f64::from(ratio.s) / t;
    match shape {
        ShapeCost::SquareCorner => {
            let width_sum = r.sqrt() + s.sqrt();
            if width_sum > 1.0 {
                None
            } else {
                Some(2.0 * width_sum)
            }
        }
        ShapeCost::BlockRectangle => Some(r + s + 1.0),
    }
}

/// Does the Square-Corner partition beat the Block-Rectangle under SCB on a
/// fully connected network at this ratio? (`None` when Square-Corner is
/// infeasible.)
pub fn sc_beats_br(ratio: Ratio) -> Option<bool> {
    let sc = scb_comm_norm(ShapeCost::SquareCorner, ratio)?;
    let br = scb_comm_norm(ShapeCost::BlockRectangle, ratio)?;
    Some(sc < br)
}

/// Normalized SCB communication volume for *any* of the six candidates
/// (extending the Section X-A analysis beyond the two shapes the paper
/// works out). Eq. 1 weights each line by `c − 1` (distinct owners minus
/// one); with the matrix normalized to 1 and `a = R_r/T`, `b = S_r/T`:
///
/// | shape | row units | col units | VoC/N² |
/// |-------|-----------|-----------|--------|
/// | Square-Corner | `√a + √b` | `√a + √b` | `2(√a + √b)` |
/// | Rectangle-Corner | `max(a/x*, b/(1−x*))` | `1` | `1 + max(h_r, h_s)` |
/// | Square-Rectangle | `1 + √b` (S rows host R, S and P) | `√b` | `1 + 2√b` |
/// | Block-Rectangle | `a + b` (strip rows host R and S) | `1` | `1 + a + b` |
/// | L-Rectangle | `1` (every row hosts two owners) | `1 − a` | `2 − a` |
/// | Traditional-Rectangle | `1` | `a + b` | `1 + a + b` |
///
/// Each formula is cross-validated against the grid constructors at
/// N = 400 in the tests (agreement to O(1/N)).
pub fn scb_comm_norm_candidate(ty: CandidateKind, ratio: Ratio) -> Option<f64> {
    let t = f64::from(ratio.total());
    let a = f64::from(ratio.r) / t;
    let b = f64::from(ratio.s) / t;
    match ty {
        CandidateKind::SquareCorner => {
            let w = a.sqrt() + b.sqrt();
            if w > 1.0 {
                None
            } else {
                Some(2.0 * w)
            }
        }
        CandidateKind::RectangleCorner => {
            // Corner rectangles of combined width 1 at the Eq. 13 optimum:
            // every column shared (R|S below, P above) -> 1; shared rows =
            // max(h_r, h_s) rows host two+ processors... with both
            // rectangles bottom-anchored, rows up to max height are
            // shared: rows [0, min) host R,S,P; rows [min, max) host one
            // rect + P.
            let x = a.sqrt() / (a.sqrt() + b.sqrt());
            let x = x.clamp(a + 1e-9, 1.0 - b - 1e-9);
            let h_r = a / x;
            let h_s = b / (1.0 - x);
            Some(1.0 + h_r.max(h_s))
        }
        CandidateKind::SquareRectangle => {
            // R full-height band of width a: its columns host only R, but
            // every row hosts R and P (+1 each), and the √b rows of the S
            // square host R, S and P (c = 3, +2): rows = 1 + √b. The S
            // square adds √b shared columns.
            Some(1.0 + 2.0 * b.sqrt())
        }
        CandidateKind::BlockRectangle => Some(a + b + 1.0),
        CandidateKind::LRectangle => {
            // R full-height band (width a, clean columns); every row hosts
            // exactly two owners (R+P above the strip, R+S inside it):
            // rows = 1. The strip's columns host S and P: cols = 1 − a.
            Some(2.0 - a)
        }
        CandidateKind::TraditionalRectangle => Some(1.0 + a + b),
    }
}

/// The six candidate kinds, mirrored here so the cost crate's closed
/// forms do not depend on grid constructors (the shapes crate's
/// `CandidateType` maps 1:1; cross-validated in tests).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CandidateKind {
    /// Type 1A.
    SquareCorner,
    /// Type 1B.
    RectangleCorner,
    /// Type 3.
    SquareRectangle,
    /// Type 4.
    BlockRectangle,
    /// Type 5.
    LRectangle,
    /// Type 6.
    TraditionalRectangle,
}

impl CandidateKind {
    /// All six kinds.
    pub const ALL: [CandidateKind; 6] = [
        CandidateKind::SquareCorner,
        CandidateKind::RectangleCorner,
        CandidateKind::SquareRectangle,
        CandidateKind::BlockRectangle,
        CandidateKind::LRectangle,
        CandidateKind::TraditionalRectangle,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_corner_infeasible_at_low_heterogeneity() {
        // 2:2:1 → √(2/5) + √(1/5) ≈ 1.08 > 1.
        assert_eq!(
            scb_comm_norm(ShapeCost::SquareCorner, Ratio::new(2, 2, 1)),
            None
        );
    }

    #[test]
    fn block_rectangle_always_feasible() {
        for ratio in Ratio::paper_ratios() {
            let br = scb_comm_norm(ShapeCost::BlockRectangle, ratio).unwrap();
            assert!(br > 1.0 && br < 2.0);
        }
    }

    #[test]
    fn square_corner_wins_at_high_heterogeneity() {
        // 10:1:1 → SC = 2·2·√(1/12) ≈ 1.155, BR = 2/12 + 1 ≈ 1.167.
        assert_eq!(sc_beats_br(Ratio::new(10, 1, 1)), Some(true));
        // Far out the trend only strengthens.
        assert_eq!(sc_beats_br(Ratio::new(50, 1, 1)), Some(true));
    }

    #[test]
    fn block_rectangle_wins_near_homogeneity() {
        // 3:1:1 → SC = 4√(1/5) ≈ 1.789, BR = 1.4.
        assert_eq!(sc_beats_br(Ratio::new(3, 1, 1)), Some(false));
    }

    #[test]
    fn crossover_exists_along_p_axis() {
        // With R_r = S_r = 1, sweep P_r: BR must win early, SC late.
        let mut saw_br_win = false;
        let mut saw_sc_win = false;
        let mut crossover = None;
        let mut prev_sc_wins = None;
        for p in 2..=60u32 {
            if let Some(sc_wins) = sc_beats_br(Ratio::new(p, 1, 1)) {
                if sc_wins {
                    saw_sc_win = true;
                } else {
                    saw_br_win = true;
                }
                if prev_sc_wins == Some(false) && sc_wins {
                    crossover = Some(p);
                }
                prev_sc_wins = Some(sc_wins);
            }
        }
        assert!(saw_br_win && saw_sc_win, "both regimes must appear");
        let crossover = crossover.expect("a crossover P_r must exist");
        // SC = 4√(1/T), BR = 2/T + 1 with T = P+2; equality near T ≈ 12.6.
        assert!(
            (9..=13).contains(&crossover),
            "crossover at unexpected P_r = {crossover}"
        );
    }

    #[test]
    fn normalized_cost_matches_grid_voc() {
        // The closed forms should agree with grid-measured VoC of the
        // constructed candidates to O(1/N).
        use hetmmm_shapes::CandidateType;
        let n = 200;
        for &(p, r, s) in &[(10u32, 1u32, 1u32), (5, 1, 1), (20, 3, 1)] {
            let ratio = Ratio::new(p, r, s);
            if let Some(c) = CandidateType::SquareCorner.construct(n, ratio) {
                let grid = c.partition.voc() as f64 / (n * n) as f64;
                let closed = scb_comm_norm(ShapeCost::SquareCorner, ratio).unwrap();
                assert!(
                    (grid - closed).abs() < 0.06,
                    "SC ratio {ratio}: grid {grid} vs closed {closed}"
                );
            }
            let c = CandidateType::BlockRectangle.construct(n, ratio).unwrap();
            let grid = c.partition.voc() as f64 / (n * n) as f64;
            let closed = scb_comm_norm(ShapeCost::BlockRectangle, ratio).unwrap();
            assert!(
                (grid - closed).abs() < 0.06,
                "BR ratio {ratio}: grid {grid} vs closed {closed}"
            );
        }
    }

    #[test]
    fn all_candidate_closed_forms_match_grid_voc() {
        use hetmmm_shapes::CandidateType;
        let n = 400;
        let map = [
            (CandidateKind::SquareCorner, CandidateType::SquareCorner),
            (
                CandidateKind::RectangleCorner,
                CandidateType::RectangleCorner,
            ),
            (
                CandidateKind::SquareRectangle,
                CandidateType::SquareRectangle,
            ),
            (CandidateKind::BlockRectangle, CandidateType::BlockRectangle),
            (CandidateKind::LRectangle, CandidateType::LRectangle),
            (
                CandidateKind::TraditionalRectangle,
                CandidateType::TraditionalRectangle,
            ),
        ];
        for &(p, r, s) in &[(10u32, 1u32, 1u32), (5, 2, 1), (20, 3, 1), (3, 2, 1)] {
            let ratio = Ratio::new(p, r, s);
            for (kind, ty) in map {
                let Some(closed) = scb_comm_norm_candidate(kind, ratio) else {
                    continue;
                };
                let Some(c) = ty.construct(n, ratio) else {
                    continue;
                };
                let grid = c.partition.voc() as f64 / (n * n) as f64;
                assert!(
                    (grid - closed).abs() < 0.05,
                    "{kind:?} at {ratio}: grid {grid:.4} vs closed {closed:.4}"
                );
            }
        }
    }

    #[test]
    fn candidate_closed_forms_are_consistent_with_pairwise() {
        // Block-Rectangle and Traditional-Rectangle have identical closed
        // forms (both are 1 + a + b) — the grid should agree to O(1/N).
        let ratio = Ratio::new(5, 2, 1);
        let br = scb_comm_norm_candidate(CandidateKind::BlockRectangle, ratio).unwrap();
        let tr = scb_comm_norm_candidate(CandidateKind::TraditionalRectangle, ratio).unwrap();
        assert!((br - tr).abs() < 1e-12);
    }
}
