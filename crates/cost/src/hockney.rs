//! The Hockney communication model (Section II, [12]).
//!
//! `T_comm = α + β · M`: a fixed per-message latency `α` plus a per-element
//! transfer time `β`. The paper's experiments (Fig. 14) use a 1000 MB/s
//! network and 8-byte matrix elements; [`HockneyModel::from_bandwidth`]
//! builds that configuration.

use serde::{Deserialize, Serialize};

/// Linear Hockney model: `T = alpha + beta * elements`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HockneyModel {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Per-element transfer time in seconds (the paper's `T_send`).
    pub beta: f64,
}

impl HockneyModel {
    /// A latency-free model with the given per-element time (the paper's
    /// analytic sections use `T_send` alone).
    pub fn per_element(t_send: f64) -> HockneyModel {
        HockneyModel {
            alpha: 0.0,
            beta: t_send,
        }
    }

    /// Build from link bandwidth in bytes/second and element size in bytes
    /// (Fig. 14: 1000 MB/s, 8-byte doubles).
    pub fn from_bandwidth(bytes_per_sec: f64, elem_bytes: f64) -> HockneyModel {
        assert!(bytes_per_sec > 0.0 && elem_bytes > 0.0);
        HockneyModel {
            alpha: 0.0,
            beta: elem_bytes / bytes_per_sec,
        }
    }

    /// Add a per-message latency.
    pub fn with_latency(mut self, alpha: f64) -> HockneyModel {
        self.alpha = alpha;
        self
    }

    /// Time to transfer one message of `elems` elements.
    #[inline]
    pub fn message_time(&self, elems: u64) -> f64 {
        if elems == 0 {
            return 0.0;
        }
        self.alpha + self.beta * elems as f64
    }

    /// Time to transfer `elems` elements as a single bulk message per the
    /// barrier algorithms (latency counted once).
    #[inline]
    pub fn bulk_time(&self, elems: u64) -> f64 {
        self.message_time(elems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_element_is_linear() {
        let m = HockneyModel::per_element(2e-9);
        assert_eq!(m.message_time(0), 0.0);
        assert!((m.message_time(1_000_000) - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn from_bandwidth_matches_fig14_setup() {
        // 1000 MB/s, 8-byte elements → 8 ns per element.
        let m = HockneyModel::from_bandwidth(1_000e6, 8.0);
        assert!((m.beta - 8e-9).abs() < 1e-18);
    }

    #[test]
    fn latency_counted_once_per_message() {
        let m = HockneyModel::per_element(1e-9).with_latency(1e-6);
        let t = m.message_time(1000);
        assert!((t - (1e-6 + 1e-6)).abs() < 1e-15);
    }
}
