//! # hetmmm-cost
//!
//! Closed-form performance models of the five parallel MMM algorithms on
//! three heterogeneous processors (Sections II and IV-B of DeFlumere &
//! Lastovetsky 2014), plus the normalized cost functions of the Section X
//! analysis (Fig. 13).
//!
//! The five algorithms differ in *when* data moves relative to computation:
//!
//! | algo | communication | overlap |
//! |------|---------------|---------|
//! | SCB  | serial        | none (barrier) |
//! | PCB  | parallel      | none (barrier) |
//! | SCO  | serial        | bulk (local work during comm) |
//! | PCO  | parallel      | bulk |
//! | PIO  | parallel      | interleaved per pivot step |
//!
//! Communication is modeled with the Hockney linear model
//! `T = α + β·M` ([`hockney`]); processors have relative speeds
//! `P_r : R_r : S_r`; the network is fully connected or a star
//! ([`platform`]). The per-algorithm execution-time formulas (Eqs. 2–9)
//! live in [`models`], and the normalized Square-Corner / Block-Rectangle
//! comparison of Section X-A in [`closed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed;
pub mod hockney;
pub mod models;
pub mod platform;

pub use closed::{sc_beats_br, scb_comm_norm, scb_comm_norm_candidate, CandidateKind, ShapeCost};
pub use hockney::HockneyModel;
pub use models::{evaluate, evaluate_all, evaluate_pio_blocked, AlgoTime, Algorithm};
pub use platform::{Platform, Topology};
