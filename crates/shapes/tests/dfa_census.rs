//! Pipeline validation: DFA fixed points classify into archetypes A–D
//! (Postulate 1) and reduce to Archetype A (Theorems 8.2–8.4).

use hetmmm_partition::{Proc, Ratio};
use hetmmm_push::{beautify, DfaConfig, DfaRunner};
use hetmmm_shapes::{classify, classify_coarse, reduce_to_archetype_a, Archetype};

/// Run a batch of seeds per ratio and check Postulate 1 on the outcomes: at
/// the paper's viewing granularity, the overwhelming majority of fixed
/// points group into the four archetypes (the rest are borderline staircase
/// boundaries, documented in EXPERIMENTS.md — never random scatter).
#[test]
fn postulate_1_holds_on_sampled_seeds() {
    let mut census = std::collections::HashMap::new();
    let mut total = 0usize;
    for &(p, r, s) in &[(2u32, 1u32, 1u32), (3, 1, 1), (5, 2, 1), (2, 2, 1)] {
        let ratio = Ratio::new(p, r, s);
        let runner = DfaRunner::new(DfaConfig::new(30, ratio));
        for out in runner.run_many(0..12u64) {
            assert!(out.converged, "ratio {ratio}");
            let mut part = out.partition;
            // Theorem 8.3: exhaust residual pushes before classifying.
            beautify(&mut part);
            let arch = classify_coarse(&part, 10);
            *census.entry(arch).or_insert(0usize) += 1;
            total += 1;
        }
    }
    let classified = total - census.get(&Archetype::NonShape).copied().unwrap_or(0);
    assert!(
        classified * 100 >= total * 75,
        "too many unclassified fixed points: {census:?}"
    );
    // Archetype A must dominate, as in the paper.
    let a_count = census.get(&Archetype::A).copied().unwrap_or(0);
    assert!(
        a_count * 100 >= total * 30,
        "Archetype A should be the most common outcome: {census:?}"
    );
}

/// Every DFA outcome must reduce to Archetype A without VoC increase.
#[test]
fn every_outcome_reduces_to_a() {
    let ratio = Ratio::new(3, 2, 1);
    let runner = DfaRunner::new(DfaConfig::new(24, ratio));
    for out in runner.run_many(100..110u64) {
        let reduced = reduce_to_archetype_a(&out.partition);
        assert!(reduced.voc() <= out.partition.voc());
        assert_eq!(classify(&reduced), Archetype::A);
        assert_eq!(reduced.elems(Proc::R), out.partition.elems(Proc::R));
        assert_eq!(reduced.elems(Proc::S), out.partition.elems(Proc::S));
    }
}

/// Fixed points never have a higher VoC than the best candidate shape would
/// predict is reachable... and never beat the brute-force minimum over the
/// six canonical candidates by more than the discretization slack. (A
/// sanity band, not a theorem: local optima sit between the global optimum
/// and the start state.)
#[test]
fn fixed_point_voc_is_bounded_by_candidates() {
    let ratio = Ratio::new(2, 1, 1);
    let n = 30;
    let best_candidate_voc = hetmmm_shapes::candidates::all_feasible(n, ratio)
        .into_iter()
        .map(|c| c.partition.voc())
        .min()
        .unwrap();
    let runner = DfaRunner::new(DfaConfig::new(n, ratio));
    for out in runner.run_many(0..8u64) {
        let mut part = out.partition;
        beautify(&mut part);
        // Local optima may modestly beat the canonical set (e.g. the
        // Archetype D sandwich undercuts Square-Corner at low
        // heterogeneity) but an order-of-magnitude gap would signal a VoC
        // accounting bug.
        assert!(part.voc() >= best_candidate_voc / 2);
        assert!(part.voc() <= out.voc_initial);
    }
}
