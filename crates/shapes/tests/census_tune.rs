//! Diagnostic: archetype census quality at various N.
use hetmmm_partition::Ratio;
use hetmmm_push::{beautify, DfaConfig, DfaRunner};
use hetmmm_shapes::{classify, classify_coarse};

#[test]
#[ignore = "diagnostic"]
fn census_quality() {
    // Diagnostic output goes through the tracing facade; attach a stderr
    // sink for the duration so it stays visible under `--ignored` runs.
    let sink = hetmmm_obs::install_sink(std::sync::Arc::new(hetmmm_obs::FmtSink::stderr()));
    for n in [30usize, 60, 100] {
        for &(p, r, s) in &[(2u32, 1, 1), (5, 2, 1), (10, 1, 1), (2, 2, 1)] {
            let ratio = Ratio::new(p, r, s);
            let runner = DfaRunner::new(DfaConfig::new(n, ratio));
            let outs = runner.run_many(0..24u64);
            let mut exact = std::collections::HashMap::new();
            let mut coarse = std::collections::HashMap::new();
            for out in outs {
                let mut part = out.partition;
                beautify(&mut part);
                *exact.entry(format!("{:?}", classify(&part))).or_insert(0) += 1;
                *coarse
                    .entry(format!("{:?}", classify_coarse(&part, 10)))
                    .or_insert(0) += 1;
            }
            hetmmm_obs::message(
                "shapes.census_tune",
                format!("n={n} ratio={ratio}: exact={exact:?} coarse={coarse:?}"),
            );
        }
    }
    hetmmm_obs::uninstall_sink(sink);
}
