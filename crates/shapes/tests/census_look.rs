//! Diagnostic: print coarse NonShape outcomes.
use hetmmm_partition::Proc;
use hetmmm_partition::{downsample, Ratio};
use hetmmm_push::{beautify, DfaConfig, DfaRunner};
use hetmmm_shapes::{classify_coarse, Archetype, RegionProfile};

#[test]
#[ignore = "diagnostic"]
fn show_coarse_nonshapes() {
    // Diagnostic output goes through the tracing facade; attach a stderr
    // sink for the duration so it stays visible under `--ignored` runs.
    let sink = hetmmm_obs::install_sink(std::sync::Arc::new(hetmmm_obs::FmtSink::stderr()));
    let ratio = Ratio::new(2, 1, 1);
    let n = 100;
    let runner = DfaRunner::new(DfaConfig::new(n, ratio));
    let mut shown = 0;
    for seed in 0..24u64 {
        let out = runner.run_seed(seed);
        let mut part = out.partition;
        beautify(&mut part);
        if classify_coarse(&part, 10) == Archetype::NonShape && shown < 4 {
            shown += 1;
            let coarse = downsample(&part, 10);
            let pr = RegionProfile::new(&coarse, Proc::R);
            let ps = RegionProfile::new(&coarse, Proc::S);
            hetmmm_obs::message("shapes.census_look", format!("seed {seed} voc={}\ncoarse:\n{coarse:?}\nR: kind={:?} corners={} rect={:?}\nS: kind={:?} corners={} rect={:?}", part.voc(), pr.kind, pr.corners, pr.rect, ps.kind, ps.corners, ps.rect));
        }
    }
    hetmmm_obs::uninstall_sink(sink);
}
