//! Archetype reductions (Section VIII, Theorems 8.1–8.4).
//!
//! The paper proves that every Archetype B, C and D partition can be
//! transformed into an Archetype A partition without increasing the volume
//! of communication, so only Archetype A shapes need further study.
//!
//! - **Theorem 8.1** — translating the two slower processors *jointly*
//!   (keeping their relative position) does not change the VoC:
//!   [`translate_combined`].
//! - **Theorem 8.2** — an Archetype B "L + rectangle" pair can be reshaped
//!   into two disjoint rectangles within the same bounding box.
//! - **Theorem 8.3** — Archetype C partitions still admit Push operations in
//!   the directions the randomized run did not select; applying them (the
//!   program's "beautify" pass) finishes the job.
//! - **Theorem 8.4** — an Archetype D "surround" reduces to B by moving the
//!   inner rectangle to a corner of the outer enclosing rectangle
//!   (the two-processor canonical-form move of [8]), then to A by
//!   Theorem 8.2.
//!
//! [`reduce_to_archetype_a`] composes all of the above into a single
//! operation and verifies the VoC guarantee at runtime.

use crate::archetype::{classify, Archetype};
use crate::candidates::CandidateType;
use hetmmm_partition::{Partition, Proc};
use hetmmm_push::beautify;

/// Theorem 8.1: translate the combined R∪S region by `(di, dj)`.
///
/// Returns `None` if the translation would move any R/S element out of the
/// matrix. The VoC of the result equals the VoC of the input whenever the
/// combined region's rows and columns do not change their overlap pattern
/// with P's remainder — which holds for condensed shapes; the general
/// invariant `VoC(out) <= VoC(in)` is asserted in tests rather than here
/// because Theorem 8.1 is stated for shapes, not arbitrary scatters.
pub fn translate_combined(part: &Partition, di: isize, dj: isize) -> Option<Partition> {
    let n = part.n() as isize;
    // Collect the combined region.
    let cells: Vec<(usize, usize, Proc)> = part
        .cells_of(Proc::R)
        .map(|(i, j)| (i, j, Proc::R))
        .chain(part.cells_of(Proc::S).map(|(i, j)| (i, j, Proc::S)))
        .collect();
    // Bounds check first.
    for &(i, j, _) in &cells {
        let (ni, nj) = (i as isize + di, j as isize + dj);
        if ni < 0 || nj < 0 || ni >= n || nj >= n {
            return None;
        }
    }
    let mut out = Partition::new(part.n(), Proc::P);
    for &(i, j, proc) in &cells {
        let (ni, nj) = ((i as isize + di) as usize, (j as isize + dj) as usize);
        out.set(ni, nj, proc);
    }
    Some(out)
}

/// The constructive core of Theorems 8.2 / 8.4: rebuild R and S as two
/// disjoint rectangle-like regions with the same element counts, choosing
/// the Archetype A layout (among the six canonical candidates of Section
/// IX) with the lowest VoC.
///
/// The theorem proofs reshape the L / surround shape by a push-like
/// transformation that is allowed to *expand* the active processor's
/// enclosing rectangle in one direction while shrinking it in another —
/// i.e. the result is some Archetype A arrangement of the same areas. By
/// Theorem 8.1 its VoC does not depend on placement, so the minimum-VoC
/// canonical candidate is at least as good as the particular arrangement
/// the proof constructs.
fn best_archetype_a_rebuild(part: &Partition) -> Option<Partition> {
    let n = part.n();
    let e_r = part.elems(Proc::R);
    let e_s = part.elems(Proc::S);
    CandidateType::ALL
        .iter()
        .filter_map(|ty| ty.construct_from_areas(n, e_r, e_s))
        .map(|c| c.partition)
        .min_by_key(Partition::voc)
}

/// Reduce any condensed partition to Archetype A without increasing VoC
/// (Theorems 8.2–8.4 composed).
///
/// Returns the reduced partition. Panics (debug assertion) if the result has
/// a higher VoC than the input; returns the input unchanged when it is
/// already Archetype A (or degenerate).
pub fn reduce_to_archetype_a(part: &Partition) -> Partition {
    let voc_in = part.voc();
    let mut current = part.clone();

    // Theorem 8.3: finish any residual pushes first (Archetype C, and a
    // cheap improvement for anything ragged).
    beautify(&mut current);

    if classify(&current) != Archetype::A {
        // Theorems 8.2 / 8.4: replace the B/C/D arrangement with the best
        // Archetype A arrangement of the same areas, keeping it only if it
        // does not worsen VoC (the theorems guarantee it will not).
        if let Some(rebuilt) = best_archetype_a_rebuild(&current) {
            if rebuilt.voc() <= current.voc() {
                current = rebuilt;
            }
        }
    }

    debug_assert!(current.voc() <= voc_in, "reduction must not worsen VoC");
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{PartitionBuilder, Rect};

    /// An Archetype B instance: S rectangle with R L-wrapped around it.
    fn archetype_b() -> Partition {
        PartitionBuilder::new(12)
            .rect(Rect::new(4, 11, 0, 2), Proc::R)
            .rect(Rect::new(9, 11, 3, 7), Proc::R)
            .rect(Rect::new(4, 8, 3, 7), Proc::S)
            .build()
    }

    /// An Archetype D instance: S strictly inside R's enclosing rectangle.
    fn archetype_d() -> Partition {
        PartitionBuilder::new(12)
            .rect(Rect::new(2, 9, 2, 9), Proc::R)
            .rect(Rect::new(4, 6, 4, 6), Proc::S)
            .build()
    }

    /// An Archetype C instance: interlocking staircases, rectangular union.
    fn archetype_c() -> Partition {
        PartitionBuilder::new(12)
            .rect(Rect::new(0, 2, 0, 5), Proc::R)
            .rect(Rect::new(3, 5, 0, 2), Proc::R)
            .rect(Rect::new(3, 5, 3, 5), Proc::S)
            .rect(Rect::new(6, 8, 0, 5), Proc::S)
            .build()
    }

    #[test]
    fn fixtures_classify_as_intended() {
        assert_eq!(classify(&archetype_b()), Archetype::B);
        assert_eq!(classify(&archetype_d()), Archetype::D);
        assert_eq!(classify(&archetype_c()), Archetype::C);
    }

    #[test]
    fn translate_preserves_voc_for_condensed_shapes() {
        let part = PartitionBuilder::new(10)
            .rect(Rect::new(0, 1, 0, 3), Proc::R)
            .rect(Rect::new(0, 1, 4, 5), Proc::S)
            .build();
        let voc = part.voc();
        let moved = translate_combined(&part, 3, 2).expect("fits");
        assert_eq!(moved.voc(), voc, "Theorem 8.1");
        assert_eq!(moved.elems(Proc::R), part.elems(Proc::R));
        moved.assert_invariants();
    }

    #[test]
    fn translate_rejects_out_of_bounds() {
        let part = PartitionBuilder::new(6)
            .rect(Rect::new(4, 5, 4, 5), Proc::R)
            .rect(Rect::new(0, 0, 0, 0), Proc::S)
            .build();
        assert!(translate_combined(&part, 1, 0).is_none());
        assert!(translate_combined(&part, 0, -1).is_none()); // S at col 0
    }

    #[test]
    fn reduce_b_to_a() {
        let part = archetype_b();
        let reduced = reduce_to_archetype_a(&part);
        assert!(reduced.voc() <= part.voc(), "Theorem 8.2 VoC guarantee");
        assert_eq!(classify(&reduced), Archetype::A);
        assert_eq!(reduced.elems(Proc::R), part.elems(Proc::R));
        assert_eq!(reduced.elems(Proc::S), part.elems(Proc::S));
    }

    #[test]
    fn reduce_c_to_a() {
        let part = archetype_c();
        let reduced = reduce_to_archetype_a(&part);
        assert!(reduced.voc() <= part.voc(), "Theorem 8.3 VoC guarantee");
        assert_eq!(classify(&reduced), Archetype::A);
    }

    #[test]
    fn reduce_d_to_a() {
        let part = archetype_d();
        let reduced = reduce_to_archetype_a(&part);
        assert!(reduced.voc() <= part.voc(), "Theorem 8.4 VoC guarantee");
        assert_eq!(classify(&reduced), Archetype::A);
    }

    #[test]
    fn reduce_is_identity_like_on_archetype_a() {
        let part = PartitionBuilder::new(12)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(8, 11, 8, 11), Proc::S)
            .build();
        let reduced = reduce_to_archetype_a(&part);
        assert_eq!(reduced.voc(), part.voc());
        assert_eq!(classify(&reduced), Archetype::A);
    }
}
