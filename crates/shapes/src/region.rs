//! Per-processor region analysis: contiguity, rectangularity, band profiles.
//!
//! The archetype definitions of Section VII are phrased in terms of each
//! processor's shape: *rectangular* (four corners), *L-shaped* (six corners),
//! *surround* (eight corners). Assumption 4 of Section IV declares a shape
//! "rectangular" when it is **asymptotically rectangular** — at most a single
//! row or column on one side falls short of the enclosing rectangle's edge
//! (Fig. 3). [`RegionProfile`] computes everything the classifier needs.

use crate::corners::corner_count;
use hetmmm_partition::{Partition, Proc, Rect};
use serde::{Deserialize, Serialize};

/// Structural classification of a single processor's region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RegionKind {
    /// The processor owns no elements.
    Empty,
    /// The region exactly fills its enclosing rectangle (4 corners).
    ExactRect,
    /// Asymptotically rectangular (Fig. 3): all missing cells of the
    /// enclosing rectangle lie in a single edge row or column.
    AsymptRect,
    /// A six-corner "L" (Archetype B's non-rectangular processor).
    LShape,
    /// Anything else; carries the exact corner count.
    Other,
}

/// One maximal run of consecutive occupied rows sharing an identical column
/// interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Band {
    /// First row of the band.
    pub top: usize,
    /// Last row of the band (inclusive).
    pub bottom: usize,
    /// Column interval `(first, last)` shared by every row of the band.
    pub cols: (usize, usize),
}

/// Full structural profile of one processor's region.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RegionProfile {
    /// The processor profiled.
    pub proc: Proc,
    /// `∈X`.
    pub elems: usize,
    /// Enclosing rectangle (`None` when empty).
    pub rect: Option<Rect>,
    /// Exact boundary vertex count.
    pub corners: usize,
    /// `true` when every occupied row's cells form one contiguous interval
    /// and there are no unoccupied rows inside the enclosing rectangle.
    pub row_contiguous: bool,
    /// Maximal constant-interval bands (empty when `row_contiguous` is
    /// `false`).
    pub bands: Vec<Band>,
    /// Structural kind.
    pub kind: RegionKind,
}

impl RegionProfile {
    /// Profile the region of `proc` within `part`.
    pub fn new(part: &Partition, proc: Proc) -> RegionProfile {
        let elems = part.elems(proc);
        let rect = part.enclosing_rect(proc);
        let corners = corner_count(part, proc);
        let Some(rect) = rect else {
            return RegionProfile {
                proc,
                elems,
                rect: None,
                corners,
                row_contiguous: false,
                bands: Vec::new(),
                kind: RegionKind::Empty,
            };
        };

        // Per-row interval extraction.
        let mut row_contiguous = true;
        let mut intervals: Vec<Option<(usize, usize)>> = Vec::with_capacity(rect.height());
        for i in rect.top..=rect.bottom {
            let count = part.row_count(proc, i) as usize;
            if count == 0 {
                row_contiguous = false;
                intervals.push(None);
                continue;
            }
            let mut first = None;
            let mut last = 0usize;
            for j in rect.left..=rect.right {
                if part.get(i, j) == proc {
                    if first.is_none() {
                        first = Some(j);
                    }
                    last = j;
                }
            }
            // `row_count > 0` guarantees a cell, but stay total: a rowless
            // scan degrades to non-contiguous instead of panicking.
            let Some(first) = first else {
                row_contiguous = false;
                intervals.push(None);
                continue;
            };
            if last - first + 1 != count {
                row_contiguous = false;
            }
            intervals.push(Some((first, last)));
        }

        let bands = if row_contiguous {
            let mut bands: Vec<Band> = Vec::new();
            // A contiguous profile has an interval in every row; gapped
            // rows (impossible here) would simply be skipped.
            let rows = intervals
                .iter()
                .enumerate()
                .filter_map(|(offset, interval)| interval.map(|cols| (offset, cols)));
            for (offset, cols) in rows {
                let i = rect.top + offset;
                match bands.last_mut() {
                    Some(b) if b.cols == cols && b.bottom + 1 == i => b.bottom = i,
                    _ => bands.push(Band {
                        top: i,
                        bottom: i,
                        cols,
                    }),
                }
            }
            bands
        } else {
            Vec::new()
        };

        let kind = Self::kind_of(part, proc, elems, rect, corners, row_contiguous, &bands);

        RegionProfile {
            proc,
            elems,
            rect: Some(rect),
            corners,
            row_contiguous,
            bands,
            kind,
        }
    }

    fn kind_of(
        part: &Partition,
        proc: Proc,
        elems: usize,
        rect: Rect,
        corners: usize,
        row_contiguous: bool,
        bands: &[Band],
    ) -> RegionKind {
        if elems == 0 {
            return RegionKind::Empty;
        }
        if rect.area() == elems {
            return RegionKind::ExactRect;
        }
        if missing_confined_to_edge_line(part, proc, rect) {
            return RegionKind::AsymptRect;
        }
        if corners == 6 && row_contiguous && is_l_bands(bands) {
            return RegionKind::LShape;
        }
        RegionKind::Other
    }

    /// Is the region rectangular in the paper's asymptotic sense
    /// (Assumption 4)?
    pub fn is_rect_like(&self) -> bool {
        matches!(self.kind, RegionKind::ExactRect | RegionKind::AsymptRect)
    }
}

/// Are all cells of `rect` *not* owned by `proc` confined to a single edge
/// row or column of `rect`? (The Fig. 3 asymptotic-rectangularity test.)
fn missing_confined_to_edge_line(part: &Partition, proc: Proc, rect: Rect) -> bool {
    let total_missing = rect.area() - part.elems(proc);
    if total_missing == 0 {
        return true;
    }
    let missing_in_row = |i: usize| rect.width() - part.row_count(proc, i) as usize;
    let missing_in_col = |j: usize| rect.height() - part.col_count(proc, j) as usize;
    // NOTE: row/col counts are global, but for a *condensed* shape all of
    // proc's elements lie within the enclosing rectangle by definition, so
    // counting within the rect equals the global count.
    missing_in_row(rect.top) == total_missing
        || missing_in_row(rect.bottom) == total_missing
        || missing_in_col(rect.left) == total_missing
        || missing_in_col(rect.right) == total_missing
}

/// Two bands aligned on exactly one side form an "L".
fn is_l_bands(bands: &[Band]) -> bool {
    if bands.len() != 2 {
        return false;
    }
    let (a, b) = (bands[0].cols, bands[1].cols);
    let left_aligned = a.0 == b.0;
    let right_aligned = a.1 == b.1;
    (left_aligned ^ right_aligned) && a != b
}

/// Is the *union* of the R and S regions rectangle-like? (The paper observes
/// that in every experimentally found Archetype C, "if the shapes of
/// Processors R and S were viewed as one processor, they would be
/// rectangular", Section VII-F.)
pub fn union_rect_like(part: &Partition) -> bool {
    let rr = part.enclosing_rect(Proc::R);
    let rs = part.enclosing_rect(Proc::S);
    let bbox = match (rr, rs) {
        (Some(a), Some(b)) => Rect::new(
            a.top.min(b.top),
            a.bottom.max(b.bottom),
            a.left.min(b.left),
            a.right.max(b.right),
        ),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => return false,
    };
    let union_elems = part.elems(Proc::R) + part.elems(Proc::S);
    let total_missing = bbox.area().saturating_sub(union_elems);
    if total_missing == 0 {
        return true;
    }
    // Count non-union cells per edge line of the bbox.
    let missing_in_row = |i: usize| {
        (bbox.left..=bbox.right)
            .filter(|&j| part.get(i, j) == Proc::P)
            .count()
    };
    let missing_in_col = |j: usize| {
        (bbox.top..=bbox.bottom)
            .filter(|&i| part.get(i, j) == Proc::P)
            .count()
    };
    // All union cells must be inside the bbox (true by construction) and all
    // holes confined to one edge line.
    missing_in_row(bbox.top) == total_missing
        || missing_in_row(bbox.bottom) == total_missing
        || missing_in_col(bbox.left) == total_missing
        || missing_in_col(bbox.right) == total_missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::PartitionBuilder;

    #[test]
    fn exact_rect_profile() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(1, 4, 2, 5), Proc::R)
            .build();
        let p = RegionProfile::new(&part, Proc::R);
        assert_eq!(p.kind, RegionKind::ExactRect);
        assert!(p.is_rect_like());
        assert_eq!(p.corners, 4);
        assert_eq!(p.bands.len(), 1);
    }

    #[test]
    fn asympt_rect_partial_bottom_row() {
        // 4x4 rect minus the right half of its bottom row.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(3, 3, 2, 3), Proc::P)
            .build();
        let p = RegionProfile::new(&part, Proc::R);
        assert_eq!(p.kind, RegionKind::AsymptRect);
        assert!(p.is_rect_like());
        assert_eq!(p.corners, 6);
    }

    #[test]
    fn asympt_rect_partial_side_column() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 5, 0, 2), Proc::S)
            .rect(Rect::new(0, 2, 2, 2), Proc::P)
            .build();
        let p = RegionProfile::new(&part, Proc::S);
        assert_eq!(p.kind, RegionKind::AsymptRect);
    }

    #[test]
    fn not_asympt_when_two_lines_ragged() {
        // Missing cells spread over two different edge lines (Fig. 3 right).
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(3, 3, 2, 3), Proc::P)
            .rect(Rect::new(0, 0, 3, 3), Proc::P)
            .build();
        let p = RegionProfile::new(&part, Proc::R);
        assert_eq!(p.kind, RegionKind::Other);
        assert!(!p.is_rect_like());
    }

    #[test]
    fn l_shape_profile() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 5, 0, 1), Proc::R)
            .rect(Rect::new(3, 5, 2, 5), Proc::R)
            .build();
        let p = RegionProfile::new(&part, Proc::R);
        assert_eq!(p.kind, RegionKind::LShape);
        assert_eq!(p.corners, 6);
        assert_eq!(p.bands.len(), 2);
    }

    #[test]
    fn disconnected_region_is_other() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 0, 0, 0), Proc::R)
            .rect(Rect::new(4, 5, 4, 5), Proc::R)
            .build();
        let p = RegionProfile::new(&part, Proc::R);
        assert_eq!(p.kind, RegionKind::Other);
        assert!(!p.row_contiguous, "row gap must be detected");
    }

    #[test]
    fn empty_region() {
        let part = Partition::new(4, Proc::P);
        let p = RegionProfile::new(&part, Proc::R);
        assert_eq!(p.kind, RegionKind::Empty);
        assert_eq!(p.rect, None);
    }

    #[test]
    fn union_rect_like_interlock() {
        // R and S interlock into a perfect rectangle.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(2, 3, 2, 3), Proc::S)
            .rect(Rect::new(0, 1, 4, 5), Proc::S)
            .rect(Rect::new(0, 3, 4, 5), Proc::S)
            .build();
        assert!(union_rect_like(&part));
    }

    #[test]
    fn union_not_rect_like_when_separated() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 1, 0, 1), Proc::R)
            .rect(Rect::new(6, 7, 6, 7), Proc::S)
            .build();
        assert!(!union_rect_like(&part));
    }
}
