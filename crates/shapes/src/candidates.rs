//! The six candidate canonical partition shapes (Section IX, Figs. 10–12).
//!
//! All six place the two slower processors in rectangular (asymptotically
//! rectangular at finite `N`) regions and give the fastest processor `P` the
//! remainder:
//!
//! 1. **Square-Corner** (Type 1A, Fig. 11 left): R and S squares in
//!    diagonally opposite corners. Feasible only when the squares fit without
//!    overlap — Theorem 9.1, `P_r > 2√(R_r S_r)` in ratio terms.
//! 2. **Rectangle-Corner** (Type 1B, Fig. 11 right): two corner rectangles of
//!    combined width `N`; aspect chosen by the Eq. 13 perimeter minimizer.
//! 3. **Square-Rectangle** (Type 3, Fig. 12): one full-height rectangle, the
//!    other processor a square in a corner of the remainder.
//! 4. **Block-Rectangle** (Type 4, Fig. 12): a full-width bottom strip split
//!    vertically between R and S with equal heights (the canonical
//!    improvement of Type 2, Section IX-B.2).
//! 5. **L-Rectangle** (Type 5, Fig. 12): a full-height rectangle plus a
//!    bottom strip spanning the remaining width, leaving P an "L".
//! 6. **Traditional-Rectangle** (Type 6, Fig. 12): the classical rectangular
//!    heterogeneous partition — R and S stacked in one column band
//!    (`S_x1 = R_x1`), P a full-height block.
//!
//! Constructors are **exact-area**: each processor receives precisely
//! `ratio.areas(n)` elements, with at most one ragged line per region (the
//! asymptotic-rectangularity allowance of Assumption 4). The `O(1/N)`
//! discrepancy between grid shapes and the paper's normalized real-valued
//! dimensions is covered by tolerance assertions in the tests.

use hetmmm_partition::{Partition, Proc, Ratio};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six candidate types of Fig. 10, named as in Figs. 11–12.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CandidateType {
    /// Type 1A: two squares in diagonally opposite corners.
    SquareCorner,
    /// Type 1B: two non-square corner rectangles of combined width `N`.
    RectangleCorner,
    /// Type 3: full-height rectangle + corner square.
    SquareRectangle,
    /// Type 4 (canonical Type 2): bottom strip split vertically.
    BlockRectangle,
    /// Type 5: full-height rectangle + remaining-width bottom strip.
    LRectangle,
    /// Type 6: traditional rectangular partition.
    TraditionalRectangle,
}

impl CandidateType {
    /// All six candidates.
    pub const ALL: [CandidateType; 6] = [
        CandidateType::SquareCorner,
        CandidateType::RectangleCorner,
        CandidateType::SquareRectangle,
        CandidateType::BlockRectangle,
        CandidateType::LRectangle,
        CandidateType::TraditionalRectangle,
    ];

    /// The paper's name for this shape.
    pub fn paper_name(self) -> &'static str {
        match self {
            CandidateType::SquareCorner => "Square-Corner",
            CandidateType::RectangleCorner => "Rectangle-Corner",
            CandidateType::SquareRectangle => "Square-Rectangle",
            CandidateType::BlockRectangle => "Block-Rectangle",
            CandidateType::LRectangle => "L-Rectangle",
            CandidateType::TraditionalRectangle => "Traditional-Rectangle",
        }
    }

    /// Construct the canonical partition of this type, or `None` when the
    /// ratio makes the shape infeasible at this `n`.
    pub fn construct(self, n: usize, ratio: Ratio) -> Option<Candidate> {
        let areas = ratio.areas(n);
        self.construct_from_areas(n, areas[Proc::R.idx()], areas[Proc::S.idx()])
    }

    /// Construct from explicit element counts `∈R` and `∈S` (the remainder
    /// goes to `P`). Used by the archetype reductions, which must preserve
    /// the exact counts of an existing partition.
    pub fn construct_from_areas(self, n: usize, e_r: usize, e_s: usize) -> Option<Candidate> {
        if e_r == 0 || e_s == 0 || n < 2 || e_r + e_s > n * n {
            return None;
        }
        let part = match self {
            CandidateType::SquareCorner => square_corner(n, e_r, e_s)?,
            CandidateType::RectangleCorner => rectangle_corner(n, e_r, e_s)?,
            CandidateType::SquareRectangle => square_rectangle(n, e_r, e_s)?,
            CandidateType::BlockRectangle => block_rectangle(n, e_r, e_s)?,
            CandidateType::LRectangle => l_rectangle(n, e_r, e_s)?,
            CandidateType::TraditionalRectangle => traditional_rectangle(n, e_r, e_s)?,
        };
        debug_assert_eq!(part.elems(Proc::R), e_r, "{self:?} R area");
        debug_assert_eq!(part.elems(Proc::S), e_s, "{self:?} S area");
        Some(Candidate {
            ty: self,
            partition: part,
        })
    }
}

impl fmt::Display for CandidateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_name())
    }
}

/// A constructed candidate shape.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Which of the six types this is.
    pub ty: CandidateType,
    /// The exact-area grid realization.
    pub partition: Partition,
}

/// All candidate types feasible for `(n, ratio)`, constructed.
pub fn all_feasible(n: usize, ratio: Ratio) -> Vec<Candidate> {
    CandidateType::ALL
        .iter()
        .filter_map(|ty| ty.construct(n, ratio))
        .collect()
}

/// Theorem 9.1 in ratio form: both processors' squares fit without overlap
/// iff `√(R_r/T) + √(S_r/T) ≤ 1`, equivalently `P_r ≥ 2√(R_r S_r)`.
pub fn square_corner_feasible(ratio: Ratio) -> bool {
    let t = f64::from(ratio.total());
    (f64::from(ratio.r) / t).sqrt() + (f64::from(ratio.s) / t).sqrt() <= 1.0
}

// ---------------------------------------------------------------------------
// Exact-area fill primitives.
// ---------------------------------------------------------------------------

/// Fill `area` cells of `proc` into the column span `[left, right]`,
/// taking complete rows from the top (or bottom) edge inward; the final
/// partial row is anchored to the left (or right) end of the span.
fn fill_rows(
    part: &mut Partition,
    proc: Proc,
    mut area: usize,
    left: usize,
    right: usize,
    from_bottom: bool,
    ragged_at_left: bool,
) {
    let n = part.n();
    let width = right - left + 1;
    let mut rows: Vec<usize> = (0..n).collect();
    if from_bottom {
        rows.reverse();
    }
    for i in rows {
        if area == 0 {
            break;
        }
        let take = area.min(width);
        let (a, b) = if ragged_at_left {
            (left, left + take - 1)
        } else {
            (right + 1 - take, right)
        };
        for j in a..=b {
            part.set(i, j, proc);
        }
        area -= take;
    }
    assert_eq!(area, 0, "fill_rows ran out of rows");
}

/// Column-major analogue of [`fill_rows`]: complete columns from the left
/// (or right) edge of the span inward, partial column anchored top or bottom.
fn fill_cols(
    part: &mut Partition,
    proc: Proc,
    mut area: usize,
    top: usize,
    bottom: usize,
    from_right: bool,
    ragged_at_top: bool,
) {
    let n = part.n();
    let height = bottom - top + 1;
    let mut cols: Vec<usize> = (0..n).collect();
    if from_right {
        cols.reverse();
    }
    for j in cols {
        if area == 0 {
            break;
        }
        let take = area.min(height);
        let (a, b) = if ragged_at_top {
            (top, top + take - 1)
        } else {
            (bottom + 1 - take, bottom)
        };
        for i in a..=b {
            part.set(i, j, proc);
        }
        area -= take;
    }
    assert_eq!(area, 0, "fill_cols ran out of columns");
}

// ---------------------------------------------------------------------------
// The six constructors.
// ---------------------------------------------------------------------------

fn square_corner(n: usize, e_r: usize, e_s: usize) -> Option<Partition> {
    let s_r = (e_r as f64).sqrt().ceil() as usize;
    let s_s = (e_s as f64).sqrt().ceil() as usize;
    let h_r = e_r.div_ceil(s_r);
    let h_s = e_s.div_ceil(s_s);
    if s_r + s_s > n || h_r + h_s > n {
        return None;
    }
    let mut part = Partition::new(n, Proc::P);
    // R: top-left corner, width s_r, complete rows from the top.
    fill_rows(&mut part, Proc::R, e_r, 0, s_r - 1, false, true);
    // S: bottom-right corner, width s_s, complete rows from the bottom.
    fill_rows(&mut part, Proc::S, e_s, n - s_s, n - 1, true, false);
    Some(part)
}

fn rectangle_corner(n: usize, e_r: usize, e_s: usize) -> Option<Partition> {
    // Combined width exactly N (the Eq. 13 boundary x + y ≈ 1); choose the
    // split minimizing the combined perimeter, i.e. the combined height.
    let mut best: Option<(usize, usize, usize)> = None; // (w_r, h_r, h_s)
    for w_r in 1..n {
        let w_s = n - w_r;
        let h_r = e_r.div_ceil(w_r);
        let h_s = e_s.div_ceil(w_s);
        if h_r >= n || h_s >= n {
            // Each rectangle must be shorter than the matrix (a full-height
            // slab would be a Type 3/6 shape, not a corner rectangle).
            continue;
        }
        match best {
            Some((_, bh_r, bh_s)) if bh_r + bh_s <= h_r + h_s => {}
            _ => best = Some((w_r, h_r, h_s)),
        }
    }
    let (w_r, _, _) = best?;
    let mut part = Partition::new(n, Proc::P);
    // R: bottom-left, S: bottom-right.
    fill_rows(&mut part, Proc::R, e_r, 0, w_r - 1, true, true);
    fill_rows(&mut part, Proc::S, e_s, w_r, n - 1, true, false);
    Some(part)
}

fn square_rectangle(n: usize, e_r: usize, e_s: usize) -> Option<Partition> {
    // R: full-height rectangle on the left; S: square in the bottom-right
    // corner.
    let w_r = e_r.div_ceil(n);
    let s_s = (e_s as f64).sqrt().ceil() as usize;
    if w_r + s_s > n {
        return None;
    }
    let mut part = Partition::new(n, Proc::P);
    fill_cols(&mut part, Proc::R, e_r, 0, n - 1, false, false);
    fill_rows(&mut part, Proc::S, e_s, n - s_s, n - 1, true, false);
    Some(part)
}

fn block_rectangle(n: usize, e_r: usize, e_s: usize) -> Option<Partition> {
    // Bottom strip split vertically with (near-)equal heights — the
    // canonical Type 4 form R_height = S_height (Section IX-B.2). The width
    // split is proportional to the areas so the two block heights agree to
    // within one ragged row, keeping the fastest processor *out of the
    // strip rows* (the closed-form cost `(R_r+S_r)/T + 1` depends on strip
    // rows containing only R and S).
    let total = e_r + e_s;
    if total >= n * n {
        return None;
    }
    let w_r = ((n * e_r + total / 2) / total).clamp(1, n - 1);
    let w_s = n - w_r;
    let h_r = e_r.div_ceil(w_r);
    let h_s = e_s.div_ceil(w_s);
    if h_r >= n || h_s >= n {
        return None;
    }
    let mut part = Partition::new(n, Proc::P);
    fill_rows(&mut part, Proc::R, e_r, 0, w_r - 1, true, true);
    fill_rows(&mut part, Proc::S, e_s, w_r, n - 1, true, false);
    Some(part)
}

fn l_rectangle(n: usize, e_r: usize, e_s: usize) -> Option<Partition> {
    // R: full-height rectangle on the right; S: bottom strip spanning the
    // remaining width; P keeps the upper-left "L" complement... actually a
    // rectangle; P's region is rectangular here, the "L" name refers to the
    // combined R+S band wrapping the corner.
    let w_r = e_r.div_ceil(n);
    if w_r >= n {
        return None;
    }
    let rem_w = n - w_r;
    let h_s = e_s.div_ceil(rem_w);
    if h_s > n {
        return None;
    }
    let mut part = Partition::new(n, Proc::P);
    fill_cols(&mut part, Proc::R, e_r, 0, n - 1, true, false);
    fill_rows(&mut part, Proc::S, e_s, 0, rem_w - 1, true, true);
    Some(part)
}

fn traditional_rectangle(n: usize, e_r: usize, e_s: usize) -> Option<Partition> {
    // One column band on the right holding R (top) stacked over S (bottom);
    // P a full-height block on the left: the classical rectangular layout
    // with S_x1 = R_x1.
    //
    // Discretization care: the band's spare cells (⌈total/N⌉·N − total < N
    // of them) must NOT form whole P rows inside the band — a single gap
    // row makes every band column host three processors and costs a
    // *constant* extra (R_r+S_r)/T of normalized VoC. The band is filled
    // per column (R top, S bottom, columns meeting exactly), with all
    // spare cells confined to the single leftmost band column, which keeps
    // the discretization penalty at O(1/N).
    let total = e_r + e_s;
    if total >= n * n {
        return None;
    }
    let w = total.div_ceil(n);
    let left = n - w;
    let mut part = Partition::new(n, Proc::P);

    if w == 1 {
        // Single-column band: R on top, S at the bottom, gap between.
        for i in 0..e_r {
            part.set(i, left, Proc::R);
        }
        for i in (n - e_s)..n {
            part.set(i, left, Proc::S);
        }
        return Some(part);
    }

    // Complete columns left+1..n-1 are split R-over-S with no gap; the
    // slack column `left` takes the remainders and the spare cells. The
    // split aims for r_last ≈ e_r/w so each region's raggedness stays
    // near its own boundary row; when the slack column has little room
    // (cap = total − (w−1)·N small) one region keeps a short stub column —
    // a two-line ragged shape the tolerant classifier still groups as A.
    let complete = w - 1;
    let cap = total - complete * n; // R∪S cells the slack column holds
    debug_assert!(cap >= 1 && cap <= n);
    let r_nat = (e_r + w / 2) / w;
    let mut r_last = r_nat.min(cap).min(e_r);
    let s_last = cap - r_last;
    if s_last > e_s {
        r_last = cap - e_s;
    }
    let s_last = cap - r_last;
    let t_total = e_r - r_last;
    if t_total > complete * n || s_last > e_s {
        return None; // degenerate sizing
    }
    let t_base = t_total / complete;
    let t_extra = t_total % complete;
    debug_assert_eq!(complete * n - t_total, e_s - s_last);

    for (idx, j) in ((left + 1)..n).enumerate() {
        // The +1 columns sit adjacent to the slack column so R's ragged
        // boundary row stays contiguous.
        let t_j = t_base + usize::from(idx < t_extra);
        for i in 0..t_j {
            part.set(i, j, Proc::R);
        }
        for i in t_j..n {
            part.set(i, j, Proc::S);
        }
    }
    for i in 0..r_last {
        part.set(i, left, Proc::R);
    }
    for i in (n - s_last)..n {
        part.set(i, left, Proc::S);
    }
    Some(part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::Archetype;
    use crate::region::RegionProfile;

    fn ratios() -> Vec<Ratio> {
        Ratio::paper_ratios()
    }

    #[test]
    fn exact_areas_for_all_types_and_ratios() {
        for ratio in ratios() {
            for n in [20usize, 33, 50] {
                let areas = ratio.areas(n);
                for ty in CandidateType::ALL {
                    if let Some(c) = ty.construct(n, ratio) {
                        assert_eq!(
                            c.partition.elems(Proc::R),
                            areas[Proc::R.idx()],
                            "{ty} {ratio} n={n}"
                        );
                        assert_eq!(
                            c.partition.elems(Proc::S),
                            areas[Proc::S.idx()],
                            "{ty} {ratio} n={n}"
                        );
                        c.partition.assert_invariants();
                    }
                }
            }
        }
    }

    #[test]
    fn regions_are_rect_like() {
        for ratio in ratios() {
            for ty in CandidateType::ALL {
                if let Some(c) = ty.construct(40, ratio) {
                    for proc in [Proc::R, Proc::S] {
                        let prof = RegionProfile::new(&c.partition, proc);
                        let fill =
                            c.partition.elems(proc) as f64 / prof.rect.unwrap().area() as f64;
                        // Strictly one-line ragged, or (for the slack-column
                        // Traditional-Rectangle cases) dense two-line ragged.
                        assert!(
                            prof.is_rect_like() || fill > 0.85,
                            "{ty} {ratio}: {proc} region kind {:?} fill {fill:.3}",
                            prof.kind
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_classify_as_archetype_a() {
        use crate::archetype::classify_tolerant;
        for ratio in ratios() {
            for c in all_feasible(48, ratio) {
                // Strict classification where the discretization allows it,
                // tolerant for the slack-column Traditional-Rectangle cases.
                let arch = classify_tolerant(&c.partition);
                assert_eq!(arch, Archetype::A, "{} at {ratio} classified {arch}", c.ty);
            }
        }
    }

    #[test]
    fn square_corner_feasibility_matches_theorem_9_1() {
        // Grid feasibility at large n should agree with the ratio-form
        // condition except within O(1/n) of the boundary.
        for ratio in ratios() {
            let analytic = square_corner_feasible(ratio);
            let grid = CandidateType::SquareCorner.construct(200, ratio).is_some();
            let t = f64::from(ratio.total());
            let margin =
                ((f64::from(ratio.r) / t).sqrt() + (f64::from(ratio.s) / t).sqrt() - 1.0).abs();
            if margin > 0.05 {
                assert_eq!(analytic, grid, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn square_corner_infeasible_when_slow_procs_dominate() {
        // 2:2:1 → √(2/5) + √(1/5) ≈ 1.08 > 1: infeasible.
        assert!(!square_corner_feasible(Ratio::new(2, 2, 1)));
        assert!(CandidateType::SquareCorner
            .construct(100, Ratio::new(2, 2, 1))
            .is_none());
        // 10:1:1 → √(1/12) + √(1/12) ≈ 0.58: feasible.
        assert!(square_corner_feasible(Ratio::new(10, 1, 1)));
        assert!(CandidateType::SquareCorner
            .construct(100, Ratio::new(10, 1, 1))
            .is_some());
    }

    #[test]
    fn block_rectangle_strip_geometry() {
        let c = CandidateType::BlockRectangle
            .construct(40, Ratio::new(2, 1, 1))
            .unwrap();
        let rr = c.partition.enclosing_rect(Proc::R).unwrap();
        let rs = c.partition.enclosing_rect(Proc::S).unwrap();
        // Both sit in the bottom strip of height ⌈(eR+eS)/n⌉ = 20.
        assert_eq!(rr.top, 20);
        assert_eq!(rs.top, 20);
        assert_eq!(rr.bottom, 39);
        assert_eq!(rs.bottom, 39);
        assert!(rr.right < rs.left);
    }

    #[test]
    fn traditional_rectangle_is_fully_rectangular() {
        // With a ratio whose areas divide evenly, all three processors are
        // exact rectangles. 2:1:1 at n=40: eR=400, eS=400, band w=20,
        // h_r = h_s = 20.
        let c = CandidateType::TraditionalRectangle
            .construct(40, Ratio::new(2, 1, 1))
            .unwrap();
        assert!(c.partition.is_exact_rect(Proc::R));
        assert!(c.partition.is_exact_rect(Proc::S));
        assert!(c.partition.is_exact_rect(Proc::P));
    }

    #[test]
    fn l_rectangle_geometry() {
        let c = CandidateType::LRectangle
            .construct(40, Ratio::new(2, 1, 1))
            .unwrap();
        let rr = c.partition.enclosing_rect(Proc::R).unwrap();
        // R is full height on the right.
        assert_eq!((rr.top, rr.bottom), (0, 39));
        assert_eq!(rr.right, 39);
        let rs = c.partition.enclosing_rect(Proc::S).unwrap();
        // S hugs the bottom of the remaining width.
        assert_eq!(rs.bottom, 39);
        assert!(rs.right < rr.left);
    }

    #[test]
    fn rectangle_corner_spans_full_width() {
        let c = CandidateType::RectangleCorner
            .construct(40, Ratio::new(5, 2, 1))
            .unwrap();
        let rr = c.partition.enclosing_rect(Proc::R).unwrap();
        let rs = c.partition.enclosing_rect(Proc::S).unwrap();
        assert_eq!(rr.left, 0);
        assert_eq!(rs.right, 39);
        assert_eq!(rr.right + 1, rs.left);
        assert_eq!(rr.bottom, 39);
        assert_eq!(rs.bottom, 39);
    }

    #[test]
    fn all_feasible_nonempty_and_sc_gated() {
        for ratio in ratios() {
            let feasible = all_feasible(60, ratio);
            assert!(feasible.len() >= 4, "too few feasible shapes for {ratio}");
            let has_sc = feasible.iter().any(|c| c.ty == CandidateType::SquareCorner);
            if !square_corner_feasible(ratio) {
                assert!(!has_sc, "{ratio}");
            }
        }
    }
}
