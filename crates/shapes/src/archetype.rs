//! The four shape archetypes and the classifier (Section VII).
//!
//! Every fixed point the paper's DFA program produced fell into one of four
//! archetypes, distinguished by the relationship between the enclosing
//! rectangles of the two slower processors and by their corner counts
//! (Fig. 5):
//!
//! - **A — No Overlap, Minimum Corners**: R and S rectangular, disjoint
//!   enclosing rectangles;
//! - **B — Overlap, L Shape**: one processor rectangular, the other a
//!   six-corner "L" wrapped around it;
//! - **C — Overlap, Interlock**: both ≥ six corners, their union
//!   rectangular; residual pushes always remain (Theorem 8.3);
//! - **D — Overlap, Surround**: one enclosing rectangle entirely inside the
//!   other (4 + 8 corners).
//!
//! Anything else is a [`Archetype::NonShape`] — a counterexample to
//! Postulate 1, which the paper (and our integration tests across thousands
//! of seeds) never observed for *condensed* partitions.
//!
//! Asymptotic tolerance: per Assumption 4 the paper treats asymptotically
//! rectangular shapes as rectangular, and at finite `N` the element counts
//! rarely factor into exact rectangles. The classifier therefore accepts
//! asymptotically rectangular processors where the archetype calls for
//! rectangles and allows the two enclosing rectangles of an Archetype A
//! partition to overlap in at most one ragged line.

use crate::region::{union_rect_like, RegionKind, RegionProfile};
use hetmmm_partition::{Partition, Proc, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four archetypes of Fig. 5, plus the counterexample bucket.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Archetype {
    /// No overlap, minimum corners.
    A,
    /// Overlap, L shape.
    B,
    /// Overlap, interlock (residual pushes remain).
    C,
    /// Overlap, surround.
    D,
    /// Not one of the four — would falsify Postulate 1 if condensed.
    NonShape,
}

impl fmt::Display for Archetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Archetype::A => "A (no overlap, minimum corners)",
            Archetype::B => "B (overlap, L shape)",
            Archetype::C => "C (overlap, interlock)",
            Archetype::D => "D (overlap, surround)",
            Archetype::NonShape => "non-shape",
        };
        write!(f, "{s}")
    }
}

/// Does the overlap of two rectangles amount to at most a single row or
/// column (the ragged-line tolerance for Archetype A)?
fn overlap_is_thin(a: &Rect, b: &Rect) -> bool {
    match a.intersect(b) {
        None => true,
        Some(ov) => ov.height() == 1 || ov.width() == 1,
    }
}

/// Classify a partition into an archetype.
///
/// Intended for *condensed* partitions (fixed points of the Push DFA); it
/// can be called on anything, but a random scatter will simply come back as
/// [`Archetype::NonShape`].
///
/// ```
/// use hetmmm_partition::{PartitionBuilder, Proc, Rect};
/// use hetmmm_shapes::{classify, Archetype};
///
/// // Two squares in opposite corners: the Square-Corner layout.
/// let part = PartitionBuilder::new(12)
///     .rect(Rect::new(0, 3, 0, 3), Proc::R)
///     .rect(Rect::new(8, 11, 8, 11), Proc::S)
///     .build();
/// assert_eq!(classify(&part), Archetype::A);
/// ```
pub fn classify(part: &Partition) -> Archetype {
    let _span = hetmmm_obs::fine_span("shapes.classify");
    let pr = RegionProfile::new(part, Proc::R);
    let ps = RegionProfile::new(part, Proc::S);
    classify_profiles(part, &pr, &ps)
}

/// Classifier taking precomputed profiles (avoids recomputation in bulk
/// census runs).
pub fn classify_profiles(part: &Partition, pr: &RegionProfile, ps: &RegionProfile) -> Archetype {
    let (Some(rr), Some(rs)) = (pr.rect, ps.rect) else {
        // A degenerate two-processor partition: treat a single rectangular
        // remainder as A, anything else as non-shape.
        let only = if pr.rect.is_some() { pr } else { ps };
        return if only.is_rect_like() {
            Archetype::A
        } else {
            Archetype::NonShape
        };
    };

    let overlapping = rr.overlaps(&rs);

    // B: overlap, one rectangle + one six-corner L. An L whose notch hosts
    // the other processor may well *contain* its enclosing rectangle, so B
    // must be tested before D — the paper separates the two by corner count
    // (6 for B, 8 for D).
    if overlapping {
        let b_pair = (pr.is_rect_like() && ps.kind == RegionKind::LShape)
            || (ps.is_rect_like() && pr.kind == RegionKind::LShape);
        if b_pair {
            return Archetype::B;
        }
    }

    // D: one enclosing rectangle inside the other, inner processor
    // rectangular, outer (≥ 8 corners) wrapped around it.
    let d_candidate = |outer: &RegionProfile, inner: &RegionProfile, ro: &Rect, ri: &Rect| {
        ro.contains_rect(ri) && inner.is_rect_like() && !outer.is_rect_like() && outer.corners >= 8
    };
    if d_candidate(pr, ps, &rr, &rs) || d_candidate(ps, pr, &rs, &rr) {
        return Archetype::D;
    }

    // A: both rectangle-like, enclosing rectangles disjoint (up to one
    // ragged line).
    if pr.is_rect_like() && ps.is_rect_like() && overlap_is_thin(&rr, &rs) {
        return Archetype::A;
    }

    // C: both non-rectangular, at least six corners each, union
    // rectangular.
    if overlapping
        && !pr.is_rect_like()
        && !ps.is_rect_like()
        && pr.corners >= 6
        && ps.corners >= 6
        && union_rect_like(part)
    {
        return Archetype::C;
    }

    Archetype::NonShape
}

/// Tolerant classification by enclosing-rectangle relationship and fill
/// ratios.
///
/// The discrete Push dynamics leave staircase boundaries between regions
/// that the strict corner-count definitions reject, but that the paper's
/// authors — grouping 1/100-granularity renders by eye — would clearly have
/// assigned to the nearest archetype. This classifier captures that
/// judgment with explicit thresholds:
///
/// - a region is *rectangle-like* when it fills at least `RECT_FILL` of its
///   enclosing rectangle,
/// - the R∪S union is *solid* when it fills at least `UNION_FILL` of its
///   bounding box,
/// - anything with a region filling less than `SCATTER_FILL` of its
///   enclosing rectangle is a genuine non-shape (a random scatter fills
///   only its area share).
pub fn classify_tolerant(part: &Partition) -> Archetype {
    /// Fill ratio above which a region counts as rectangle-like.
    const RECT_FILL: f64 = 0.80;
    /// Fill ratio above which the R∪S union counts as solid.
    const UNION_FILL: f64 = 0.75;
    /// Fill ratio below which a region is scatter, not shape.
    const SCATTER_FILL: f64 = 0.45;

    let exact = classify(part);
    if exact != Archetype::NonShape {
        return exact;
    }
    let (Some(rr), Some(rs)) = (part.enclosing_rect(Proc::R), part.enclosing_rect(Proc::S)) else {
        return Archetype::NonShape;
    };
    let e_r = part.elems(Proc::R);
    let e_s = part.elems(Proc::S);
    let fill_r = e_r as f64 / rr.area() as f64;
    let fill_s = e_s as f64 / rs.area() as f64;
    let bbox = Rect::new(
        rr.top.min(rs.top),
        rr.bottom.max(rs.bottom),
        rr.left.min(rs.left),
        rr.right.max(rs.right),
    );
    let union_fill = (e_r + e_s) as f64 / bbox.area() as f64;

    // Containment: D when the inner region is solid and the outer wraps it
    // densely (a sandwich or frame has low raw fill because the inner
    // processor sits inside its rectangle).
    let containment = |ro: &Rect, ri: &Rect, e_o: usize, e_i: usize, fill_i: f64| -> bool {
        ro.contains_rect(ri)
            && fill_i >= RECT_FILL
            && (e_o + e_i) as f64 / ro.area() as f64 >= UNION_FILL
    };
    if containment(&rr, &rs, e_r, e_s, fill_s) || containment(&rs, &rr, e_s, e_r, fill_r) {
        return Archetype::D;
    }

    if fill_r < SCATTER_FILL || fill_s < SCATTER_FILL {
        return Archetype::NonShape;
    }

    if overlap_is_thin(&rr, &rs) {
        // Disjoint (or ragged-line) rectangles: A when both are solid.
        if fill_r >= RECT_FILL && fill_s >= RECT_FILL {
            return Archetype::A;
        }
        return Archetype::NonShape;
    }

    // Overlapping rectangles with a solid union: one solid region means an
    // L-against-rectangle boundary (B); neither solid means interlock (C).
    if union_fill >= UNION_FILL {
        if fill_r >= RECT_FILL || fill_s >= RECT_FILL {
            return Archetype::B;
        }
        return Archetype::C;
    }
    Archetype::NonShape
}

/// Classify at the paper's viewing granularity.
///
/// Fig. 7 renders partitions at 1/100th granularity — each displayed cell is
/// the majority owner of a block of elements — and the paper groups DFA
/// outputs into archetypes at that level of detail. At finite `N` a fixed
/// point retains a few stray elements that the exact classifier rejects;
/// majority-downsampling to `blocks x blocks` and classifying the coarse
/// grid (strictly first, tolerantly second) reproduces the paper's
/// grouping. Exact classification is attempted first; the coarse passes
/// only run as fallbacks.
pub fn classify_coarse(part: &Partition, blocks: usize) -> Archetype {
    let _span = hetmmm_obs::fine_span_arg("shapes.classify_coarse", blocks as u64);
    let exact = classify(part);
    if exact != Archetype::NonShape {
        return exact;
    }
    let coarse = hetmmm_partition::downsample(part, blocks);
    classify_tolerant(&coarse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::PartitionBuilder;

    #[test]
    fn square_corner_is_archetype_a() {
        let part = PartitionBuilder::new(12)
            .rect(Rect::new(0, 3, 0, 3), Proc::R)
            .rect(Rect::new(8, 11, 8, 11), Proc::S)
            .build();
        assert_eq!(classify(&part), Archetype::A);
    }

    #[test]
    fn traditional_strips_are_archetype_a() {
        let part = Partition::from_fn(9, |i, _| {
            if i < 3 {
                Proc::P
            } else if i < 6 {
                Proc::R
            } else {
                Proc::S
            }
        });
        assert_eq!(classify(&part), Archetype::A);
    }

    #[test]
    fn asymptotic_rects_with_thin_overlap_still_a() {
        // R rows 0..=2 plus half of row 3; S the other half of row 3 plus
        // rows 4..=5: enclosing rectangles overlap in exactly one row.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 2, 0, 7), Proc::R)
            .rect(Rect::new(3, 3, 0, 3), Proc::R)
            .rect(Rect::new(3, 3, 4, 7), Proc::S)
            .rect(Rect::new(4, 5, 0, 7), Proc::S)
            .build();
        assert_eq!(classify(&part), Archetype::A);
    }

    #[test]
    fn l_wrap_is_archetype_b() {
        // S rectangle with R L-shaped around it; enclosing rects overlap.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(4, 7, 0, 1), Proc::R) // vertical arm
            .rect(Rect::new(6, 7, 2, 5), Proc::R) // foot
            .rect(Rect::new(4, 5, 2, 5), Proc::S) // rect resting on the foot
            .build();
        assert_eq!(classify(&part), Archetype::B);
    }

    #[test]
    fn interlock_is_archetype_c() {
        // Two interlocking staircase shapes whose union is a rectangle.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 1, 0, 3), Proc::R)
            .rect(Rect::new(2, 3, 0, 1), Proc::R)
            .rect(Rect::new(2, 3, 2, 3), Proc::S)
            .rect(Rect::new(4, 5, 0, 3), Proc::S)
            .build();
        assert_eq!(classify(&part), Archetype::C);
    }

    #[test]
    fn surround_is_archetype_d() {
        // S square strictly inside R's enclosing rectangle, R wrapped around.
        let part = PartitionBuilder::new(10)
            .rect(Rect::new(2, 7, 2, 7), Proc::R)
            .rect(Rect::new(4, 5, 4, 5), Proc::S)
            .build();
        assert_eq!(classify(&part), Archetype::D);
    }

    #[test]
    fn random_scatter_is_non_shape() {
        let part = Partition::from_fn(10, |i, j| match (i * 13 + j * 7) % 4 {
            0 => Proc::R,
            1 => Proc::S,
            _ => Proc::P,
        });
        assert_eq!(classify(&part), Archetype::NonShape);
    }

    #[test]
    fn empty_s_with_rect_r_degenerates_to_a() {
        let part = PartitionBuilder::new(6)
            .rect(Rect::new(0, 2, 0, 2), Proc::R)
            .build();
        assert_eq!(classify(&part), Archetype::A);
    }
}
