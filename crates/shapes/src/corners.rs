//! Corner counting (Section VIII-A).
//!
//! The paper defines a *corner* as "a point in a partition shape of a single
//! processor at which the previously constant coordinate of the edge changes,
//! and the other coordinate becomes a constant" — i.e. a vertex of the
//! orthogonal polygon bounding the processor's region. Every shape has at
//! least four corners; the archetypes are distinguished by their counts
//! (A: 4+4, B: 4+6, C: ≥6 each, D: 4+8).
//!
//! We count vertices with the classic 2×2-window scan: slide a 2×2 window
//! over the grid (including a one-cell border of "outside"); a window
//! containing an odd number of region cells (1 or 3) contributes one vertex,
//! and a window containing exactly the two diagonal cells contributes two.
//! This is exact for arbitrary (even disconnected or holed) regions.

use hetmmm_partition::{Partition, Proc};

/// Number of boundary vertices ("corners") of the region owned by `proc`.
///
/// Returns 0 for an empty region; any non-empty region has at least 4.
pub fn corner_count(part: &Partition, proc: Proc) -> usize {
    let n = part.n();
    let inside = |i: isize, j: isize| -> bool {
        if i < 0 || j < 0 || i >= n as isize || j >= n as isize {
            return false;
        }
        part.get(i as usize, j as usize) == proc
    };
    let mut corners = 0usize;
    // Window anchored at (i, j) covers cells (i,j), (i,j+1), (i+1,j), (i+1,j+1)
    // with the anchor ranging over the extended grid [-1, n-1].
    for i in -1..n as isize {
        for j in -1..n as isize {
            let a = inside(i, j);
            let b = inside(i, j + 1);
            let c = inside(i + 1, j);
            let d = inside(i + 1, j + 1);
            let cnt = usize::from(a) + usize::from(b) + usize::from(c) + usize::from(d);
            match cnt {
                1 | 3 => corners += 1,
                2 if (a && d && !b && !c) || (b && c && !a && !d) => corners += 2,
                _ => {}
            }
        }
    }
    corners
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{PartitionBuilder, Rect};

    #[test]
    fn empty_region_has_no_corners() {
        let part = Partition::new(5, Proc::P);
        assert_eq!(corner_count(&part, Proc::R), 0);
    }

    #[test]
    fn rectangle_has_four_corners() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(2, 5, 1, 6), Proc::R)
            .build();
        assert_eq!(corner_count(&part, Proc::R), 4);
        // The complement (P) wraps the rectangle: 4 outer + 4 inner = 8.
        assert_eq!(corner_count(&part, Proc::P), 8);
    }

    #[test]
    fn full_matrix_has_four_corners() {
        let part = Partition::new(6, Proc::P);
        assert_eq!(corner_count(&part, Proc::P), 4);
    }

    #[test]
    fn single_cell_has_four_corners() {
        let mut part = Partition::new(4, Proc::P);
        part.set(2, 2, Proc::S);
        assert_eq!(corner_count(&part, Proc::S), 4);
    }

    #[test]
    fn l_shape_has_six_corners() {
        // Vertical bar rows 0..=3 col 0..=1 plus foot rows 2..=3 cols 2..=4.
        let part = PartitionBuilder::new(6)
            .rect(Rect::new(0, 3, 0, 1), Proc::R)
            .rect(Rect::new(2, 3, 2, 4), Proc::R)
            .build();
        assert_eq!(corner_count(&part, Proc::R), 6);
    }

    #[test]
    fn u_shape_has_eight_corners() {
        // Surround-style shape: bottom band + two arms.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(5, 7, 0, 7), Proc::R)
            .rect(Rect::new(0, 4, 0, 1), Proc::R)
            .rect(Rect::new(0, 4, 6, 7), Proc::R)
            .build();
        assert_eq!(corner_count(&part, Proc::R), 8);
    }

    #[test]
    fn two_disjoint_rectangles_have_eight_corners() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 1, 0, 1), Proc::S)
            .rect(Rect::new(5, 6, 5, 6), Proc::S)
            .build();
        assert_eq!(corner_count(&part, Proc::S), 8);
    }

    #[test]
    fn diagonal_touch_counts_two_vertices() {
        // Two cells sharing only a corner point: the 2x2 diagonal pattern.
        let mut part = Partition::new(4, Proc::P);
        part.set(0, 0, Proc::R);
        part.set(1, 1, Proc::R);
        // Each cell contributes 3 solo vertices; the shared point is one
        // geometric point counted twice (the diagonal window): 3+3+2 = 8.
        assert_eq!(corner_count(&part, Proc::R), 8);
    }

    #[test]
    fn rectangle_with_hole() {
        // 6x6 R square with a 2x2 P hole: 4 outer + 4 inner corners.
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(1, 6, 1, 6), Proc::R)
            .rect(Rect::new(3, 4, 3, 4), Proc::P)
            .build();
        assert_eq!(corner_count(&part, Proc::R), 8);
    }
}
