//! # hetmmm-shapes
//!
//! Shape taxonomy and candidate partitions (Sections VII–IX of DeFlumere &
//! Lastovetsky 2014).
//!
//! After the DFA search (crate `hetmmm-push`) condenses a random start state
//! to a fixed point, this crate answers: *what shape is it?* It implements
//!
//! - the corner taxonomy of Section VIII-A ([`corners`]),
//! - per-processor region analysis — contiguity, exact / asymptotic
//!   rectangularity (Fig. 3), band profiles ([`region`]),
//! - the four archetype classes A–D of Section VII and the classifier
//!   mapping any condensed partition onto them ([`archetype`]),
//! - the archetype reductions B→A, C→A, D→A of Theorems 8.2–8.4
//!   ([`transform`]),
//! - the six candidate canonical shapes of Section IX with their
//!   feasibility conditions (Theorem 9.1) and perimeter-minimizing canonical
//!   forms ([`candidates`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod candidates;
pub mod canonical;
pub mod corners;
pub mod region;
pub mod transform;

pub use archetype::{classify, classify_coarse, classify_tolerant, Archetype};
pub use candidates::{Candidate, CandidateType};
pub use canonical::{rectangle_corner_split, square_corner_margin, CornerSplit};
pub use corners::corner_count;
pub use region::{RegionKind, RegionProfile};
pub use transform::{reduce_to_archetype_a, translate_combined};
