//! Canonical-form optimization (Section IX-B).
//!
//! Each candidate type leaves some freedom (rectangle aspect ratios,
//! placement within the matrix); the canonical form fixes it by minimizing
//! the combined perimeter of the two slower rectangles, which minimizes
//! SCB communication. This module carries the continuous mathematics the
//! constructors discretize:
//!
//! - **Theorem 9.1**: both processors can be squares iff
//!   `√(R_r/T) + √(S_r/T) ≤ 1`;
//! - **Eq. 13**: for Type 1 when squares do not fit, minimize
//!   `f(x, y) = 2 (R_r/(T x) + x + S_r/(T y) + y)` subject to
//!   `x + y ≤ 1` (widths) and both heights `< 1`. The minimum lies on the
//!   boundary `x + y = 1`, where the one-dimensional problem has the
//!   closed-form interior optimum `x* = √a / (√a + √b)` with `a = R_r/T`,
//!   `b = S_r/T`.
//!
//! Every closed form is cross-validated against brute numeric scans in the
//! tests, and against the integer-grid constructors in
//! `candidates::tests`.

use hetmmm_partition::Ratio;
use serde::{Deserialize, Serialize};

/// Normalized areas `a = R_r/T`, `b = S_r/T` of the two slower processors.
fn areas(ratio: Ratio) -> (f64, f64) {
    let t = f64::from(ratio.total());
    (f64::from(ratio.r) / t, f64::from(ratio.s) / t)
}

/// The Type 1B (Rectangle-Corner) canonical split: both rectangles'
/// dimensions, normalized to a unit matrix.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CornerSplit {
    /// Width of the R rectangle (`x` in Eq. 13).
    pub x: f64,
    /// Width of the S rectangle (`y = 1 − x` on the optimal boundary).
    pub y: f64,
    /// Height of the R rectangle, `a / x`.
    pub height_r: f64,
    /// Height of the S rectangle, `b / y`.
    pub height_s: f64,
    /// The minimized combined perimeter `f(x, y)`.
    pub perimeter: f64,
}

/// Eq. 13 objective on the boundary `x + y = 1`.
fn perimeter_at(a: f64, b: f64, x: f64) -> f64 {
    let y = 1.0 - x;
    2.0 * (a / x + x + b / y + y)
}

/// Closed-form Eq. 13 minimizer on `x + y = 1`:
/// `d/dx (a/x + b/(1−x)) = 0 → x* = √a / (√a + √b)`, clamped so both
/// heights stay below 1 (each rectangle must be shorter than the matrix).
pub fn rectangle_corner_split(ratio: Ratio) -> CornerSplit {
    let (a, b) = areas(ratio);
    let mut x = a.sqrt() / (a.sqrt() + b.sqrt());
    // Feasibility clamps: height_r = a/x < 1 → x > a; height_s = b/(1−x) <
    // 1 → x < 1 − b. The interval (a, 1−b) is non-empty because a + b < 1.
    let lo = a + 1e-9;
    let hi = 1.0 - b - 1e-9;
    x = x.clamp(lo, hi);
    let y = 1.0 - x;
    CornerSplit {
        x,
        y,
        height_r: a / x,
        height_s: b / y,
        perimeter: perimeter_at(a, b, x),
    }
}

/// Theorem 9.1 boundary as an explicit margin: positive when two squares
/// fit (`1 − √a − √b`), negative when they do not.
pub fn square_corner_margin(ratio: Ratio) -> f64 {
    let (a, b) = areas(ratio);
    1.0 - a.sqrt() - b.sqrt()
}

/// Combined perimeter of the Square-Corner canonical form (two squares):
/// `4(√a + √b)`. Only meaningful when `square_corner_margin ≥ 0`.
pub fn square_corner_perimeter(ratio: Ratio) -> f64 {
    let (a, b) = areas(ratio);
    4.0 * (a.sqrt() + b.sqrt())
}

/// Golden-section minimizer used as an independent check of the closed
/// form (and available for objectives without one).
pub fn golden_section_min(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    assert!(lo < hi);
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = hi - (hi - lo) * INV_PHI;
    let mut d = lo + (hi - lo) * INV_PHI;
    for _ in 0..200 {
        if f(c) < f(d) {
            hi = d;
            d = c;
            c = hi - (hi - lo) * INV_PHI;
        } else {
            lo = c;
            c = d;
            d = lo + (hi - lo) * INV_PHI;
        }
        if (hi - lo).abs() < 1e-12 {
            break;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_golden_section() {
        for &(p, r, s) in &[(2u32, 2u32, 1u32), (3, 2, 1), (5, 4, 1), (2, 1, 1)] {
            let ratio = Ratio::new(p, r, s);
            let (a, b) = areas(ratio);
            let split = rectangle_corner_split(ratio);
            let lo = a + 1e-9;
            let hi = 1.0 - b - 1e-9;
            let x_num = golden_section_min(lo, hi, |x| perimeter_at(a, b, x));
            assert!(
                (split.x - x_num).abs() < 1e-6,
                "{ratio}: closed {} vs numeric {}",
                split.x,
                x_num
            );
        }
    }

    #[test]
    fn split_is_feasible_and_exact_area() {
        for ratio in Ratio::paper_ratios() {
            let (a, b) = areas(ratio);
            let split = rectangle_corner_split(ratio);
            assert!(split.x > 0.0 && split.y > 0.0);
            assert!((split.x + split.y - 1.0).abs() < 1e-12);
            assert!(split.height_r < 1.0 + 1e-9, "{ratio}");
            assert!(split.height_s < 1.0 + 1e-9, "{ratio}");
            // Areas recovered exactly.
            assert!((split.x * split.height_r - a).abs() < 1e-12);
            assert!((split.y * split.height_s - b).abs() < 1e-12);
        }
    }

    #[test]
    fn squares_beat_boundary_rectangles_when_feasible() {
        // Whenever Theorem 9.1 admits two squares, their combined
        // perimeter undercuts the best x + y = 1 rectangles (that is why
        // Type 1A, not 1B, is canonical in that regime).
        for &(p, r, s) in &[(10u32, 1u32, 1u32), (20, 3, 1), (8, 1, 1)] {
            let ratio = Ratio::new(p, r, s);
            assert!(square_corner_margin(ratio) > 0.0, "{ratio}");
            let sq = square_corner_perimeter(ratio);
            let rect = rectangle_corner_split(ratio).perimeter;
            assert!(sq < rect, "{ratio}: squares {sq} vs rectangles {rect}");
        }
    }

    #[test]
    fn margin_sign_matches_theorem_9_1() {
        assert!(square_corner_margin(Ratio::new(10, 1, 1)) > 0.0);
        assert!(square_corner_margin(Ratio::new(2, 2, 1)) < 0.0);
        // The boundary case P_r = 2√(R_r S_r): 2:1:1 → margin 0.
        assert!(square_corner_margin(Ratio::new(2, 1, 1)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_areas_split_evenly() {
        // R_r = S_r → x* = 1/2.
        let split = rectangle_corner_split(Ratio::new(6, 1, 1));
        assert!((split.x - 0.5).abs() < 1e-12);
        assert!((split.height_r - split.height_s).abs() < 1e-12);
    }

    #[test]
    fn golden_section_finds_parabola_vertex() {
        let x = golden_section_min(-10.0, 10.0, |x| (x - 3.25) * (x - 3.25));
        assert!((x - 3.25).abs() < 1e-9);
    }
}
