//! Shared plumbing for the experiment binaries: minimal CLI parsing and
//! table/CSV emission.
//!
//! Every figure and table of the paper's evaluation has a regenerating
//! binary in `src/bin/` (see DESIGN.md's experiment index); Criterion
//! micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::path::PathBuf;

/// Tiny `--key value` argument parser (all experiment binaries share the
/// same conventions; no external CLI dependency needed).
#[derive(Debug, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a `FromIterator`: takes owned Strings, never fails
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Args {
        let mut flags = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                flags.insert(key.to_string(), value);
            }
        }
        Args { flags }
    }

    /// Fetch a value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch an optional string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }
}

/// Directory where experiment binaries drop CSV/PGM artifacts
/// (`results/` at the workspace root; created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HETMMM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Print a row of fixed-width columns.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_key_values() {
        let args = Args::from_iter(
            ["--n", "100", "--runs", "50", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get("n", 0usize), 100);
        assert_eq!(args.get("runs", 0u64), 50);
        assert_eq!(args.get_str("verbose"), Some("true"));
        assert_eq!(args.get("missing", 7i32), 7);
    }

    #[test]
    fn args_bad_value_falls_back() {
        let args = Args::from_iter(["--n", "abc"].iter().map(|s| s.to_string()));
        assert_eq!(args.get("n", 42usize), 42);
    }
}
