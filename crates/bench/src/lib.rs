//! Shared plumbing for the experiment binaries: minimal CLI parsing and
//! table/CSV emission.
//!
//! Every figure and table of the paper's evaluation has a regenerating
//! binary in `src/bin/` (see DESIGN.md's experiment index); Criterion
//! micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hetmmm_obs as obs;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Tiny `--key value` argument parser (all experiment binaries share the
/// same conventions; no external CLI dependency needed).
#[derive(Debug, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not a `FromIterator`: takes owned Strings, never fails
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Args {
        let mut flags = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        iter.next().unwrap_or_else(|| "true".to_string())
                    }
                    _ => "true".to_string(),
                };
                flags.insert(key.to_string(), value);
            }
        }
        Args { flags }
    }

    /// Fetch a value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch an optional string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// All parsed flags as sorted `(key, value)` pairs (for manifests).
    pub fn entries(&self) -> Vec<(String, String)> {
        let mut entries: Vec<(String, String)> = self
            .flags
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.sort();
        entries
    }
}

/// Directory where experiment binaries drop CSV/PGM artifacts
/// (`results/` at the workspace root; created on demand). When the
/// requested directory cannot be created (read-only checkout, bad
/// `HETMMM_RESULTS`), falls back to a process-scoped directory under the
/// system temp dir rather than aborting the run — artifacts are
/// best-effort, the experiment itself is the product.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HETMMM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_ok() {
        return dir;
    }
    let fallback = std::env::temp_dir().join(format!("hetmmm_results_{}", std::process::id()));
    if std::fs::create_dir_all(&fallback).is_ok() {
        obs::message(
            "bench.results_dir",
            format!(
                "cannot create {}; falling back to {}",
                dir.display(),
                fallback.display()
            ),
        );
        return fallback;
    }
    // Both attempts failed; return the original path and let the write
    // sites surface their own errors.
    dir
}

/// Print a row of fixed-width columns.
///
/// Routed through the tracing facade as a `bench.table` message, so the
/// line lands in every installed sink ([`BinSession::start`] installs a
/// stdout `FmtSink`, keeping tables visible on the terminal as before) and
/// in the JSONL artifact when `HETMMM_OBS_JSONL` is set. Falls back to
/// plain `println!` when no sink is installed.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    obs::message_or_stdout("bench.table", line.trim_end().to_string());
}

/// Per-binary observability session: every experiment binary creates one
/// at startup and holds it for the life of `main`.
///
/// On start it installs sinks requested through the environment
/// (`HETMMM_OBS_JSONL`, `HETMMM_OBS_FMT`), installs a stdout [`obs::FmtSink`]
/// so routed table output stays visible, and enables metrics recording. On
/// drop it appends a [`obs::RunManifest`] — binary name, sorted CLI args,
/// seed, git revision, wall time, events emitted, and the full metrics
/// snapshot — to `results/manifests.jsonl`, then uninstalls its sinks.
pub struct BinSession {
    bin: &'static str,
    args: Vec<(String, String)>,
    seed: Option<u64>,
    started_unix_ms: u64,
    start_nanos: u64,
    events_at_start: u64,
    sink_ids: Vec<obs::SinkId>,
}

impl BinSession {
    /// Start a session. Call once at the top of `main`, before any
    /// instrumented work, and keep the value alive (`let _session = ...`).
    pub fn start(bin: &'static str, args: &Args) -> BinSession {
        let mut sink_ids = obs::init_from_env();
        // Messages-only: bench tables stay readable on the terminal even
        // when a JSONL sink is also streaming the full event firehose.
        sink_ids.push(obs::install_sink(Arc::new(
            obs::FmtSink::stdout().messages_only(),
        )));
        obs::metrics().set_enabled(true);
        obs::metrics().reset();
        let seed = args
            .get_str("seed0")
            .or_else(|| args.get_str("seed"))
            .and_then(|s| s.parse().ok());
        // hetmmm-lint: allow(L002) manifests record real wall-clock epoch, not modeled time
        let started_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        BinSession {
            bin,
            args: args.entries(),
            seed,
            started_unix_ms,
            start_nanos: obs::clock().now_nanos(),
            events_at_start: obs::events_emitted(),
            sink_ids,
        }
    }

    /// The manifest this session would write if it ended now.
    pub fn manifest(&self) -> obs::RunManifest {
        obs::RunManifest {
            v: obs::MANIFEST_VERSION,
            bin: self.bin.to_string(),
            args: self.args.clone(),
            seed: self.seed,
            git_rev: obs::git_rev(),
            started_unix_ms: self.started_unix_ms,
            wall_nanos: obs::clock().now_nanos().saturating_sub(self.start_nanos),
            events_emitted: obs::events_emitted().saturating_sub(self.events_at_start),
            metrics: obs::metrics().snapshot(),
        }
    }
}

impl Drop for BinSession {
    fn drop(&mut self) {
        let manifest = self.manifest();
        let path = results_dir().join("manifests.jsonl");
        // Cap the file at its newest HETMMM_OBS_MANIFEST_CAP records
        // (default 1024, 0 = unlimited) so repeated bench runs cannot grow
        // it without bound.
        if let Err(err) = obs::append_manifest_capped(&path, &manifest, obs::manifest_cap()) {
            // hetmmm-lint: allow(L003) in Drop mid-teardown; sinks are being uninstalled
            eprintln!("hetmmm-bench: cannot write {}: {err}", path.display());
        }
        obs::flush_sinks();
        for id in self.sink_ids.drain(..) {
            obs::uninstall_sink(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_key_values() {
        let args = Args::from_iter(
            ["--n", "100", "--runs", "50", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get("n", 0usize), 100);
        assert_eq!(args.get("runs", 0u64), 50);
        assert_eq!(args.get_str("verbose"), Some("true"));
        assert_eq!(args.get("missing", 7i32), 7);
    }

    #[test]
    fn args_bad_value_falls_back() {
        let args = Args::from_iter(["--n", "abc"].iter().map(|s| s.to_string()));
        assert_eq!(args.get("n", 42usize), 42);
    }
}
