//! **dash** — render the self-contained census dashboard.
//!
//! Joins every telemetry artifact the workspace produces into one static
//! `dashboard.html` (zero scripts, zero network — inline SVG only):
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin dash -- \
//!     [--history results/bench_history.jsonl] \
//!     [--manifests results/manifests.jsonl] \
//!     [--events <events.jsonl>]                 # funnel + timeline source
//!     [--baseline-events <a.jsonl>] [--latest-events <b.jsonl>]  # triage
//!     [--winners results/optimal_shape_map.csv] \
//!     [--window 30] [--threshold 1.3] \
//!     [--out results/dashboard.html]
//! ```
//!
//! Every input is optional: a missing or unreadable file renders its
//! panel as an explicit "no data" note, so the nightly job and a fresh
//! checkout produce a valid page either way. Like `obs_report` and
//! `bench_trend`, this is a pure analyzer over files already on disk —
//! it deliberately does **not** open a `BinSession` (no sinks, no
//! manifest append: reading telemetry must not generate telemetry).
//!
//! Output is a pure function of the inputs — byte-identical across runs
//! on the same files (the golden CLI test relies on this).

use hetmmm_bench::{results_dir, Args};
use hetmmm_report::{
    analyze_trend, render_dashboard, triage, Analysis, DashboardInputs, EventLog, ManifestLog,
    RunStore, SpanProfile, Timeline, WinnerMap,
};
use std::process::ExitCode;

/// Read a file if the flag was given or the default exists; `None` means
/// "panel renders as no-data".
fn read_optional(args: &Args, flag: &str, default: Option<std::path::PathBuf>) -> Option<String> {
    let path = args
        .get_str(flag)
        .map(std::path::PathBuf::from)
        .or(default)?;
    match std::fs::read_to_string(&path) {
        Ok(text) => Some(text),
        Err(err) => {
            eprintln!("dash: skipping {} ({err})", path.display());
            None
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let window = args.get("window", 30usize).max(2);
    let threshold = args.get("threshold", 1.3f64);
    let out_path = args
        .get_str("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("dashboard.html"));

    let mut store = RunStore::default();
    if let Some(text) = read_optional(
        &args,
        "history",
        Some(results_dir().join("bench_history.jsonl")),
    ) {
        store.ingest_history_str(&text);
    }
    if let Some(text) = read_optional(
        &args,
        "manifests",
        Some(results_dir().join("manifests.jsonl")),
    ) {
        store.ingest_manifests(&ManifestLog::parse_str(&text));
    }

    let trend = if store.history.len() >= 2 {
        Some(analyze_trend(&store.history, window, threshold))
    } else {
        None
    };

    // One event stream feeds both the funnel and the timeline; panels
    // individually degrade when the stream lacks their event kinds.
    let (analysis, timeline) = match read_optional(&args, "events", None) {
        Some(text) => {
            let log = EventLog::parse_str(&text);
            let analysis = Analysis::from_events(&log);
            let tl = Timeline::from_events(&log.records);
            store.ingest_events("events", log);
            (Some(analysis), if tl.is_empty() { None } else { Some(tl) })
        }
        None => (None, None),
    };

    // Baseline/latest streams (when both given) enable span-diff triage;
    // otherwise triage runs counters-only off the trend report.
    let baseline_profile = read_optional(&args, "baseline-events", None)
        .map(|t| SpanProfile::from_events(&EventLog::parse_str(&t).records));
    let latest_profile = read_optional(&args, "latest-events", None)
        .map(|t| SpanProfile::from_events(&EventLog::parse_str(&t).records));
    let triage_report = trend
        .as_ref()
        .map(|t| triage(t, baseline_profile.as_ref(), latest_profile.as_ref()));

    let winners = read_optional(
        &args,
        "winners",
        Some(results_dir().join("optimal_shape_map.csv")),
    )
    .map(|t| WinnerMap::parse_csv(&t));

    let inputs = DashboardInputs {
        store,
        trend,
        timeline,
        analysis,
        winners,
        triage: triage_report,
    };
    let html = render_dashboard(&inputs);
    if let Err(err) = std::fs::write(&out_path, &html) {
        eprintln!("dash: cannot write {}: {err}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "dashboard -> {} ({} bytes, {} history entries, {} manifest runs)",
        out_path.display(),
        html.len(),
        inputs.store.history.len(),
        inputs.store.total_runs()
    );
    ExitCode::SUCCESS
}
