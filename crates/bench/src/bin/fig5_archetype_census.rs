//! **E1 — Fig. 5 + Section VII-C census.**
//!
//! Runs the randomized Push DFA for every ratio the paper studied and
//! tabulates the archetype of each fixed point. The paper ran ~10,000
//! instances per ratio at N = 1000 on a cluster; the defaults here
//! (N = 100, 200 runs) reproduce the same grouping in seconds — pass
//! `--n 1000 --runs 10000` for full fidelity.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin fig5_archetype_census -- \
//!     [--n 100] [--runs 200] [--ratios 3:2:1,5:2:1]
//! ```
//!
//! `--ratios` restricts the census to a comma-separated list of `P:R:S`
//! specs (default: all eleven paper ratios); the nightly deep-census CI
//! job uses it to shard the larger slice across ratios.

use hetmmm::prelude::*;
use hetmmm::{census, CensusConfig};
use hetmmm_bench::{print_row, Args, BinSession};

/// Parse the `--ratios` list, exiting with a usage message on a bad spec.
fn parse_ratios(spec: &str) -> Vec<Ratio> {
    spec.split(',')
        .map(|tok| match tok.trim().parse::<Ratio>() {
            Ok(ratio) => ratio,
            Err(err) => {
                eprintln!("error: --ratios: {err}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("fig5_archetype_census", &args);
    let n = args.get("n", 100usize);
    let runs = args.get("runs", 200u64);
    let seed0 = args.get("seed0", 0u64);
    let ratios = match args.get_str("ratios") {
        Some(spec) => parse_ratios(spec),
        None => Ratio::paper_ratios(),
    };

    println!("E1 / Fig. 5 — archetype census of DFA fixed points");
    println!(
        "N = {n}, {runs} runs per ratio, seeds from {seed0}, {} ratio(s)\n",
        ratios.len()
    );

    let widths = [8, 6, 6, 6, 6, 10, 12, 12, 10];
    print_row(
        &[
            "ratio",
            "A",
            "B",
            "C",
            "D",
            "unclass",
            "voc0(mean)",
            "vocF(mean)",
            "steps",
        ]
        .map(String::from),
        &widths,
    );

    let mut total_nonshape = 0usize;
    for ratio in ratios {
        let report = census(
            &CensusConfig::new(n, ratio)
                .with_runs(runs)
                .with_seed0(seed0),
        );
        total_nonshape += report.non_shapes;
        assert_eq!(report.unconverged, 0, "DFA failed to converge at {ratio}");
        print_row(
            &[
                ratio.to_string(),
                report.counts[0].to_string(),
                report.counts[1].to_string(),
                report.counts[2].to_string(),
                report.counts[3].to_string(),
                report.non_shapes.to_string(),
                format!("{:.0}", report.mean_voc_initial),
                format!("{:.0}", report.mean_voc_final),
                format!("{:.1}", report.mean_steps),
            ],
            &widths,
        );
    }

    println!(
        "\nPostulate 1 check: every fixed point grouped into A/B/C/D \
         ({total_nonshape} borderline staircase outcomes left unclassified; \
         the paper's N=1000 visual grouping would absorb these — see \
         EXPERIMENTS.md)."
    );
}
