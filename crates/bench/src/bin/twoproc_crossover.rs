//! **E7 — two-processor baseline: the prior-work crossover.**
//!
//! Sweeps the fast:1 speed ratio for the two-processor substrate and
//! reports, per algorithm, whether the Square-Corner beats the
//! Straight-Line — reproducing the motivation of Section I: Square-Corner
//! optimal above 3:1 under SCB (and under the Eq. 6 parallel models the
//! accounting caveat documented in `hetmmm-twoproc`).
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin twoproc_crossover -- [--n 240] [--max 15]
//! ```

use hetmmm::prelude::*;
use hetmmm::twoproc::{crossover_ratio, sc_vs_sl};
use hetmmm_bench::{print_row, Args, BinSession};

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("twoproc_crossover", &args);
    let n = args.get("n", 240usize);
    let max_ratio = args.get("max", 15u32);
    let comm = args.get("comm", 50.0f64);

    println!("E7 — two-processor Square-Corner vs Straight-Line (N = {n}, comm weight {comm})\n");

    let algos = Algorithm::ALL;
    let mut widths = vec![8usize];
    widths.extend(std::iter::repeat_n(12, algos.len()));
    let mut header = vec!["ratio".to_string()];
    header.extend(algos.iter().map(|a| a.name().to_string()));
    print_row(&header, &widths);

    for fast in 2..=max_ratio {
        let mut cells = vec![format!("{fast}:1")];
        for algo in algos {
            let c = sc_vs_sl(algo, n, fast, comm);
            let rel = (c.sl_total - c.sc_total) / c.sl_total * 100.0;
            cells.push(if c.sc_wins() {
                format!("SC +{rel:.1}%")
            } else {
                format!("SL {:.1}%", -rel)
            });
        }
        print_row(&cells, &widths);
    }

    println!();
    for algo in algos {
        match crossover_ratio(algo, n, max_ratio, comm) {
            Some(c) => println!("{algo}: Square-Corner first wins at {c}:1"),
            None => println!(
                "{algo}: Square-Corner never wins up to {max_ratio}:1 \
                 (Eq. 6 broadcast accounting — see hetmmm-twoproc docs)"
            ),
        }
    }
    println!(
        "\nprior work [8]: SC optimal above 3:1 for barrier/interleaved \
         algorithms, always optimal with bulk overlap."
    );
}
