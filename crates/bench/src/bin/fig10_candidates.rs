//! **E5 — Figs. 10–12: the six candidate shapes in canonical form.**
//!
//! Constructs every feasible candidate for a given ratio, renders it,
//! reports VoC / perimeter, verifies the Theorem 9.1 feasibility boundary,
//! and checks the Eq. 13 perimeter minimizer for Type 1B against a brute
//! numeric scan.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin fig10_candidates -- [--n 60] [--p 5] [--r 2] [--s 1]
//! ```

use hetmmm::partition::render_ascii;
use hetmmm::prelude::*;
use hetmmm::shapes::candidates::{all_feasible, square_corner_feasible};
use hetmmm_bench::{print_row, Args, BinSession};

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("fig10_candidates", &args);
    let n = args.get("n", 60usize);
    let ratio = Ratio::new(
        args.get("p", 5u32),
        args.get("r", 2u32),
        args.get("s", 1u32),
    );

    println!("E5 / Figs. 10-12 — candidate canonical shapes at ratio {ratio}, N = {n}");
    println!(
        "Theorem 9.1: Square-Corner feasible iff √(R_r/T) + √(S_r/T) <= 1 → {}\n",
        if square_corner_feasible(ratio) {
            "feasible"
        } else {
            "INFEASIBLE"
        }
    );

    let feasible = all_feasible(n, ratio);
    let widths = [24, 10, 12, 12, 12];
    print_row(
        &["candidate", "VoC", "VoC/N^2", "R-perim", "S-perim"].map(String::from),
        &widths,
    );
    for c in &feasible {
        let rr = c.partition.enclosing_rect(Proc::R).unwrap();
        let rs = c.partition.enclosing_rect(Proc::S).unwrap();
        print_row(
            &[
                c.ty.paper_name().to_string(),
                c.partition.voc().to_string(),
                format!("{:.3}", c.partition.voc() as f64 / (n * n) as f64),
                rr.perimeter().to_string(),
                rs.perimeter().to_string(),
            ],
            &widths,
        );
    }

    println!("\nrenders (1/10th granularity):");
    for c in &feasible {
        println!("--- {} ---", c.ty.paper_name());
        println!("{}", render_ascii(&c.partition, 10));
    }

    // Eq. 13 check: the Rectangle-Corner split found by the constructor
    // matches a brute-force scan of combined heights.
    let areas = ratio.areas(n);
    let (e_r, e_s) = (areas[Proc::R.idx()], areas[Proc::S.idx()]);
    let mut best = usize::MAX;
    for w_r in 1..n {
        let h_r = e_r.div_ceil(w_r);
        let h_s = e_s.div_ceil(n - w_r);
        if h_r < n && h_s < n {
            best = best.min(h_r + h_s);
        }
    }
    if let Some(rc) = feasible
        .iter()
        .find(|c| c.ty == CandidateType::RectangleCorner)
    {
        let rr = rc.partition.enclosing_rect(Proc::R).unwrap();
        let rs = rc.partition.enclosing_rect(Proc::S).unwrap();
        let got = rr.height() + rs.height();
        println!(
            "Eq. 13 minimizer: constructor combined height {got}, brute-force optimum {best} → {}",
            if got == best { "MATCH" } else { "MISMATCH" }
        );
    }
}
