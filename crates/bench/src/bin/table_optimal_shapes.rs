//! **E10 (extension) — the full candidate analysis the paper defers.**
//!
//! Section X: "Of the six potentially optimal partition shapes, at least
//! one will be the optimum for a given set of factors. ... This full
//! analysis is beyond the scope of this paper." This binary performs that
//! analysis with the implemented models: for every ratio in a `(P_r, R_r)`
//! grid (with `S_r = 1`), every algorithm, and both topologies, it finds
//! the candidate with the lowest predicted execution time.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin table_optimal_shapes -- \
//!     [--n 120] [--comm 50] [--pmax 20] [--rmax 6]
//! ```

use hetmmm::prelude::*;
use hetmmm_bench::{results_dir, Args, BinSession};
use std::fmt::Write as _;

fn code(ty: CandidateType) -> &'static str {
    match ty {
        CandidateType::SquareCorner => "SC",
        CandidateType::RectangleCorner => "RC",
        CandidateType::SquareRectangle => "SR",
        CandidateType::BlockRectangle => "BR",
        CandidateType::LRectangle => "LR",
        CandidateType::TraditionalRectangle => "TR",
    }
}

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("table_optimal_shapes", &args);
    let n = args.get("n", 120usize);
    let comm = args.get("comm", 50.0f64);
    let pmax = args.get("pmax", 20u32);
    let rmax = args.get("rmax", 6u32);
    let base_speed = 1e9;

    println!(
        "E10 — optimal candidate per (P_r, R_r, S_r=1), N = {n}, \
         comm/comp weight {comm}\n"
    );
    println!(
        "legend: SC Square-Corner, RC Rectangle-Corner, SR Square-Rectangle, \
         BR Block-Rectangle, LR L-Rectangle, TR Traditional-Rectangle\n"
    );

    let mut csv = String::from("topology,algorithm,p_r,r_r,winner,predicted_s\n");
    for star in [false, true] {
        let topo_name = if star {
            "star (hub = P)"
        } else {
            "fully connected"
        };
        for algo in Algorithm::ALL {
            println!("--- {algo} on {topo_name} ---");
            print!("P_r \\ R_r |");
            for r in 1..=rmax {
                print!(" {r:>3}");
            }
            println!();
            for p in (1..=pmax).rev() {
                print!("{p:>9} |");
                for r in 1..=rmax {
                    if r > p {
                        print!("   -");
                        continue;
                    }
                    let ratio = Ratio::new(p, r, 1);
                    let mut platform = Platform::new(ratio, base_speed, comm / base_speed);
                    if star {
                        platform = platform.with_star(Proc::P);
                    }
                    let rec = hetmmm::recommend(n, ratio, &platform, algo);
                    print!("  {}", code(rec.candidate.ty));
                    writeln!(
                        csv,
                        "{},{},{p},{r},{},{:.6}",
                        if star { "star" } else { "full" },
                        algo.name(),
                        code(rec.candidate.ty),
                        rec.predicted_total
                    )
                    .unwrap();
                }
                println!();
            }
            println!();
        }
    }

    let path = results_dir().join("optimal_shape_map.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("full map written to {}", path.display());
}
