//! **Chaos harness for the multi-fault recovery engine.**
//!
//! Drives hundreds of seeded randomized fault schedules
//! ([`FaultPlan::random_schedule`]: 1–3 faults over crash / drop / stall /
//! delay, with delays straddling the receive timeout) through the
//! threaded executor and asserts the recovery contract on every run:
//! the product either matches `kij_serial` to `1e-10`, or the run reports
//! a *typed* degraded outcome — never a panic, a hang, or a silent wrong
//! answer.
//!
//! Every schedule is recorded as one JSONL line (plan included), so any
//! failing schedule can be replayed exactly with `--replay`:
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin chaos -- \
//!     [--seed 42] [--schedules 200] [--n 16] [--quick] \
//!     [--out results/chaos_schedules.jsonl] [--replay <file.jsonl>]
//! ```
//!
//! `--quick` shrinks the matrix (N = 10) for CI smoke runs. Exit status is
//! nonzero iff any schedule violated the contract.

use hetmmm::mmm::{
    kij_serial, multiply_partitioned_with, ExecConfig, ExecStats, FaultPlan, Matrix,
};
use hetmmm::prelude::*;
use hetmmm_bench::{print_row, results_dir, Args, BinSession};
use hetmmm_obs::{self as obs, FakeClock};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Receive timeout the chaos schedules are drawn against (delays straddle
/// this value).
const TIMEOUT_MILLIS: u64 = 25;

/// One schedule's outcome, one JSONL line in the artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChaosRecord {
    /// Schedule index within the sweep.
    i: u64,
    /// Per-schedule RNG seed (`--seed` + `i`).
    seed: u64,
    /// Matrix dimension.
    n: usize,
    /// The fault plan that ran (replayable).
    plan: FaultPlan,
    /// `clean` | `absorbed` | `recovered` | `degraded` | `mismatch` | `error`.
    outcome: String,
    /// Worst element error against the serial reference (NaN-free runs).
    max_abs_err: f64,
    /// Full recovery counters for the funnel.
    recovery: hetmmm::mmm::RecoveryStats,
}

fn chaos_config(plan: FaultPlan) -> ExecConfig {
    ExecConfig::default()
        .with_recv_timeout(Duration::from_millis(TIMEOUT_MILLIS))
        .with_retry_attempts(1)
        .with_backoff(Duration::from_millis(10), Duration::from_millis(40))
        .with_checkpoint_every(1)
        .with_recovery_deadline(Duration::from_secs(5))
        .with_clock(Arc::new(FakeClock::new()))
        .with_fault_plan(plan)
}

/// Run one schedule and classify it. The classification order matters:
/// contract violations first, then the recovery funnel stages from most
/// to least degraded.
fn run_schedule(i: u64, seed: u64, n: usize, plan: FaultPlan) -> ChaosRecord {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let config = chaos_config(plan.clone());
    let (outcome, max_abs_err, recovery) =
        match multiply_partitioned_with(&a, &b, &part_for(n), &config) {
            Err(err) => {
                obs::message("chaos.error", format!("schedule {i}: {err}"));
                ("error".to_string(), f64::NAN, Default::default())
            }
            Ok((c, stats)) => {
                let err = c.max_abs_diff(&kij_serial(&a, &b));
                let outcome = classify(err, &stats, &plan);
                (outcome, err, stats.recovery)
            }
        };
    ChaosRecord {
        i,
        seed,
        n,
        plan,
        outcome,
        max_abs_err,
        recovery,
    }
}

/// The partition every schedule runs on: three horizontal strips, so all
/// three workers exchange fragments at every pivot step and any victim's
/// silence is observable.
fn part_for(n: usize) -> Partition {
    Partition::from_fn(n, |i, _| {
        if i < n / 3 {
            Proc::R
        } else if i < 2 * n / 3 {
            Proc::S
        } else {
            Proc::P
        }
    })
}

fn classify(err: f64, stats: &ExecStats, plan: &FaultPlan) -> String {
    let r = &stats.recovery;
    // NaN must land in "mismatch" too, hence the explicit check.
    if err.is_nan() || err >= 1e-10 {
        "mismatch"
    } else if r.degraded_mode {
        "degraded"
    } else if r.faults_detected > 0 {
        "recovered"
    } else if r.recv_retries > 0 || r.attempt_retries > 0 {
        "absorbed"
    } else if plan.is_empty() {
        "clean"
    } else {
        // A scheduled fault that left no trace at all: an under-timeout
        // delay that fit inside the base receive window, or a drop/stall
        // at a step past another victim's earlier conviction. Count it as
        // absorbed — the contract (correct result, no error) held.
        "absorbed"
    }
    .to_string()
}

fn is_failure(outcome: &str) -> bool {
    matches!(outcome, "mismatch" | "error")
}

fn bump(name: &'static str) {
    if obs::metrics_enabled() {
        obs::metrics().counter(name).inc();
    }
}

fn run(args: &Args) -> i32 {
    let quick = args.get_str("quick").is_some();
    let seed = args.get("seed", 42u64);
    let schedules = args.get("schedules", 200u64);
    let n = args.get("n", if quick { 10usize } else { 16 });
    let default_out = results_dir().join("chaos_schedules.jsonl");
    let out_path = args
        .get_str("out")
        .map(std::path::PathBuf::from)
        .unwrap_or(default_out);

    // Build the worklist: either replayed plans from a prior artifact, or
    // freshly drawn seeded schedules (~10% run fault-free as controls).
    let worklist: Vec<(u64, u64, usize, FaultPlan)> = if let Some(path) = args.get_str("replay") {
        let body = match std::fs::read_to_string(path) {
            Ok(body) => body,
            Err(err) => {
                obs::message("chaos.error", format!("cannot read {path}: {err}"));
                return 2;
            }
        };
        body.lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str::<ChaosRecord>(l).ok())
            .map(|r| (r.i, r.seed, r.n, r.plan))
            .collect()
    } else {
        (0..schedules)
            .map(|i| {
                let s = seed.wrapping_add(i);
                let mut rng = StdRng::seed_from_u64(s);
                let plan = if rng.random_range(0..10u32) == 0 {
                    FaultPlan::new()
                } else {
                    FaultPlan::random_schedule(n, TIMEOUT_MILLIS, &mut rng)
                };
                (i, s, n, plan)
            })
            .collect()
    };

    println!(
        "chaos — {} schedules, N = {n}, seed {seed}, timeout {TIMEOUT_MILLIS}ms\n",
        worklist.len()
    );

    let mut records = Vec::with_capacity(worklist.len());
    let mut counts: Vec<(&str, u64)> = [
        "clean",
        "absorbed",
        "recovered",
        "degraded",
        "mismatch",
        "error",
    ]
    .iter()
    .map(|&k| (k, 0u64))
    .collect();
    for (i, s, sched_n, plan) in worklist {
        let record = run_schedule(i, s, sched_n, plan);
        bump(obs::metrics::names::CHAOS_SCHEDULES);
        match record.outcome.as_str() {
            "absorbed" => bump(obs::metrics::names::CHAOS_ABSORBED),
            "recovered" => bump(obs::metrics::names::CHAOS_RECOVERED),
            "degraded" => bump(obs::metrics::names::CHAOS_DEGRADED),
            _ => {}
        }
        if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == record.outcome) {
            slot.1 += 1;
        }
        if is_failure(&record.outcome) {
            obs::message(
                "chaos.failure",
                format!(
                    "schedule {} (seed {}) {}: err {:e}, plan {}",
                    record.i,
                    record.seed,
                    record.outcome,
                    record.max_abs_err,
                    serde_json::to_string(&record.plan).unwrap_or_default()
                ),
            );
        }
        records.push(record);
    }

    // Artifact: one JSONL line per schedule, replayable via --replay.
    match std::fs::File::create(&out_path) {
        Ok(mut file) => {
            let mut write_err = None;
            for record in &records {
                if let Ok(line) = serde_json::to_string(record) {
                    if let Err(err) = writeln!(file, "{line}") {
                        write_err = Some(err);
                        break;
                    }
                }
            }
            match write_err {
                None => println!(
                    "wrote {} schedules to {}",
                    records.len(),
                    out_path.display()
                ),
                Some(err) => {
                    obs::message(
                        "chaos.error",
                        format!("write {}: {err}", out_path.display()),
                    );
                }
            }
        }
        Err(err) => {
            obs::message(
                "chaos.error",
                format!("cannot create {}: {err}", out_path.display()),
            );
        }
    }

    let widths = [10, 8];
    print_row(&["outcome".into(), "runs".into()], &widths);
    for (name, count) in &counts {
        print_row(&[name.to_string(), count.to_string()], &widths);
    }
    let failures: u64 = counts
        .iter()
        .filter(|(k, _)| is_failure(k))
        .map(|(_, c)| c)
        .sum();
    println!("\n{} schedules, {} failures", records.len(), failures);
    if failures > 0 {
        1
    } else {
        0
    }
}

fn main() {
    let args = Args::parse();
    let code = {
        let _session = BinSession::start("chaos", &args);
        run(&args)
    };
    std::process::exit(code);
}
