//! **E9 (extension) — the search beyond three processors.**
//!
//! The paper closes with "the complexity of the three processor case ...
//! makes this work an excellent starting point for four or more
//! processors" and notes the program "can easily be adapted to form
//! partition shapes for any number of processors". This binary runs the
//! generalized `hetmmm-nproc` engine for four and five processors and
//! reports the shape statistics of the fixed points: how rectangular each
//! processor's region condenses to, the corner counts, and the
//! enclosing-rectangle overlap structure.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin nproc_search -- [--n 60] [--runs 32]
//! ```

use hetmmm_bench::{print_row, Args, BinSession};
use hetmmm_nproc::stats::outcome_stats;
use hetmmm_nproc::{NDfaConfig, NDfaRunner};

fn run_config(label: &str, n: usize, weights: Vec<u32>, runs: u64) {
    println!("== {label}: weights {weights:?}, N = {n}, {runs} runs ==");
    let k = weights.len();
    let runner = NDfaRunner::new(NDfaConfig::new(n, weights));
    let outs = runner.run_many(0..runs);

    let converged = outs.iter().filter(|o| o.converged).count();
    let cycled = outs.iter().filter(|o| o.cycled).count();
    let mean_red: f64 = outs
        .iter()
        .map(|o| 1.0 - o.voc_final as f64 / o.voc_initial as f64)
        .sum::<f64>()
        / outs.len() as f64;
    println!(
        "converged {converged}/{} ({cycled} by neutral-cycle detection); \
         mean VoC reduction {:.1}%",
        outs.len(),
        mean_red * 100.0
    );

    // Aggregate per-processor shape statistics over all fixed points.
    let widths = [6, 12, 12, 12, 14];
    print_row(
        &[
            "proc",
            "mean fill",
            "min fill",
            "mean corners",
            "rect-like (%)",
        ]
        .map(String::from),
        &widths,
    );
    for p in 1..k {
        let mut fills = Vec::new();
        let mut corners = Vec::new();
        let mut rect_like = 0usize;
        for out in &outs {
            let stats = outcome_stats(&out.partition);
            fills.push(stats.per_proc[p].fill);
            corners.push(stats.per_proc[p].corners);
            if stats.per_proc[p].fill > 0.85 {
                rect_like += 1;
            }
        }
        let mean_fill: f64 = fills.iter().sum::<f64>() / fills.len() as f64;
        let min_fill = fills.iter().copied().fold(f64::MAX, f64::min);
        let mean_corners: f64 = corners.iter().sum::<usize>() as f64 / corners.len() as f64;
        print_row(
            &[
                format!("P{p}"),
                format!("{mean_fill:.3}"),
                format!("{min_fill:.3}"),
                format!("{mean_corners:.1}"),
                format!("{:.0}", rect_like as f64 / outs.len() as f64 * 100.0),
            ],
            &widths,
        );
    }

    // Overlap structure frequency (upper triangle, slower procs only).
    let mut overlap_counts = vec![0usize; k * k];
    for out in &outs {
        let stats = outcome_stats(&out.partition);
        for a in 1..k {
            for b in (a + 1)..k {
                if stats.overlaps[a][b] {
                    overlap_counts[a * k + b] += 1;
                }
            }
        }
    }
    print!("enclosing-rect overlap rates:");
    for a in 1..k {
        for b in (a + 1)..k {
            print!(
                "  P{a}~P{b}: {:.0}%",
                overlap_counts[a * k + b] as f64 / outs.len() as f64 * 100.0
            );
        }
    }
    println!("\n");
}

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("nproc_search", &args);
    let n = args.get("n", 60usize);
    let runs = args.get("runs", 32u64);

    println!("E9 — Push search beyond three processors (extension)\n");
    run_config("four processors", n, vec![6, 3, 2, 1], runs);
    run_config("four processors, dominant fast", n, vec![12, 2, 1, 1], runs);
    run_config("five processors", n, vec![8, 4, 2, 1, 1], runs);

    println!(
        "reading: fixed points condense each slower processor into a \
         dense (rect-like) region, as Postulate 1 predicts for three \
         processors; a full ≥4-processor archetype taxonomy is future work \
         (the overlap structure above is its raw material)."
    );
}
