//! **Bench-history trend analyzer** — catches slow drift the perf gate
//! cannot.
//!
//! The single-baseline gate (`perf_gate`) passes any run within a 1.8×
//! ratio of the committed baseline, so a few-percent-per-PR slowdown
//! compounds silently. This binary reads the append-only history store
//! (`results/bench_history.jsonl`, one flattened suite per gate run) and
//! compares each workload's newest median against the median-of-medians of
//! its predecessors inside a sliding window, plus deterministic-counter
//! deltas against the immediately preceding entry.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin bench_trend -- \
//!     [--history results/bench_history.jsonl] [--window 10] \
//!     [--threshold 1.5]
//! ```
//!
//! Exit code 1 on wall-time drift beyond `--threshold`; counter deltas are
//! reported but do not fail (the perf gate's exact-equality check already
//! owns that). Fewer than two history entries is a graceful pass —
//! "insufficient history" — so the CI step is a no-op on a fresh checkout
//! or a cold cache.
//!
//! Like `obs_report`, this is a pure analyzer over existing artifacts: it
//! deliberately opens no `BinSession` and appends nothing anywhere.

use hetmmm_bench::{results_dir, Args};
use hetmmm_report::trend::{analyze, parse_history};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let history_path = args
        .get_str("history")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("bench_history.jsonl"));
    let window = args.get("window", 10usize).max(2);
    let threshold = args.get("threshold", 1.5f64);

    let text = match std::fs::read_to_string(&history_path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            println!(
                "bench_trend: no history at {} — nothing to analyze yet \
                 (perf_gate appends an entry per run)",
                history_path.display()
            );
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("bench_trend: cannot read {}: {err}", history_path.display());
            return ExitCode::FAILURE;
        }
    };

    let (entries, skipped) = parse_history(&text);
    let mut report = analyze(&entries, window, threshold);
    report.skipped_lines = skipped;
    print!("{}", report.render_text(threshold));

    if report.has_drift() {
        eprintln!(
            "bench_trend: DRIFT beyond {threshold:.2}x over the last {window} entries \
             — investigate or refresh the baseline deliberately"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
