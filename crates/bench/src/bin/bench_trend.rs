//! **Bench-history trend analyzer** — catches slow drift the perf gate
//! cannot, and triages it when it fires.
//!
//! The single-baseline gate (`perf_gate`) passes any run within a 1.8×
//! ratio of the committed baseline, so a few-percent-per-PR slowdown
//! compounds silently. This binary reads the append-only history store
//! (`results/bench_history.jsonl`, one flattened suite per gate run) and
//! compares each workload's newest median against the median-of-medians of
//! its predecessors inside a sliding window, plus deterministic-counter
//! deltas against the immediately preceding entry.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin bench_trend -- \
//!     [--history results/bench_history.jsonl] [--window 10] \
//!     [--threshold 1.5] \
//!     [--events-baseline <a.jsonl>] [--events-latest <b.jsonl>] \
//!     [--triage-out <triage.json>]
//! ```
//!
//! Exit code 1 on wall-time drift beyond `--threshold`; counter deltas are
//! reported but do not fail (the perf gate's exact-equality check already
//! owns that). Fewer than two history entries is a graceful pass —
//! "insufficient history" — so the CI step is a no-op on a fresh checkout
//! or a cold cache.
//!
//! Every run also emits a triage verdict: with `--events-baseline` and
//! `--events-latest` it diffs span self-time per path between the two
//! streams and names the suspect ("push.clean self-nanos under dfa.run
//! grew 2.1x"); without them it degrades to counters-only mode.
//! `--triage-out` writes the same verdict as schema-versioned JSON for
//! `$GITHUB_STEP_SUMMARY` tooling.
//!
//! Like `obs_report`, this is a pure analyzer over existing artifacts: it
//! deliberately opens no `BinSession` and appends nothing anywhere.

use hetmmm_bench::{results_dir, Args};
use hetmmm_report::trend::{analyze, parse_history};
use hetmmm_report::{triage, EventLog, SpanProfile};
use std::process::ExitCode;

/// Load a span profile from an event JSONL file named by `flag`, when
/// given. A missing/unreadable file downgrades to counters-only triage
/// with a note, never a failure.
fn load_profile(args: &Args, flag: &str) -> Option<SpanProfile> {
    let path = args.get_str(flag)?;
    match std::fs::read_to_string(path) {
        Ok(text) => Some(SpanProfile::from_events(
            &EventLog::parse_str(&text).records,
        )),
        Err(err) => {
            eprintln!("bench_trend: cannot read --{flag} {path}: {err} (triage degrades)");
            None
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let history_path = args
        .get_str("history")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("bench_history.jsonl"));
    let window = args.get("window", 10usize).max(2);
    let threshold = args.get("threshold", 1.5f64);

    let text = match std::fs::read_to_string(&history_path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            println!(
                "bench_trend: no history at {} — nothing to analyze yet \
                 (perf_gate appends an entry per run)",
                history_path.display()
            );
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("bench_trend: cannot read {}: {err}", history_path.display());
            return ExitCode::FAILURE;
        }
    };

    let (entries, skipped) = parse_history(&text);
    let mut report = analyze(&entries, window, threshold);
    report.skipped_lines = skipped;
    print!("{}", report.render_text(threshold));

    // Triage: join the drift verdict against span-profile diffs (when
    // baseline/latest streams were supplied) and exact counter deltas.
    let baseline = load_profile(&args, "events-baseline");
    let latest = load_profile(&args, "events-latest");
    let triage_report = triage(&report, baseline.as_ref(), latest.as_ref());
    print!("{}", triage_report.render_text());
    if let Some(out) = args.get_str("triage-out") {
        if let Err(err) = std::fs::write(out, triage_report.to_json()) {
            eprintln!("bench_trend: cannot write --triage-out {out}: {err}");
            return ExitCode::FAILURE;
        }
        println!("triage -> {out}");
    }

    if report.has_drift() {
        eprintln!(
            "bench_trend: DRIFT beyond {threshold:.2}x over the last {window} entries \
             — investigate or refresh the baseline deliberately"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
