//! **Observability analyzer** — render reports over event JSONL streams
//! and `results/manifests.jsonl`.
//!
//! Produces the push acceptance funnel (type × direction), convergence /
//! recv-wait summaries with p50/p95/p99, per-processor volume breakdowns,
//! and the span-tree profile with optional folded-stack (flamegraph)
//! output. All output is deterministic for a fixed input stream: a seeded
//! run captured under `FakeClock` reports byte-identically every time.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin obs_report -- \
//!     --events results/fig5_events.jsonl [--manifests results/manifests.jsonl] \
//!     [--folded results/profile.folded] [--fold-weight nanos|calls] \
//!     [--csv-dir results/report]
//! ```
//!
//! Deliberately does **not** open a `BinSession`: the analyzer reads
//! `manifests.jsonl` and must never grow the file it is reporting on.

use hetmmm_bench::Args;
use hetmmm_report::{full_report, Analysis, EventLog, FoldWeight, ManifestLog, SpanProfile};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let events_path = args.get_str("events");
    let manifests_path = args.get_str("manifests");
    if events_path.is_none() && manifests_path.is_none() {
        eprintln!(
            "usage: obs_report --events <events.jsonl> [--manifests <manifests.jsonl>] \
             [--folded <out>] [--fold-weight nanos|calls] [--csv-dir <dir>]"
        );
        return ExitCode::FAILURE;
    }

    let events = match events_path {
        Some(path) => match EventLog::read_path(path) {
            Ok(log) => Some(log),
            Err(err) => {
                eprintln!("obs_report: {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let manifests = match manifests_path {
        Some(path) => match ManifestLog::read_path(path) {
            Ok(log) => Some(log),
            Err(err) => {
                eprintln!("obs_report: {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let empty_events = EventLog::default();
    let event_log = events.as_ref().unwrap_or(&empty_events);
    print!("{}", full_report(event_log, manifests.as_ref()));

    let fold_weight = match args.get_str("fold-weight").unwrap_or("nanos") {
        "calls" => FoldWeight::Calls,
        _ => FoldWeight::SelfNanos,
    };
    let profile = SpanProfile::from_events(&event_log.records);
    if let Some(path) = args.get_str("folded") {
        if let Err(err) = std::fs::write(path, profile.folded(fold_weight)) {
            eprintln!("obs_report: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("folded stacks -> {path}");
    }

    if let Some(dir) = args.get_str("csv-dir") {
        let dir = std::path::Path::new(dir);
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("obs_report: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let mut files: Vec<(String, String)> = Analysis::from_events(event_log).csv_sections();
        files.push(("profile".to_string(), profile.csv()));
        if let Some(log) = manifests.as_ref() {
            files.push((
                "manifest_summary".to_string(),
                hetmmm_report::ManifestSummary::from_manifests(log).csv(),
            ));
        }
        for (name, content) in files {
            let path = dir.join(format!("{name}.csv"));
            if let Err(err) = std::fs::write(&path, content) {
                eprintln!("obs_report: cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
            println!("csv -> {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
