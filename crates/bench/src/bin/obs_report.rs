//! **Observability analyzer** — render reports over event JSONL streams
//! and `results/manifests.jsonl`.
//!
//! Produces the push acceptance funnel (type × direction), convergence /
//! recv-wait summaries with p50/p95/p99, per-processor volume breakdowns,
//! and the span-tree profile with optional folded-stack (flamegraph)
//! output. All output is deterministic for a fixed input stream: a seeded
//! run captured under `FakeClock` reports byte-identically every time.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin obs_report -- \
//!     --events results/fig5_events.jsonl [--manifests results/manifests.jsonl] \
//!     [--folded results/profile.folded] [--fold-weight nanos|calls] \
//!     [--csv-dir results/report] [--trace results/trace.json] \
//!     [--audit [--n 64] [--ratio 2:1:1] [--seed 7]]
//! ```
//!
//! `--trace` exports the stream's `ExecSegment` timeline as Chrome
//! trace-event JSON (open in Perfetto / `chrome://tracing`). `--audit`
//! joins the measured timeline against all five cost models' predictions:
//! `--n/--ratio/--seed` must match the run that produced the stream so the
//! partition can be reconstructed (defaults mirror the perf-gate executor
//! workload).
//!
//! Deliberately does **not** open a `BinSession`: the analyzer reads
//! `manifests.jsonl` and must never grow the file it is reporting on.

use hetmmm::prelude::*;
use hetmmm_bench::Args;
use hetmmm_report::{
    audit::audit, full_report, Analysis, EventLog, FoldWeight, ManifestLog, SpanProfile, Timeline,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let events_path = args.get_str("events");
    let manifests_path = args.get_str("manifests");
    if events_path.is_none() && manifests_path.is_none() {
        eprintln!(
            "usage: obs_report --events <events.jsonl> [--manifests <manifests.jsonl>] \
             [--folded <out>] [--fold-weight nanos|calls] [--csv-dir <dir>]"
        );
        return ExitCode::FAILURE;
    }

    let events = match events_path {
        Some(path) => match EventLog::read_path(path) {
            Ok(log) => Some(log),
            Err(err) => {
                eprintln!("obs_report: {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let manifests = match manifests_path {
        Some(path) => match ManifestLog::read_path(path) {
            Ok(log) => Some(log),
            Err(err) => {
                eprintln!("obs_report: {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let empty_events = EventLog::default();
    let event_log = events.as_ref().unwrap_or(&empty_events);
    print!("{}", full_report(event_log, manifests.as_ref()));

    if args.get_str("trace").is_some() || args.get_str("audit").is_some() {
        let timeline = Timeline::from_events(&event_log.records);
        if let Some(path) = args.get_str("trace") {
            if let Err(err) = std::fs::write(path, timeline.chrome_trace_json()) {
                eprintln!("obs_report: cannot write {path}: {err}");
                return ExitCode::FAILURE;
            }
            println!("chrome trace -> {path}");
        }
        if args.get_str("audit").is_some() {
            let n = args.get("n", 64usize);
            let seed = args.get("seed", 7u64);
            let ratio = match args.get_str("ratio").unwrap_or("2:1:1").parse::<Ratio>() {
                Ok(ratio) => ratio,
                Err(err) => {
                    eprintln!("obs_report: --ratio: {err}");
                    return ExitCode::FAILURE;
                }
            };
            // Reconstruct the partition the instrumented run used: the
            // executor workloads draw it as the *first* sample from a
            // seeded rng, so (n, ratio, seed) pins it exactly.
            let mut rng = StdRng::seed_from_u64(seed);
            let part = random_partition(n, ratio, &mut rng);
            match audit(&timeline, &part, ratio) {
                Ok(report) => {
                    println!();
                    print!("{}", report.render_text());
                }
                Err(err) => {
                    eprintln!("obs_report: audit: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let fold_weight = match args.get_str("fold-weight").unwrap_or("nanos") {
        "calls" => FoldWeight::Calls,
        _ => FoldWeight::SelfNanos,
    };
    let profile = SpanProfile::from_events(&event_log.records);
    if let Some(path) = args.get_str("folded") {
        if let Err(err) = std::fs::write(path, profile.folded(fold_weight)) {
            eprintln!("obs_report: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("folded stacks -> {path}");
    }

    if let Some(dir) = args.get_str("csv-dir") {
        let dir = std::path::Path::new(dir);
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("obs_report: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let mut files: Vec<(String, String)> = Analysis::from_events(event_log).csv_sections();
        files.push(("profile".to_string(), profile.csv()));
        if let Some(log) = manifests.as_ref() {
            files.push((
                "manifest_summary".to_string(),
                hetmmm_report::ManifestSummary::from_manifests(log).csv(),
            ));
        }
        for (name, content) in files {
            let path = dir.join(format!("{name}.csv"));
            if let Err(err) = std::fs::write(&path, content) {
                eprintln!("obs_report: cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
            println!("csv -> {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
