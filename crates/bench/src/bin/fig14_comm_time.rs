//! **E4 — Fig. 14: communication time vs heterogeneity.**
//!
//! The paper's experimental validation: SCB algorithm, fully connected
//! topology, N = 5000, 1000 MB/s network, `R_r = S_r = 1`, sweeping the
//! fast processor's speed `P_r`. The paper measured three CPU-throttled
//! Open-MPI nodes; we run the message-level simulator on the same Hockney
//! parameters (DESIGN.md §2 documents the substitution). Expected shape:
//! Block-Rectangle flat-ish, Square-Corner falling with heterogeneity and
//! overtaking it at high ratios.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin fig14_comm_time -- [--n 5000]
//! ```

use hetmmm::prelude::*;
use hetmmm_bench::{print_row, results_dir, Args, BinSession};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("fig14_comm_time", &args);
    let n = args.get("n", 5000usize);

    // Fig. 14 setup: 1000 MB/s, 8-byte elements.
    let network = HockneyModel::from_bandwidth(1000e6, 8.0);

    println!("E4 / Fig. 14 — SCB communication time, fully connected, N = {n}, 1000 MB/s");
    println!("ratios P:1:1 as in the paper (R_r = S_r)\n");

    let widths = [8, 16, 16, 12];
    print_row(
        &["P_r", "SquareCorner(s)", "BlockRect(s)", "winner"].map(String::from),
        &widths,
    );

    let mut csv = String::from("p_r,square_corner_s,block_rectangle_s\n");
    let mut crossover = None;
    let mut prev_sc_wins = false;
    for p in [1u32, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25] {
        let ratio = Ratio::new(p.max(1), 1, 1);
        let platform = Platform {
            ratio,
            base_speed: 1e9,
            network,
            topology: Topology::FullyConnected,
        };
        let br = CandidateType::BlockRectangle
            .construct(n, ratio)
            .expect("block-rectangle always feasible")
            .partition;
        let br_time = simulate(&br, &SimConfig::new(platform, Algorithm::Scb)).comm_time;

        let sc_time = CandidateType::SquareCorner
            .construct(n, ratio)
            .map(|c| simulate(&c.partition, &SimConfig::new(platform, Algorithm::Scb)).comm_time);

        let (sc_cell, winner) = match sc_time {
            None => ("infeasible".to_string(), "block-rect"),
            Some(t) if t < br_time => (format!("{t:.4}"), "SQ-CORNER"),
            Some(t) => (format!("{t:.4}"), "block-rect"),
        };
        if let Some(t) = sc_time {
            let sc_wins = t < br_time;
            if sc_wins && !prev_sc_wins {
                crossover = Some(p);
            }
            prev_sc_wins = sc_wins;
            writeln!(csv, "{p},{t:.6},{br_time:.6}").unwrap();
        } else {
            writeln!(csv, "{p},,{br_time:.6}").unwrap();
        }
        print_row(
            &[
                p.to_string(),
                sc_cell,
                format!("{br_time:.4}"),
                winner.to_string(),
            ],
            &widths,
        );
    }

    println!(
        "\nSquare-Corner overtakes Block-Rectangle at P_r ≈ {} \
         (paper: 'as heterogeneity increases ... eventually overtaking')",
        crossover.map_or("-".to_string(), |p| p.to_string())
    );
    let path = results_dir().join("fig14_comm_time.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("series written to {}", path.display());
}
