//! **Seeded executor trace capture** — one instrumented threaded multiply
//! whose event stream feeds the timeline/audit tooling.
//!
//! Runs exactly one `multiply_partitioned` over a seeded random partition
//! (the partition is the *first* draw from the seeded rng, so
//! `obs_report --audit --n <n> --ratio <p:r:s> --seed <seed>` can
//! reconstruct it) and relies on the standard `BinSession` environment
//! plumbing for capture:
//!
//! ```text
//! HETMMM_OBS_JSONL=results/exec_events.jsonl \
//!     cargo run --release -p hetmmm-bench --bin exec_trace -- \
//!     [--n 64] [--ratio 2:1:1] [--seed 7] [--checkpoint]
//! ```
//!
//! `--checkpoint` arms the checkpoint subsystem (via an empty fault plan)
//! so the stream also carries `checkpoint` segments. Follow with
//! `obs_report --events ... --trace trace.json --audit` for the Perfetto
//! export and the model-vs-measured table; the nightly deep-census CI job
//! does exactly that.

use hetmmm::mmm::{multiply_partitioned_with, ExecConfig, FaultPlan, Matrix};
use hetmmm::prelude::*;
use hetmmm_bench::{Args, BinSession};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let _session = BinSession::start("exec_trace", &args);
    let n = args.get("n", 64usize);
    let seed = args.get("seed", 7u64);
    let ratio = match args.get_str("ratio").unwrap_or("2:1:1").parse::<Ratio>() {
        Ok(ratio) => ratio,
        Err(err) => {
            eprintln!("exec_trace: --ratio: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!("exec_trace — instrumented threaded multiply, N = {n}, ratio {ratio}, seed {seed}");

    let mut rng = StdRng::seed_from_u64(seed);
    let part = random_partition(n, ratio, &mut rng);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let mut config = ExecConfig::default();
    if args.get_str("checkpoint").is_some() {
        config = config.with_fault_plan(FaultPlan::new());
    }
    let (_, stats) = match multiply_partitioned_with(&a, &b, &part, &config) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("exec_trace: executor failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "done: {} updates, {} elements exchanged in {} messages, {} fault(s)",
        stats.total_updates(),
        stats.total_sent(),
        stats.total_messages(),
        stats.recovery.faults_detected,
    );
    ExitCode::SUCCESS
}
