//! **E6 — Theorems 8.2–8.4: archetype reductions B, C, D → A.**
//!
//! Generates Archetype B/C/D instances two ways — hand-constructed
//! geometries and actual DFA fixed points — applies
//! [`reduce_to_archetype_a`], and verifies the theorems' guarantee: the
//! result is Archetype A and the volume of communication never increased.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin thm8_reductions -- [--n 48] [--runs 64]
//! ```

use hetmmm::prelude::*;
use hetmmm_bench::{print_row, Args, BinSession};

fn constructed_fixtures(n: usize) -> Vec<(&'static str, Partition)> {
    let q = n / 12;
    vec![
        (
            "B (L wrap, constructed)",
            PartitionBuilder::new(n)
                .rect(Rect::new(4 * q, n - 1, 0, 2 * q), Proc::R)
                .rect(Rect::new(9 * q, n - 1, 2 * q + 1, 7 * q), Proc::R)
                .rect(Rect::new(4 * q, 9 * q - 1, 2 * q + 1, 7 * q), Proc::S)
                .build(),
        ),
        (
            "C (interlock, constructed)",
            PartitionBuilder::new(n)
                .rect(Rect::new(0, 2 * q, 0, 5 * q), Proc::R)
                .rect(Rect::new(2 * q + 1, 5 * q, 0, 2 * q), Proc::R)
                .rect(Rect::new(2 * q + 1, 5 * q, 2 * q + 1, 5 * q), Proc::S)
                .rect(Rect::new(5 * q + 1, 8 * q, 0, 5 * q), Proc::S)
                .build(),
        ),
        (
            "D (surround, constructed)",
            PartitionBuilder::new(n)
                .rect(Rect::new(2 * q, 9 * q, 2 * q, 9 * q), Proc::R)
                .rect(Rect::new(4 * q, 6 * q, 4 * q, 6 * q), Proc::S)
                .build(),
        ),
    ]
}

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("thm8_reductions", &args);
    let n = args.get("n", 48usize);
    let runs = args.get("runs", 64u64);

    println!("E6 / Theorems 8.2-8.4 — reductions to Archetype A\n");
    let widths = [30, 12, 10, 10, 14];
    print_row(
        &["instance", "archetype", "VoC in", "VoC out", "result"].map(String::from),
        &widths,
    );

    let mut checked = 0usize;
    let mut report = |label: String, part: &Partition| {
        let arch_in = classify_coarse(part, 10);
        let reduced = reduce_to_archetype_a(part);
        let arch_out = classify(&reduced);
        assert!(
            reduced.voc() <= part.voc(),
            "{label}: VoC increased {} -> {}",
            part.voc(),
            reduced.voc()
        );
        assert_eq!(arch_out, Archetype::A, "{label}: reduction missed A");
        checked += 1;
        print_row(
            &[
                label,
                format!("{arch_in:?}"),
                part.voc().to_string(),
                reduced.voc().to_string(),
                "→ A, VoC ok".to_string(),
            ],
            &widths,
        );
    };

    for (label, part) in constructed_fixtures(n) {
        report(label.to_string(), &part);
    }

    // DFA-found B/C/D instances across a few ratios.
    for &(p, r, s) in &[(2u32, 1u32, 1u32), (5, 2, 1), (2, 2, 1)] {
        let ratio = Ratio::new(p, r, s);
        let runner = DfaRunner::new(DfaConfig::new(n, ratio));
        for out in runner.run_many(0..runs) {
            let mut part = out.partition;
            beautify(&mut part);
            let arch = classify_coarse(&part, 10);
            if matches!(arch, Archetype::B | Archetype::C | Archetype::D) {
                report(format!("{arch:?} (DFA, ratio {ratio})"), &part);
            }
        }
    }

    println!("\n{checked} instances reduced to Archetype A without VoC increase.");
}
