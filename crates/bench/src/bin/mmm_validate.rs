//! **E8 — kij executor validation (Section X-B substrate).**
//!
//! Runs the partition-driven threaded kij executor on every feasible
//! candidate shape (plus a random scatter) and verifies:
//!
//! 1. numerical correctness against the serial kij reference,
//! 2. that the traffic the workers actually exchanged equals the analytic
//!    pairwise volumes (i.e. the cost models charge for exactly the bytes
//!    the execution moves).
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin mmm_validate -- [--n 96] [--p 5] [--r 2] [--s 1]
//! ```

use hetmmm::mmm::{kij_serial, multiply_partitioned, Matrix};
use hetmmm::partition::pairwise_volumes;
use hetmmm::prelude::*;
use hetmmm::shapes::candidates::all_feasible;
use hetmmm_bench::{print_row, Args, BinSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("mmm_validate", &args);
    let n = args.get("n", 96usize);
    let ratio = Ratio::new(
        args.get("p", 5u32),
        args.get("r", 2u32),
        args.get("s", 1u32),
    );
    let seed = args.get("seed", 42u64);

    println!("E8 — threaded kij executor validation, N = {n}, ratio {ratio}\n");

    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    let reference = kij_serial(&a, &b);

    let widths = [24, 14, 14, 14, 8];
    print_row(
        &[
            "partition",
            "max |err|",
            "elems sent",
            "analytic VoC",
            "check",
        ]
        .map(String::from),
        &widths,
    );

    let mut cases: Vec<(String, Partition)> = all_feasible(n, ratio)
        .into_iter()
        .map(|c| (c.ty.paper_name().to_string(), c.partition))
        .collect();
    cases.push((
        "random scatter".to_string(),
        random_partition(n, ratio, &mut rng),
    ));

    for (name, part) in cases {
        let (c, stats) = multiply_partitioned(&a, &b, &part).expect("executor failed");
        let err = c.max_abs_diff(&reference);
        let analytic: u64 = pairwise_volumes(&part).iter().flatten().sum();
        let ok = err < 1e-9 && stats.total_sent() == analytic;
        assert!(
            ok,
            "{name}: err {err}, sent {} vs {analytic}",
            stats.total_sent()
        );
        print_row(
            &[
                name,
                format!("{err:.2e}"),
                stats.total_sent().to_string(),
                analytic.to_string(),
                "ok".to_string(),
            ],
            &widths,
        );
    }

    println!("\nall partitions multiplied correctly; executor traffic = analytic VoC.");
}
