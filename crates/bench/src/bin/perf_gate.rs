//! **Perf gate** — seeded workload suite with a committed baseline.
//!
//! Runs three fixed workloads (a fig5 census slice, a threaded executor
//! multiply, the serial kij kernel), records median-of-k wall times plus
//! seeded-deterministic counters into `BENCH_current.json`, and compares
//! against the committed `BENCH_baseline.json`:
//!
//! - wall times gate on a *ratio* (`--threshold`, default 1.8) — generous
//!   because CI machines are noisy and heterogeneous;
//! - counters (push totals, executor update/element counts) are pure
//!   functions of the seed and gate on **exact equality**, catching quiet
//!   behavioral drift even when it is fast.
//!
//! Plus the `obs_overhead` pair: the same seeded DFA batch measured with
//! sinks delivering (a counting `NullSink`, fine spans on) and with sinks
//! suspended, gating the instrumentation's own cost to a within-run
//! on/off ratio (`--overhead-threshold`, default 2.5) — "measure the
//! observer".
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin perf_gate -- \
//!     [--baseline BENCH_baseline.json] [--current BENCH_current.json] \
//!     [--k 5] [--threshold 1.8] [--overhead-threshold 2.5] \
//!     [--write-baseline] [--quick] [--slowdown-nanos 0]
//! ```
//!
//! `--write-baseline` records the suite as the new baseline (see DESIGN.md
//! §9 for the update procedure). `--quick` shrinks every workload for the
//! CLI self-test; `--slowdown-nanos` injects a synthetic sleep into each
//! timed repetition so tests can demonstrate the gate failing.
//!
//! Every gate run (not `--write-baseline`) also appends one flattened
//! [`TrendEntry`] to the bench-history store (`results/bench_history.jsonl`
//! by default, `--history <path>` / `--no-history` to override), which the
//! `bench_trend` binary analyzes for slow drift the single-baseline ratio
//! gate cannot see.
//!
//! Deliberately does **not** open a `BinSession`: the gate measures the
//! uninstrumented fast path (no sinks installed → spans are inert), and
//! must not append to `results/manifests.jsonl`.

use hetmmm::mmm::{kij_serial, multiply_partitioned, Matrix};
use hetmmm::prelude::*;
use hetmmm::{census, CensusConfig};
use hetmmm_bench::{results_dir, Args};
use hetmmm_obs as obs;
use hetmmm_report::{
    append_history_capped, compare, history_cap, median, BenchEntry, BenchSuite, TrendEntry,
    BENCH_VERSION,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

struct Workload {
    name: &'static str,
    /// Counter-name prefixes that are deterministic for this workload.
    counter_prefixes: &'static [&'static str],
    run: Box<dyn Fn()>,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let (census_n, census_runs) = if quick { (16, 4) } else { (48, 60) };
    let exec_n = if quick { 16 } else { 64 };
    let kernel_n = if quick { 24 } else { 256 };
    let (probe_n, probe_parts, probe_reps) = if quick { (16, 2, 3) } else { (96, 4, 80) };
    let (cache_n, cache_runs) = if quick { (16, 2u64) } else { (40, 12u64) };
    vec![
        Workload {
            name: "fig5_census_slice",
            counter_prefixes: &["dfa.push."],
            run: Box::new(move || {
                let report = census(
                    &CensusConfig::new(census_n, Ratio::new(2, 1, 1))
                        .with_runs(census_runs)
                        .with_seed0(1),
                );
                assert_eq!(report.unconverged, 0, "census must converge");
            }),
        },
        Workload {
            name: "exec_threaded_multiply",
            counter_prefixes: &["exec.updates.", "exec.elems_sent.", "exec.recoveries"],
            run: Box::new(move || {
                let mut rng = StdRng::seed_from_u64(7);
                let part = random_partition(exec_n, Ratio::new(2, 1, 1), &mut rng);
                let a = Matrix::random(exec_n, &mut rng);
                let b = Matrix::random(exec_n, &mut rng);
                let (_, stats) = multiply_partitioned(&a, &b, &part).expect("multiply");
                assert_eq!(stats.recovery.faults_detected, 0);
            }),
        },
        Workload {
            name: "push_probe_fixed_point",
            counter_prefixes: &["push.probe"],
            run: Box::new(move || {
                // Probe-heavy fixed-point checking: condense a handful of
                // seeded random partitions, then hammer the 12-pair
                // end-condition probe (`is_condensed`) on each fixed point.
                // This is the hot shape of census post-processing — every
                // probe answers "would any push apply?" without mutating.
                //
                // `push.probe.cache_hits` is 0 here *by design*: this
                // workload gates the cold probe path (`is_condensed` calls
                // `push_feasible` directly, no `ProbeCache` in front), so
                // every evaluation pays full kernel cost. The warm cached
                // path is gated separately by `dfa_probe_cache` below.
                let mut checks = 0usize;
                for s in 0..probe_parts {
                    let mut rng = StdRng::seed_from_u64(900 + s);
                    let mut part = random_partition(probe_n, Ratio::new(3, 2, 1), &mut rng);
                    beautify(&mut part);
                    for _ in 0..probe_reps {
                        assert!(is_condensed(&part), "beautify must condense");
                        checks += 1;
                    }
                }
                assert!(checks > 0);
            }),
        },
        Workload {
            name: "dfa_probe_cache",
            counter_prefixes: &["push.probe"],
            run: Box::new(move || {
                // Warm probe path: seeded DFA runs answer repeat
                // (proc, dir) rejections from the hash-verified
                // `ProbeCache`, so this workload pins down both counters —
                // `push.probe.evals` (misses that paid the kernel) and
                // `push.probe.cache_hits` (verdicts served from a slot).
                // A cache regression shows up as hits collapsing to 0
                // (exact-equality gate) before it shows up as wall time.
                let runner = DfaRunner::new(DfaConfig::new(cache_n, Ratio::new(2, 1, 1)));
                for seed in 0..cache_runs {
                    let outcome = runner.run_seed(500 + seed);
                    assert!(outcome.steps > 0 || outcome.converged);
                }
            }),
        },
        Workload {
            name: "mmm_kernel_serial",
            counter_prefixes: &[],
            run: Box::new(move || {
                let mut rng = StdRng::seed_from_u64(11);
                let a = Matrix::random(kernel_n, &mut rng);
                let b = Matrix::random(kernel_n, &mut rng);
                let c = kij_serial(&a, &b);
                assert!(c.get(0, 0).is_finite());
            }),
        },
    ]
}

/// The `obs_overhead` workload: the same seeded DFA batch measured twice —
/// sinks delivering (a counting [`obs::NullSink`] plus fine spans) vs
/// sinks suspended ([`obs::suspend_sinks`], the uninstrumented fast path)
/// — so the gate "measures the observer" itself. Returns the two suite
/// entries (`obs_overhead_on`, `obs_overhead_off`) plus the on/off median
/// ratio gated by `--overhead-threshold`.
///
/// The `events_per_pass` counter on the instrumented arm is a pure
/// function of the seed (every event the facade emits reaches the
/// `NullSink`), so the baseline's exact-equality gate catches changes in
/// instrumentation *volume* even when wall time hides them.
fn measure_overhead(k: u64, quick: bool, slowdown_nanos: u64) -> (BenchEntry, BenchEntry, f64) {
    let (n, runs) = if quick { (16, 2u64) } else { (40, 8u64) };
    let body = move || {
        let runner = DfaRunner::new(DfaConfig::new(n, Ratio::new(2, 1, 1)));
        for seed in 0..runs {
            let outcome = runner.run_seed(300 + seed);
            assert!(outcome.steps > 0 || outcome.converged);
        }
    };
    let timed = |k: u64| -> Vec<u64> {
        let mut wall_nanos = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let start = Instant::now();
            body();
            if slowdown_nanos > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(slowdown_nanos));
            }
            wall_nanos.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        wall_nanos
    };

    // Instrumented arm: a counting sink receives every event, fine spans
    // included — the full enabled path minus backend I/O.
    let sink = obs::NullSink::new();
    let id = obs::install_sink(sink.clone());
    obs::set_fine_spans(true);
    let before = sink.seen();
    body();
    let events_per_pass = sink.seen() - before;
    let on_wall = timed(k);
    obs::set_fine_spans(false);

    // Uninstrumented arm: suspend delivery without uninstalling — the
    // facade's `enabled()` gate must read false and spans go inert.
    let was_active = obs::suspend_sinks();
    assert!(was_active, "overhead arm installed a sink");
    assert!(!obs::enabled(), "suspend must close the emit gate");
    let off_wall = timed(k);
    obs::resume_sinks();
    obs::uninstall_sink(id);

    let on = BenchEntry {
        name: "obs_overhead_on".to_string(),
        median_wall_nanos: median(&on_wall),
        wall_nanos: on_wall,
        counters: vec![("events_per_pass".to_string(), events_per_pass)],
    };
    let off = BenchEntry {
        name: "obs_overhead_off".to_string(),
        median_wall_nanos: median(&off_wall),
        wall_nanos: off_wall,
        counters: vec![],
    };
    let ratio = if off.median_wall_nanos > 0 {
        on.median_wall_nanos as f64 / off.median_wall_nanos as f64
    } else {
        1.0
    };
    (on, off, ratio)
}

fn measure(workload: &Workload, k: u64, slowdown_nanos: u64) -> BenchEntry {
    // Counter pass (untimed): metrics on, capture the deterministic
    // subset. Histograms and timing-dependent metrics (recv waits) are
    // excluded by the prefix filter.
    obs::metrics().set_enabled(true);
    obs::metrics().reset();
    (workload.run)();
    let snapshot = obs::metrics().snapshot();
    obs::metrics().set_enabled(false);
    let counters: Vec<(String, u64)> = snapshot
        .counters
        .into_iter()
        .filter(|(name, _)| {
            workload
                .counter_prefixes
                .iter()
                .any(|prefix| name.starts_with(prefix))
        })
        .collect();

    // Timed passes: metrics off, spans inert (no sinks) — the gate
    // measures the uninstrumented fast path.
    let mut wall_nanos = Vec::with_capacity(k as usize);
    for _ in 0..k {
        let start = Instant::now();
        (workload.run)();
        if slowdown_nanos > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(slowdown_nanos));
        }
        wall_nanos.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    BenchEntry {
        name: workload.name.to_string(),
        median_wall_nanos: median(&wall_nanos),
        wall_nanos,
        counters,
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let baseline_path = args.get_str("baseline").unwrap_or("BENCH_baseline.json");
    let current_path = args.get_str("current").unwrap_or("BENCH_current.json");
    let k = args.get("k", 5u64).max(1);
    let threshold = args.get("threshold", 1.8f64);
    let write_baseline = args.get_str("write-baseline").is_some();
    let quick = args.get_str("quick").is_some();
    let slowdown_nanos = args.get("slowdown-nanos", 0u64);
    let overhead_threshold = args.get("overhead-threshold", 2.5f64);

    let mut entries: Vec<BenchEntry> = workloads(quick)
        .iter()
        .map(|w| {
            let entry = measure(w, k, slowdown_nanos);
            println!(
                "{:<24} median {:>12} ns  ({} counters)",
                entry.name,
                entry.median_wall_nanos,
                entry.counters.len()
            );
            entry
        })
        .collect();

    // The observer-of-the-observer workload: instrumented vs suspended,
    // gated on its own ratio within this run (machine-relative, so it is
    // robust where a cross-machine wall baseline would not be).
    let (on, off, overhead_ratio) = measure_overhead(k, quick, slowdown_nanos);
    println!(
        "{:<24} median {:>12} ns  ({} counters)",
        on.name,
        on.median_wall_nanos,
        on.counters.len()
    );
    println!(
        "{:<24} median {:>12} ns  ({} counters)",
        off.name,
        off.median_wall_nanos,
        off.counters.len()
    );
    println!(
        "obs overhead: {overhead_ratio:.3}x instrumented/suspended \
         (limit {overhead_threshold:.2}x)"
    );
    let overhead_ok = overhead_ratio <= overhead_threshold;
    entries.push(on);
    entries.push(off);

    let suite = BenchSuite {
        v: BENCH_VERSION,
        git_rev: obs::git_rev(),
        k,
        entries,
    };

    let json = serde_json::to_string(&suite).expect("serialize suite");
    if write_baseline {
        if let Err(err) = std::fs::write(baseline_path, &json) {
            eprintln!("perf_gate: cannot write {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("baseline -> {baseline_path}");
        return ExitCode::SUCCESS;
    }
    if let Err(err) = std::fs::write(current_path, &json) {
        eprintln!("perf_gate: cannot write {current_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("current -> {current_path}");

    // Append this run to the bench-history trend store (best-effort: a
    // read-only checkout must not fail the gate).
    if args.get_str("no-history").is_none() {
        let history_path = args
            .get_str("history")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| results_dir().join("bench_history.jsonl"));
        // hetmmm-lint: allow(L002) the trend store records real wall-clock epoch, not modeled time
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let entry = TrendEntry::from_suite(&suite, unix_secs);
        match append_history_capped(&history_path, &entry, history_cap()) {
            Ok(()) => println!("history -> {}", history_path.display()),
            Err(err) => {
                eprintln!(
                    "perf_gate: cannot append {}: {err} (continuing)",
                    history_path.display()
                );
            }
        }
    }

    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            println!(
                "perf_gate: no baseline at {baseline_path} — nothing to gate against \
                 (run with --write-baseline to record one)"
            );
            // The overhead gate is within-run: it needs no baseline and
            // still applies.
            if !overhead_ok {
                eprintln!(
                    "perf gate FAIL: instrumentation overhead {overhead_ratio:.3}x exceeds \
                     {overhead_threshold:.2}x (sinks enabled vs suspended)"
                );
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        Err(err) => {
            eprintln!("perf_gate: cannot read {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: BenchSuite = match serde_json::from_str(&baseline_text) {
        Ok(suite) => suite,
        Err(err) => {
            eprintln!("perf_gate: {baseline_path}: unparseable baseline: {err}");
            return ExitCode::FAILURE;
        }
    };

    let issues = compare(&baseline, &suite, threshold);
    if !overhead_ok {
        eprintln!(
            "perf gate FAIL: instrumentation overhead {overhead_ratio:.3}x exceeds \
             {overhead_threshold:.2}x (sinks enabled vs suspended)"
        );
    }
    if issues.is_empty() && overhead_ok {
        println!(
            "perf gate PASS against {baseline_path} (rev {}, threshold {threshold:.2}x, \
             overhead {overhead_ratio:.3}x <= {overhead_threshold:.2}x)",
            baseline.git_rev
        );
        ExitCode::SUCCESS
    } else {
        if !issues.is_empty() {
            eprintln!("perf gate FAIL against {baseline_path}:");
            for issue in &issues {
                eprintln!("  {issue}");
            }
        }
        ExitCode::FAILURE
    }
}
