//! **E3 — Fig. 13: SCB cost surfaces, Square-Corner vs Block-Rectangle.**
//!
//! Evaluates the two normalized closed-form cost functions over the
//! paper's axes (`R_r ∈ [1, 10]`, `P_r ∈ [1, 20]`, `S_r = 1`), marks the
//! Theorem 9.1 feasibility wall `P_r ≥ 2√R_r`, and prints the crossover
//! front. Full surface goes to `results/fig13_surface.csv`.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin fig13_cost_surface
//! ```

use hetmmm::cost::closed::ShapeCost;
use hetmmm::cost::scb_comm_norm;
use hetmmm::prelude::*;
use hetmmm_bench::{results_dir, Args, BinSession};
use std::fmt::Write as _;

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("fig13_cost_surface", &args);
    println!("E3 / Fig. 13 — normalized SCB communication cost surfaces");
    println!("(cells: SC = Square-Corner wins, br = Block-Rectangle wins, ·· = SC infeasible)\n");

    let mut csv = String::from("p_r,r_r,sc_feasible,sc_cost,br_cost,winner\n");

    // Header row of R_r values.
    print!("P_r \\ R_r |");
    for r in 1..=10u32 {
        print!(" {r:>3}");
    }
    println!();
    println!("{}", "-".repeat(11 + 4 * 10));

    let mut crossovers = Vec::new();
    for p in (1..=20u32).rev() {
        print!("{p:>9} |");
        for r in 1..=10u32 {
            // The naming convention requires P_r >= R_r >= S_r; cells where
            // R_r > P_r are relabelings of cells we already cover.
            if r > p {
                print!("   -");
                continue;
            }
            let ratio = Ratio::new(p, r, 1);
            let br = scb_comm_norm(ShapeCost::BlockRectangle, ratio).unwrap();
            match scb_comm_norm(ShapeCost::SquareCorner, ratio) {
                None => {
                    print!("  ··");
                    writeln!(csv, "{p},{r},false,,{br:.4},block-rectangle").unwrap();
                }
                Some(sc) => {
                    let winner = if sc < br { "SC" } else { "br" };
                    print!("  {winner}");
                    writeln!(
                        csv,
                        "{p},{r},true,{sc:.4},{br:.4},{}",
                        if sc < br {
                            "square-corner"
                        } else {
                            "block-rectangle"
                        }
                    )
                    .unwrap();
                }
            }
        }
        println!();
    }

    // Crossover front along R_r = S_r = 1 (the Fig. 14 axis).
    for p in 2..=20u32 {
        let ratio = Ratio::new(p, 1, 1);
        if let (Some(sc), Some(br)) = (
            scb_comm_norm(ShapeCost::SquareCorner, ratio),
            scb_comm_norm(ShapeCost::BlockRectangle, ratio),
        ) {
            if sc < br {
                crossovers.push(p);
            }
        }
    }
    let first = crossovers.first().copied();
    println!(
        "\nalong R_r = 1: Square-Corner first wins at P_r = {} \
         (paper: 'for highly heterogeneous ratios the Square-Corner has lower cost')",
        first.map_or("never".to_string(), |p| p.to_string())
    );

    let path = results_dir().join("fig13_surface.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("full surface written to {}", path.display());
}
