//! **E2 — Fig. 7: example DFA run snapshots.**
//!
//! Reproduces the paper's example: ratio 2:1:1, R pushed Down and Right,
//! S pushed Down and Left, snapshots rendered at 1/100th granularity at
//! (approximately) steps 1, 500, 1000, 1500 and the final step. The paper
//! used N = 1000 and converged around step 2100; snapshot steps scale with
//! `--n`.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin fig7_example_run -- [--n 1000] [--seed 1]
//! ```
//!
//! ASCII snapshots go to stdout; PGM images land in `results/`.

use hetmmm::partition::{render_ascii, render_pgm};
use hetmmm::prelude::*;
use hetmmm_bench::{results_dir, Args, BinSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("fig7_example_run", &args);
    let n = args.get("n", 300usize);
    let seed = args.get("seed", 1u64);
    let ratio = Ratio::new(2, 1, 1);

    // The paper's snapshots at N=1000 were at ~1/500/1000/1500/2100 steps;
    // step counts scale roughly linearly with N.
    let scale = n as f64 / 1000.0;
    let mut snapshot_steps: Vec<usize> = [1usize, 500, 1000, 1500]
        .iter()
        .map(|&s| ((s as f64 * scale).round() as usize).max(1))
        .collect();
    snapshot_steps.dedup();

    println!("E2 / Fig. 7 — example run: ratio {ratio}, N = {n}, seed {seed}");
    println!("R pushed ↓ →, S pushed ↓ ← (the paper's scripted directions)\n");

    let mut rng = StdRng::seed_from_u64(seed);
    let start = random_partition(n, ratio, &mut rng);
    let plan = PushPlan::scripted(
        &[Direction::Down, Direction::Right],
        &[Direction::Down, Direction::Left],
    );
    let config = DfaConfig::new(n, ratio).with_snapshots(snapshot_steps.clone());
    let runner = DfaRunner::new(config);
    let voc0 = start.voc();
    let out = runner.run_with(start, plan, &mut rng);

    let dir = results_dir();
    let mut shots: Vec<(usize, &Partition)> = out.snapshots.iter().map(|(s, p)| (*s, p)).collect();
    shots.push((out.steps, &out.partition));

    for (step, part) in shots {
        println!("--- step {step} (VoC {}) ---", part.voc());
        println!("{}", render_ascii(part, 10));
        let path = dir.join(format!("fig7_step_{step:05}.pgm"));
        std::fs::write(&path, render_pgm(part)).expect("write pgm");
    }

    println!(
        "run converged after {} pushes: VoC {} -> {} ({} residual pushes); \
         PGM images in {}",
        out.steps,
        voc0,
        out.voc_final,
        out.residual_pushes.len(),
        dir.display()
    );
}
