//! Schema validator for observability artifacts.
//!
//! Reads an event JSONL file (written by a `JsonlSink`) and checks that
//! every line parses as an `EventRecord` with the current schema version,
//! that span start/end events pair up, and that every `ExecSegment` is
//! well-formed (known kind, `end >= start`, peer present exactly when the
//! kind is peer-directed). Optionally validates a manifest JSONL
//! (`results/manifests.jsonl`) the same way. CI runs this after a small
//! `fig5_archetype_census` run to guard the wire format.
//!
//! Usage:
//!   obs_verify --file results/fig5_events.jsonl [--manifest results/manifests.jsonl]

use hetmmm_bench::Args;
use hetmmm_obs::{EventKind, EventRecord, RunManifest, MANIFEST_VERSION, SCHEMA_VERSION};
use std::collections::HashMap;
use std::process::ExitCode;

/// Timeline vocabulary an `ExecSegment.kind` may use (schema v4).
const SEGMENT_KINDS: [&str; 5] = ["compute", "send", "recv-wait", "checkpoint", "blocked"];
/// The subset of [`SEGMENT_KINDS`] that must carry a non-empty `peer`.
const PEER_KINDS: [&str; 3] = ["send", "recv-wait", "blocked"];

fn verify_events(path: &str) -> Result<(usize, usize, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut open_spans: HashMap<u64, String> = HashMap::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut segments = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let record: EventRecord = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: unparseable record: {e}", lineno + 1))?;
        if record.v != SCHEMA_VERSION {
            return Err(format!(
                "{path}:{}: schema version {} != expected {SCHEMA_VERSION}",
                lineno + 1,
                record.v
            ));
        }
        match &record.event {
            EventKind::SpanStart { span, name, .. } => {
                if open_spans.insert(*span, name.clone()).is_some() {
                    return Err(format!(
                        "{path}:{}: span id {span} opened twice",
                        lineno + 1
                    ));
                }
                spans += 1;
            }
            EventKind::SpanEnd { span, name, .. } => match open_spans.remove(span) {
                Some(open_name) if &open_name == name => {}
                Some(open_name) => {
                    return Err(format!(
                        "{path}:{}: span id {span} opened as {open_name:?} but closed as {name:?}",
                        lineno + 1
                    ));
                }
                None => {
                    return Err(format!(
                        "{path}:{}: span id {span} closed but never opened",
                        lineno + 1
                    ));
                }
            },
            EventKind::ExecSegment {
                worker,
                kind,
                peer,
                start_nanos,
                end_nanos,
                ..
            } => {
                if worker.is_empty() {
                    return Err(format!("{path}:{}: segment with empty worker", lineno + 1));
                }
                if !SEGMENT_KINDS.contains(&kind.as_str()) {
                    return Err(format!(
                        "{path}:{}: unknown segment kind {kind:?}",
                        lineno + 1
                    ));
                }
                if end_nanos < start_nanos {
                    return Err(format!(
                        "{path}:{}: segment ends before it starts ({end_nanos} < {start_nanos})",
                        lineno + 1
                    ));
                }
                if PEER_KINDS.contains(&kind.as_str()) == peer.is_empty() {
                    return Err(format!(
                        "{path}:{}: segment kind {kind:?} with peer {peer:?}",
                        lineno + 1
                    ));
                }
                segments += 1;
            }
            _ => {}
        }
        events += 1;
    }
    if !open_spans.is_empty() {
        let mut names: Vec<&String> = open_spans.values().collect();
        names.sort();
        return Err(format!(
            "{path}: {} unclosed span(s): {names:?}",
            open_spans.len()
        ));
    }
    if events == 0 {
        return Err(format!(
            "{path}: no events — instrumentation produced nothing"
        ));
    }
    Ok((events, spans, segments))
}

fn verify_manifests(path: &str) -> Result<usize, String> {
    // A missing or empty manifest file is a fresh checkout, not a schema
    // violation: report zero records and let main exit 0.
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let manifest: RunManifest = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: unparseable manifest: {e}", lineno + 1))?;
        if manifest.v != MANIFEST_VERSION {
            return Err(format!(
                "{path}:{}: manifest version {} != expected {MANIFEST_VERSION}",
                lineno + 1,
                manifest.v
            ));
        }
        if manifest.bin.is_empty() {
            return Err(format!("{path}:{}: empty binary name", lineno + 1));
        }
        count += 1;
    }
    Ok(count)
}

fn main() -> ExitCode {
    let args = Args::parse();
    let Some(file) = args.get_str("file") else {
        eprintln!("usage: obs_verify --file <events.jsonl> [--manifest <manifests.jsonl>]");
        return ExitCode::FAILURE;
    };
    match verify_events(file) {
        Ok((events, spans, segments)) => {
            println!(
                "{file}: OK — {events} events, {spans} balanced span(s), \
                 {segments} well-formed segment(s), schema v{SCHEMA_VERSION}"
            );
        }
        Err(err) => {
            eprintln!("obs_verify: {err}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(manifest) = args.get_str("manifest") {
        match verify_manifests(manifest) {
            Ok(0) => {
                println!("{manifest}: no manifests found (fresh checkout?) — nothing to verify");
            }
            Ok(count) => {
                println!("{manifest}: OK — {count} manifest record(s), v{MANIFEST_VERSION}");
            }
            Err(err) => {
                eprintln!("obs_verify: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
