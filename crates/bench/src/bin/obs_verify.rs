//! Schema and protocol validator for observability artifacts.
//!
//! Reads an event JSONL file (written by a `JsonlSink`) and checks that
//! every line parses as an `EventRecord` with the current schema version,
//! that span start/end events pair up, and that every `ExecSegment` is
//! well-formed (known kind, `end >= start`, peer present exactly when the
//! kind is peer-directed). Unparseable or foreign-schema lines are
//! *skipped and counted* rather than aborting the scan, so one corrupt
//! line still yields a full report — but any skip fails the gate, and a
//! file where **nothing** parsed exits with the distinct code 3 (wrong
//! file, or a stream from a different schema epoch) so CI can tell
//! "corrupt artifact" from "pointed at the wrong artifact".
//!
//! With `--hb`, additionally replays the stream through the
//! happens-before protocol checker (`hetmmm_lint::hb`): vector clocks per
//! worker, send/recv matching per attempt window, checkpoint
//! monotonicity, and blame-after-retry-budget discipline (rules
//! H001–H004). Optionally validates a manifest JSONL
//! (`results/manifests.jsonl`) the same way. CI runs this after a small
//! `fig5_archetype_census` run and after the chaos harness to guard both
//! the wire format and the recovery protocol.
//!
//! Usage:
//!   obs_verify --file results/fig5_events.jsonl [--manifest results/manifests.jsonl]
//!   obs_verify --hb results/chaos_events.jsonl
//!
//! Exit codes: 0 clean, 1 violation (schema, structure, or happens-before),
//! 3 file had lines but none parsed.

use hetmmm_bench::Args;
use hetmmm_lint::hb;
use hetmmm_obs::{EventKind, EventRecord, RunManifest, MANIFEST_VERSION, SCHEMA_VERSION};
use std::collections::HashMap;
use std::process::ExitCode;

/// Exit code for "the file has lines, but not one parsed as a current-
/// schema event record": the caller almost certainly pointed at the wrong
/// artifact (e.g. a chaos *schedule* log instead of an event stream) or at
/// a stream from an old schema epoch.
const EXIT_NOTHING_PARSED: u8 = 3;

/// Timeline vocabulary an `ExecSegment.kind` may use (schema v4).
const SEGMENT_KINDS: [&str; 5] = ["compute", "send", "recv-wait", "checkpoint", "blocked"];
/// The subset of [`SEGMENT_KINDS`] that must carry a non-empty `peer`.
const PEER_KINDS: [&str; 3] = ["send", "recv-wait", "blocked"];

/// What a lenient event scan produced.
struct EventsReport {
    /// Records that parsed with the current schema version.
    events: usize,
    /// Balanced span pairs seen.
    spans: usize,
    /// Well-formed `ExecSegment`s seen.
    segments: usize,
    /// Lines that did not parse (bad JSON, blank, or foreign schema).
    skipped: usize,
    /// 1-based line and reason of the first skip, for the error message.
    first_skip: Option<(usize, String)>,
}

fn verify_events(path: &str) -> Result<EventsReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut open_spans: HashMap<u64, String> = HashMap::new();
    let mut report = EventsReport {
        events: 0,
        spans: 0,
        segments: 0,
        skipped: 0,
        first_skip: None,
    };
    let skip = |report: &mut EventsReport, lineno: usize, why: String| {
        report.skipped += 1;
        if report.first_skip.is_none() {
            report.first_skip = Some((lineno + 1, why));
        }
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            skip(&mut report, lineno, "blank line".to_string());
            continue;
        }
        let record: EventRecord = match serde_json::from_str(line) {
            Ok(record) => record,
            Err(e) => {
                skip(&mut report, lineno, format!("unparseable record: {e}"));
                continue;
            }
        };
        if record.v != SCHEMA_VERSION {
            skip(
                &mut report,
                lineno,
                format!("schema version {} != expected {SCHEMA_VERSION}", record.v),
            );
            continue;
        }
        match &record.event {
            EventKind::SpanStart { span, name, .. } => {
                if open_spans.insert(*span, name.clone()).is_some() {
                    return Err(format!(
                        "{path}:{}: span id {span} opened twice",
                        lineno + 1
                    ));
                }
                report.spans += 1;
            }
            EventKind::SpanEnd { span, name, .. } => match open_spans.remove(span) {
                Some(open_name) if &open_name == name => {}
                Some(open_name) => {
                    return Err(format!(
                        "{path}:{}: span id {span} opened as {open_name:?} but closed as {name:?}",
                        lineno + 1
                    ));
                }
                None => {
                    return Err(format!(
                        "{path}:{}: span id {span} closed but never opened",
                        lineno + 1
                    ));
                }
            },
            EventKind::ExecSegment {
                worker,
                kind,
                peer,
                start_nanos,
                end_nanos,
                ..
            } => {
                if worker.is_empty() {
                    return Err(format!("{path}:{}: segment with empty worker", lineno + 1));
                }
                if !SEGMENT_KINDS.contains(&kind.as_str()) {
                    return Err(format!(
                        "{path}:{}: unknown segment kind {kind:?}",
                        lineno + 1
                    ));
                }
                if end_nanos < start_nanos {
                    return Err(format!(
                        "{path}:{}: segment ends before it starts ({end_nanos} < {start_nanos})",
                        lineno + 1
                    ));
                }
                if PEER_KINDS.contains(&kind.as_str()) == peer.is_empty() {
                    return Err(format!(
                        "{path}:{}: segment kind {kind:?} with peer {peer:?}",
                        lineno + 1
                    ));
                }
                report.segments += 1;
            }
            // hetmmm-lint: ack-events(Message, DfaRunStart, DfaPush, DfaPushRejected, DfaRunEnd) free-form and DFA events have no cross-record structure to validate here
            // hetmmm-lint: ack-events(ExecSend, ExecRecv, ExecPeerLost, ExecRetry, ExecResume, ExecCheckpoint, ExecDegraded, ExecBlame, ExecRepartition) executor protocol ordering is checked by the --hb pass, not the per-record scan
            // hetmmm-lint: ack-events(SimRun, SimPhase, NprocRunEnd) simulator and k-proc summaries are self-contained records
            _ => {}
        }
        report.events += 1;
    }
    if !open_spans.is_empty() {
        let mut names: Vec<&String> = open_spans.values().collect();
        names.sort();
        return Err(format!(
            "{path}: {} unclosed span(s): {names:?}",
            open_spans.len()
        ));
    }
    Ok(report)
}

fn verify_manifests(path: &str) -> Result<usize, String> {
    // A missing or empty manifest file is a fresh checkout, not a schema
    // violation: report zero records and let main exit 0.
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let manifest: RunManifest = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: unparseable manifest: {e}", lineno + 1))?;
        if manifest.v != MANIFEST_VERSION {
            return Err(format!(
                "{path}:{}: manifest version {} != expected {MANIFEST_VERSION}",
                lineno + 1,
                manifest.v
            ));
        }
        if manifest.bin.is_empty() {
            return Err(format!("{path}:{}: empty binary name", lineno + 1));
        }
        count += 1;
    }
    Ok(count)
}

/// Run the happens-before checker over `path`, printing every violation
/// as `path:line: RULE message`. `Err` carries the exit code.
fn verify_hb(path: &str) -> Result<(), ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs_verify: {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let report = hb::check_stream(path, &text);
    if report.events == 0 && report.skipped_lines > 0 {
        eprintln!(
            "obs_verify: {path}: {} line(s), none parsed as schema-v{SCHEMA_VERSION} \
             event records — wrong file, or a stream from another schema epoch",
            report.skipped_lines
        );
        return Err(ExitCode::from(EXIT_NOTHING_PARSED));
    }
    for f in &report.findings {
        println!("{}:{}: {} {}", f.path, f.line, f.rule, f.message);
    }
    if report.ok() {
        println!("{path}: HB OK — {}", report.summary());
        Ok(())
    } else {
        eprintln!("obs_verify: {path}: happens-before: {}", report.summary());
        Err(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let file = args.get_str("file");
    let hb_file = args.get_str("hb");
    if file.is_none() && hb_file.is_none() {
        eprintln!(
            "usage: obs_verify --file <events.jsonl> [--manifest <manifests.jsonl>] \
             [--hb <events.jsonl>]"
        );
        return ExitCode::FAILURE;
    }
    if let Some(file) = file {
        match verify_events(file) {
            Ok(report) if report.events == 0 && report.skipped > 0 => {
                let (line, why) = report.first_skip.unwrap_or((1, "empty".to_string()));
                eprintln!(
                    "obs_verify: {file}: {} line(s), none parsed as schema-v{SCHEMA_VERSION} \
                     event records (first skip at line {line}: {why}) — wrong file, or a \
                     stream from another schema epoch",
                    report.skipped
                );
                return ExitCode::from(EXIT_NOTHING_PARSED);
            }
            Ok(report) if report.events == 0 => {
                eprintln!("obs_verify: {file}: no events — instrumentation produced nothing");
                return ExitCode::FAILURE;
            }
            Ok(report) if report.skipped > 0 => {
                let (line, why) = report.first_skip.unwrap_or((1, "unknown".to_string()));
                eprintln!(
                    "obs_verify: {file}: {} of {} line(s) skipped (first at line {line}: {why})",
                    report.skipped,
                    report.events + report.skipped
                );
                return ExitCode::FAILURE;
            }
            Ok(report) => {
                println!(
                    "{file}: OK — {} events, {} balanced span(s), \
                     {} well-formed segment(s), schema v{SCHEMA_VERSION}",
                    report.events, report.spans, report.segments
                );
            }
            Err(err) => {
                eprintln!("obs_verify: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(manifest) = args.get_str("manifest") {
        match verify_manifests(manifest) {
            Ok(0) => {
                println!("{manifest}: no manifests found (fresh checkout?) — nothing to verify");
            }
            Ok(count) => {
                println!("{manifest}: OK — {count} manifest record(s), v{MANIFEST_VERSION}");
            }
            Err(err) => {
                eprintln!("obs_verify: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(hb_file) = hb_file {
        if let Err(code) = verify_hb(hb_file) {
            return code;
        }
    }
    ExitCode::SUCCESS
}
