//! **E11 (ablations) — the modeling factors Section XI lists as future
//! influences: network latency, communication/computation balance, block
//! granularity, topology.**
//!
//! Three sweeps:
//! 1. PIO block size (the paper's "k rows and columns at a time"): how
//!    latency amortization trades against lost overlap;
//! 2. per-message latency α: where the recommended shape flips;
//! 3. communication weight (β relative to compute): when shape stops
//!    mattering.
//!
//! ```text
//! cargo run --release -p hetmmm-bench --bin ablation_sweeps -- [--n 120]
//! ```

use hetmmm::cost::evaluate_pio_blocked;
use hetmmm::prelude::*;
use hetmmm_bench::{print_row, Args, BinSession};

fn main() {
    let args = Args::parse();
    let _session = BinSession::start("ablation_sweeps", &args);
    let n = args.get("n", 120usize);
    let base_speed = 1e9;

    // --- 1. PIO block-size sweep -----------------------------------
    println!("== ablation 1: PIO block size (ratio 5:2:1, latency 10 µs/message) ==");
    let ratio = Ratio::new(5, 2, 1);
    let mut platform = Platform::new(ratio, base_speed, 8.0 / base_speed);
    platform.network = platform.network.with_latency(1e-5);
    let part = CandidateType::BlockRectangle
        .construct(n, ratio)
        .unwrap()
        .partition;
    let widths = [8, 14, 14, 14];
    print_row(
        &["block", "comm (s)", "comp (s)", "total (s)"].map(String::from),
        &widths,
    );
    let mut best = (1usize, f64::MAX);
    for block in [1usize, 2, 4, 8, 16, 32, n] {
        let t = evaluate_pio_blocked(&part, &platform, block);
        if t.total < best.1 {
            best = (block, t.total);
        }
        print_row(
            &[
                block.to_string(),
                format!("{:.6}", t.comm),
                format!("{:.6}", t.comp),
                format!("{:.6}", t.total),
            ],
            &widths,
        );
    }
    println!(
        "best block size: {} (latency amortization vs interleaving loss)\n",
        best.0
    );

    // --- 2. latency sweep: does the recommended shape flip? ---------
    println!("== ablation 2: per-message latency vs recommended shape (SCB, ratio 12:1:1) ==");
    let ratio = Ratio::new(12, 1, 1);
    let widths = [12, 24, 14];
    print_row(
        &["alpha (s)", "recommended", "predicted (s)"].map(String::from),
        &widths,
    );
    for alpha in [0.0, 1e-6, 1e-4, 1e-2] {
        let mut plat = Platform::new(ratio, base_speed, 8.0 / base_speed);
        plat.network = plat.network.with_latency(alpha);
        let rec = hetmmm::recommend(n, ratio, &plat, Algorithm::Scb);
        print_row(
            &[
                format!("{alpha:.0e}"),
                rec.candidate.ty.paper_name().to_string(),
                format!("{:.6}", rec.predicted_total),
            ],
            &widths,
        );
    }
    println!(
        "(Square-Corner minimizes volume but needs only P↔R and P↔S links, \
         so it also minimizes message count — latency does not flip it.)\n"
    );

    // --- 3. communication-weight sweep ------------------------------
    println!("== ablation 3: comm/comp weight vs best-vs-worst spread (SCB, ratio 12:1:1) ==");
    let widths = [12, 24, 12];
    print_row(
        &["weight", "recommended", "spread (%)"].map(String::from),
        &widths,
    );
    for weight in [0.01f64, 0.1, 1.0, 10.0, 100.0] {
        let plat = Platform::new(ratio, base_speed, weight / base_speed);
        let rec = hetmmm::recommend(n, ratio, &plat, Algorithm::Scb);
        let worst = rec.ranking.last().unwrap().1;
        print_row(
            &[
                format!("{weight}"),
                rec.candidate.ty.paper_name().to_string(),
                format!("{:.1}", (worst - rec.predicted_total) / worst * 100.0),
            ],
            &widths,
        );
    }
    println!(
        "(shape choice is a communication optimization: its payoff scales \
         directly with the comm/comp weight.)"
    );
}
