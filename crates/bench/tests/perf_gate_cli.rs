//! End-to-end CLI tests for the `perf_gate` binary: baseline recording,
//! a passing gate, and a demonstrable failure under synthetic slowdown.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetmmm_perf_gate_{}_{name}", std::process::id()))
}

fn gate(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .args(args)
        .output()
        .expect("spawn perf_gate")
}

#[test]
fn gate_passes_against_fresh_baseline_and_fails_under_slowdown() {
    let baseline = tmp("baseline.json");
    let current = tmp("current.json");
    let baseline_s = baseline.to_str().unwrap();
    let current_s = current.to_str().unwrap();
    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);

    // Record a baseline.
    let out = gate(&[
        "--quick",
        "--k",
        "2",
        "--baseline",
        baseline_s,
        "--current",
        current_s,
        "--write-baseline",
    ]);
    assert!(
        out.status.success(),
        "write-baseline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(baseline.exists(), "baseline file written");

    // Same seeded workloads against that baseline: counters match exactly,
    // wall times are within threshold → exit 0 and BENCH_current written.
    let out = gate(&[
        "--quick",
        "--k",
        "2",
        "--baseline",
        baseline_s,
        "--current",
        current_s,
    ]);
    assert!(
        out.status.success(),
        "gate should pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(current.exists(), "BENCH_current written");
    let current_text = std::fs::read_to_string(&current).unwrap();
    let suite: hetmmm_report::BenchSuite = serde_json::from_str(&current_text).unwrap();
    assert_eq!(suite.v, hetmmm_report::BENCH_VERSION);
    assert_eq!(suite.entries.len(), 4);
    assert!(
        !suite
            .entry("fig5_census_slice")
            .unwrap()
            .counters
            .is_empty(),
        "census slice records deterministic push counters"
    );
    assert!(
        !suite
            .entry("push_probe_fixed_point")
            .unwrap()
            .counters
            .is_empty(),
        "probe workload records deterministic probe counters"
    );

    // Inject a 100ms synthetic slowdown per repetition: every workload
    // blows the 1.8x ratio → non-zero exit naming the regressions.
    let out = gate(&[
        "--quick",
        "--k",
        "2",
        "--baseline",
        baseline_s,
        "--current",
        current_s,
        "--slowdown-nanos",
        "100000000",
    ]);
    assert!(
        !out.status.success(),
        "gate must fail under synthetic slowdown"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wall regression"),
        "failure names the regression: {stderr}"
    );

    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);
}

#[test]
fn gate_without_baseline_exits_zero_with_note() {
    let baseline = tmp("missing_baseline.json");
    let current = tmp("nobase_current.json");
    let _ = std::fs::remove_file(&baseline);
    let out = gate(&[
        "--quick",
        "--k",
        "1",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        current.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "no baseline is not a failure");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no baseline"), "explains itself: {stdout}");
    let _ = std::fs::remove_file(&current);
}
