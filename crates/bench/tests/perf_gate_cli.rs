//! End-to-end CLI tests for the `perf_gate` binary: baseline recording,
//! a passing gate, and a demonstrable failure under synthetic slowdown.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetmmm_perf_gate_{}_{name}", std::process::id()))
}

fn gate(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perf_gate"))
        .args(args)
        .output()
        .expect("spawn perf_gate")
}

#[test]
fn gate_passes_against_fresh_baseline_and_fails_under_slowdown() {
    let baseline = tmp("baseline.json");
    let current = tmp("current.json");
    let baseline_s = baseline.to_str().unwrap();
    let current_s = current.to_str().unwrap();
    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);

    // Record a baseline.
    let out = gate(&[
        "--quick",
        "--no-history",
        "--k",
        "2",
        "--baseline",
        baseline_s,
        "--current",
        current_s,
        "--write-baseline",
    ]);
    assert!(
        out.status.success(),
        "write-baseline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(baseline.exists(), "baseline file written");

    // Same seeded workloads against that baseline: counters match exactly,
    // wall times are within threshold → exit 0 and BENCH_current written.
    let out = gate(&[
        "--quick",
        "--no-history",
        "--k",
        "2",
        "--baseline",
        baseline_s,
        "--current",
        current_s,
    ]);
    assert!(
        out.status.success(),
        "gate should pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(current.exists(), "BENCH_current written");
    let current_text = std::fs::read_to_string(&current).unwrap();
    let suite: hetmmm_report::BenchSuite = serde_json::from_str(&current_text).unwrap();
    assert_eq!(suite.v, hetmmm_report::BENCH_VERSION);
    assert_eq!(suite.entries.len(), 7, "5 workloads + obs_overhead on/off");
    let on = suite.entry("obs_overhead_on").unwrap();
    assert!(
        on.counters
            .iter()
            .any(|(c, v)| c == "events_per_pass" && *v > 0),
        "instrumented arm must count delivered events: {:?}",
        on.counters
    );
    assert!(
        suite.entry("obs_overhead_off").is_some(),
        "suspended arm recorded"
    );
    assert!(
        !suite
            .entry("fig5_census_slice")
            .unwrap()
            .counters
            .is_empty(),
        "census slice records deterministic push counters"
    );
    assert!(
        !suite
            .entry("push_probe_fixed_point")
            .unwrap()
            .counters
            .is_empty(),
        "probe workload records deterministic probe counters"
    );
    let cache = suite.entry("dfa_probe_cache").unwrap();
    let counter = |name: &str| {
        cache
            .counters
            .iter()
            .find(|(c, _)| c == name)
            .map(|(_, v)| *v)
    };
    assert!(
        counter("push.probe.cache_hits").unwrap_or(0) > 0,
        "warm DFA workload must exercise the probe cache: {:?}",
        cache.counters
    );
    assert!(
        counter("push.probe.evals").unwrap_or(0) > 0,
        "warm DFA workload still pays kernel evals on misses: {:?}",
        cache.counters
    );

    // Inject a 100ms synthetic slowdown per repetition: every workload
    // blows the 1.8x ratio → non-zero exit naming the regressions.
    let out = gate(&[
        "--quick",
        "--no-history",
        "--k",
        "2",
        "--baseline",
        baseline_s,
        "--current",
        current_s,
        "--slowdown-nanos",
        "100000000",
    ]);
    assert!(
        !out.status.success(),
        "gate must fail under synthetic slowdown"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wall regression"),
        "failure names the regression: {stderr}"
    );

    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);
}

#[test]
fn overhead_gate_fails_under_impossible_threshold() {
    let baseline = tmp("overhead_baseline.json");
    let current = tmp("overhead_current.json");
    let _ = std::fs::remove_file(&baseline);
    // Instrumented-vs-suspended is always >= some cost: a sub-1.0
    // threshold that no real instrumentation can meet must fail the gate
    // and say why, even with no wall baseline to compare against.
    let out = gate(&[
        "--quick",
        "--no-history",
        "--k",
        "1",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        current.to_str().unwrap(),
        "--overhead-threshold",
        "0.000001",
    ]);
    assert!(!out.status.success(), "impossible overhead threshold");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("instrumentation overhead"),
        "failure names the overhead gate: {stderr}"
    );
    let _ = std::fs::remove_file(&current);
}

#[test]
fn gate_without_baseline_exits_zero_with_note() {
    let baseline = tmp("missing_baseline.json");
    let current = tmp("nobase_current.json");
    let _ = std::fs::remove_file(&baseline);
    let out = gate(&[
        "--quick",
        "--no-history",
        "--k",
        "1",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        current.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "no baseline is not a failure");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no baseline"), "explains itself: {stdout}");
    let _ = std::fs::remove_file(&current);
}

#[test]
fn history_appends_and_bench_trend_analyzes() {
    let baseline = tmp("trend_baseline.json");
    let current = tmp("trend_current.json");
    let history = tmp("trend_history.jsonl");
    let history_s = history.to_str().unwrap();
    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);
    let _ = std::fs::remove_file(&history);

    let trend = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_bench_trend"))
            .args(args)
            .output()
            .expect("spawn bench_trend")
    };

    // No history file at all: graceful no-op.
    let out = trend(&["--history", history_s]);
    assert!(out.status.success(), "missing history is a pass");
    assert!(String::from_utf8_lossy(&out.stdout).contains("no history"));

    // One gate run appends one entry; a single entry is still a pass.
    let base = [
        "--quick",
        "--k",
        "1",
        "--baseline",
        baseline.to_str().unwrap(),
        "--current",
        current.to_str().unwrap(),
        "--history",
        history_s,
    ];
    let out = gate(&base);
    assert!(out.status.success(), "gate run failed");
    let text = std::fs::read_to_string(&history).expect("history appended");
    assert_eq!(text.lines().count(), 1, "one entry per gate run");
    let out = trend(&["--history", history_s]);
    assert!(out.status.success(), "insufficient history is a pass");
    assert!(String::from_utf8_lossy(&out.stdout).contains("insufficient history"));

    // A second run gives the analyzer a reference; same seeded workloads
    // on the same machine stay within any sane threshold.
    let out = gate(&base);
    assert!(out.status.success(), "second gate run failed");
    let text = std::fs::read_to_string(&history).unwrap();
    assert_eq!(text.lines().count(), 2, "history is append-only");
    let out = trend(&["--history", history_s, "--threshold", "1000"]);
    assert!(
        out.status.success(),
        "trend must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("== bench trend"),
        "renders report: {stdout}"
    );
    assert!(
        stdout.contains("dfa_probe_cache"),
        "covers workloads: {stdout}"
    );

    // An absurdly low threshold flags drift and exits nonzero.
    let out = trend(&["--history", history_s, "--threshold", "0.0000001"]);
    assert!(!out.status.success(), "tiny threshold must flag drift");
    assert!(String::from_utf8_lossy(&out.stderr).contains("DRIFT"));

    let _ = std::fs::remove_file(&baseline);
    let _ = std::fs::remove_file(&current);
    let _ = std::fs::remove_file(&history);
}
