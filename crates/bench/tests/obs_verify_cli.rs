//! CLI tests for `obs_verify`: manifest tolerance, the lenient-skip exit
//! codes (1 = violation, 3 = nothing parsed), and the `--hb`
//! happens-before protocol check.

use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};
use std::path::PathBuf;
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetmmm_obs_verify_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn jsonl(events: &[EventKind]) -> String {
    events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let rec = EventRecord {
                v: SCHEMA_VERSION,
                ts_nanos: i as u64,
                event: e.clone(),
            };
            format!("{}\n", serde_json::to_string(&rec).unwrap())
        })
        .collect()
}

fn exec_run_span() -> EventKind {
    EventKind::SpanStart {
        span: 1,
        name: "exec.run".into(),
        arg: 8,
        tid: 0,
    }
}

#[test]
fn nothing_parsed_exits_three_not_one() {
    let dir = scratch("allskip");
    let file = dir.join("not_events.jsonl");
    // Lines, but none of them event records — e.g. a chaos *schedule* log
    // passed where the event stream was expected.
    std::fs::write(&file, "{\"schedule\":1}\nnot json either\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args(["--file", file.to_str().unwrap()])
        .output()
        .expect("spawn obs_verify");
    assert_eq!(
        out.status.code(),
        Some(3),
        "all-skipped file needs the distinct exit: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("none parsed"), "{stderr}");
    // Same distinct exit through --hb.
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args(["--hb", file.to_str().unwrap()])
        .output()
        .expect("spawn obs_verify");
    assert_eq!(out.status.code(), Some(3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_skip_fails_citing_the_line() {
    let dir = scratch("partial");
    let file = dir.join("events.jsonl");
    let mut text = jsonl(&[EventKind::Message {
        target: "t".into(),
        text: "x".into(),
    }]);
    text.push_str("garbage line\n");
    std::fs::write(&file, text).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args(["--file", file.to_str().unwrap()])
        .output()
        .expect("spawn obs_verify");
    assert_eq!(out.status.code(), Some(1), "a skipped line fails the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2"),
        "first skip line must be cited: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hb_clean_exchange_passes() {
    let dir = scratch("hbok");
    let file = dir.join("events.jsonl");
    std::fs::write(
        &file,
        jsonl(&[
            exec_run_span(),
            EventKind::ExecSend {
                from: "R".into(),
                to: "S".into(),
                step: 0,
                elems: 7,
            },
            EventKind::ExecRecv {
                from: "R".into(),
                to: "S".into(),
                step: 0,
                elems: 7,
                wait_nanos: 3,
            },
            EventKind::ExecCheckpoint {
                worker: "S".into(),
                through: 1,
                cells: 4,
            },
        ]),
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args(["--hb", file.to_str().unwrap()])
        .output()
        .expect("spawn obs_verify");
    assert!(
        out.status.success(),
        "clean stream must pass --hb: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("HB OK"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hb_blame_before_retry_fails_with_h003_and_exact_line() {
    let dir = scratch("hbh003");
    let file = dir.join("events.jsonl");
    // A supervisor that convicts on a bare timeout without burning a
    // backoff re-attempt: H003, anchored at the blame's own line (3).
    std::fs::write(
        &file,
        jsonl(&[
            exec_run_span(),
            EventKind::ExecPeerLost {
                worker: "R".into(),
                peer: "S".into(),
                step: 2,
                detail: "receive timed out".into(),
            },
            EventKind::ExecBlame {
                dead: "S".into(),
                weights: vec![0, 3, 0],
            },
        ]),
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args(["--hb", file.to_str().unwrap()])
        .output()
        .expect("spawn obs_verify");
    assert_eq!(out.status.code(), Some(1), "H003 stream must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("H003"), "{stdout}");
    assert!(
        stdout.contains(":3:"),
        "the offending blame line must be cited: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_manifest_file_exits_zero_with_message() {
    let dir = std::env::temp_dir().join(format!("hetmmm_obs_verify_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let events = dir.join("events.jsonl");
    // One valid schema-current record so the events check passes.
    let record = hetmmm_obs::EventRecord {
        v: hetmmm_obs::SCHEMA_VERSION,
        ts_nanos: 1,
        event: hetmmm_obs::EventKind::Message {
            target: "t".into(),
            text: "x".into(),
        },
    };
    std::fs::write(
        &events,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .unwrap();
    let missing = dir.join("no_such_manifests.jsonl");

    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args([
            "--file",
            events.to_str().unwrap(),
            "--manifest",
            missing.to_str().unwrap(),
        ])
        .output()
        .expect("spawn obs_verify");
    assert!(
        out.status.success(),
        "missing manifests must not fail CI: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no manifests found"),
        "clear message expected: {stdout}"
    );

    // An empty (zero-record) file behaves the same.
    std::fs::write(&missing, "").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args([
            "--file",
            events.to_str().unwrap(),
            "--manifest",
            missing.to_str().unwrap(),
        ])
        .output()
        .expect("spawn obs_verify");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no manifests found"));

    let _ = std::fs::remove_dir_all(&dir);
}
