//! CLI test for `obs_verify`: a missing/empty manifest log is a fresh
//! checkout, not a CI failure.

use std::process::Command;

#[test]
fn missing_manifest_file_exits_zero_with_message() {
    let dir = std::env::temp_dir().join(format!("hetmmm_obs_verify_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let events = dir.join("events.jsonl");
    // One valid schema-current record so the events check passes.
    let record = hetmmm_obs::EventRecord {
        v: hetmmm_obs::SCHEMA_VERSION,
        ts_nanos: 1,
        event: hetmmm_obs::EventKind::Message {
            target: "t".into(),
            text: "x".into(),
        },
    };
    std::fs::write(
        &events,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .unwrap();
    let missing = dir.join("no_such_manifests.jsonl");

    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args([
            "--file",
            events.to_str().unwrap(),
            "--manifest",
            missing.to_str().unwrap(),
        ])
        .output()
        .expect("spawn obs_verify");
    assert!(
        out.status.success(),
        "missing manifests must not fail CI: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no manifests found"),
        "clear message expected: {stdout}"
    );

    // An empty (zero-record) file behaves the same.
    std::fs::write(&missing, "").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_obs_verify"))
        .args([
            "--file",
            events.to_str().unwrap(),
            "--manifest",
            missing.to_str().unwrap(),
        ])
        .output()
        .expect("spawn obs_verify");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no manifests found"));

    let _ = std::fs::remove_dir_all(&dir);
}
