//! End-to-end CLI tests for `bench_trend` lenient history parsing and
//! span-diff triage, and the `dash` dashboard golden run.

use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetmmm_trend_cli_{}_{name}", std::process::id()))
}

fn trend(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_trend"))
        .args(args)
        .output()
        .expect("spawn bench_trend")
}

fn dash(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dash"))
        .args(args)
        .output()
        .expect("spawn dash")
}

/// One well-formed v1 history line for workload `w`.
fn history_line(rev: &str, median: u64, counters: &[(&str, u64)]) -> String {
    let counters_json: Vec<String> = counters
        .iter()
        .map(|(c, v)| format!("[\"w\",\"{c}\",{v}]"))
        .collect();
    format!(
        "{{\"v\":1,\"git_rev\":\"{rev}\",\"unix_secs\":0,\"k\":3,\
         \"medians\":[[\"w\",{median}]],\"counters\":[{}]}}",
        counters_json.join(",")
    )
}

fn span_events_jsonl(clean_nanos: u64) -> String {
    let start = |span: u64, name: &str| EventRecord {
        v: SCHEMA_VERSION,
        ts_nanos: 0,
        event: EventKind::SpanStart {
            span,
            name: name.into(),
            arg: 0,
            tid: 1,
        },
    };
    let end = |span: u64, name: &str, nanos: u64| EventRecord {
        v: SCHEMA_VERSION,
        ts_nanos: nanos,
        event: EventKind::SpanEnd {
            span,
            name: name.into(),
            nanos,
            tid: 1,
        },
    };
    [
        start(1, "dfa.run"),
        start(2, "push.apply"),
        start(3, "push.clean"),
        end(3, "push.clean", clean_nanos),
        end(2, "push.apply", clean_nanos + 10),
        end(1, "dfa.run", clean_nanos + 30),
    ]
    .iter()
    .map(|r| serde_json::to_string(r).expect("serialize record"))
    .collect::<Vec<_>>()
    .join("\n")
}

#[test]
fn corrupted_truncated_and_mixed_version_history_is_survivable() {
    let history = tmp("mixed_history.jsonl");
    let good1 = history_line("a", 100, &[]);
    let good2 = history_line("b", 110, &[]);
    let truncated = &good1[..good1.len() / 2];
    // Two good v1 lines, one truncated line, one garbage line, one
    // foreign-version line, one blank: the analyzer must use exactly the
    // good lines and *count* the rest.
    let text = format!(
        "{good1}\n{truncated}\nnot json at all\n\n\
         {{\"v\":999,\"git_rev\":\"z\",\"unix_secs\":0,\"k\":1,\"medians\":[],\"counters\":[]}}\n\
         {good2}\n"
    );
    std::fs::write(&history, text).unwrap();

    let out = trend(&["--history", history.to_str().unwrap(), "--threshold", "2.0"]);
    assert!(
        out.status.success(),
        "lenient parse must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("(2 entries, 3 skipped lines)"),
        "counts good and skipped lines: {stdout}"
    );
    assert!(stdout.contains("w: 100 -> 110 ns"), "{stdout}");
    let _ = std::fs::remove_file(&history);
}

#[test]
fn drift_plus_event_streams_yields_span_level_triage() {
    let history = tmp("triage_history.jsonl");
    let baseline_events = tmp("triage_baseline.jsonl");
    let latest_events = tmp("triage_latest.jsonl");
    let triage_out = tmp("triage.json");

    // Five stable entries then a 2x jump, with one counter change.
    let mut lines: Vec<String> = (0..5)
        .map(|i| history_line(&format!("r{i}"), 100, &[("pushes", 7)]))
        .collect();
    lines.push(history_line("r5", 200, &[("pushes", 9)]));
    std::fs::write(&history, lines.join("\n")).unwrap();
    // The injected regression: push.clean self time grew 100 -> 210 ns.
    std::fs::write(&baseline_events, span_events_jsonl(100)).unwrap();
    std::fs::write(&latest_events, span_events_jsonl(210)).unwrap();

    let out = trend(&[
        "--history",
        history.to_str().unwrap(),
        "--threshold",
        "1.5",
        "--events-baseline",
        baseline_events.to_str().unwrap(),
        "--events-latest",
        latest_events.to_str().unwrap(),
        "--triage-out",
        triage_out.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "2x drift must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("push.clean self-nanos under dfa.run grew 2.1x"),
        "triage names the injected span: {stdout}"
    );
    assert!(
        stdout.contains("span dfa.run;push.apply;push.clean: 100 -> 210 self ns"),
        "{stdout}"
    );
    assert!(
        stdout.contains("counter pushes changed Some(7) -> Some(9)"),
        "{stdout}"
    );

    let json = std::fs::read_to_string(&triage_out).expect("triage json written");
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
    assert_eq!(v.get("v").and_then(|x| x.as_u64()), Some(1));
    assert!(json.contains("dfa.run;push.apply;push.clean"), "{json}");

    for p in [&history, &baseline_events, &latest_events, &triage_out] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn dash_renders_byte_identical_dashboards_for_identical_inputs() {
    let history = tmp("dash_history.jsonl");
    let winners = tmp("dash_winners.csv");
    let out_a = tmp("dash_a.html");
    let out_b = tmp("dash_b.html");
    let lines: Vec<String> = (0..4)
        .map(|i| history_line(&format!("r{i}"), 100 + i, &[]))
        .collect();
    std::fs::write(&history, lines.join("\n")).unwrap();
    std::fs::write(
        &winners,
        "topology,algorithm,p_r,r_r,winner,predicted_s\n\
         full,SCB,12,1,SC,0.000903\nfull,SCB,12,2,BR,0.000979\n",
    )
    .unwrap();

    let args = |out: &PathBuf| {
        vec![
            "--history".to_string(),
            history.to_str().unwrap().to_string(),
            "--winners".to_string(),
            winners.to_str().unwrap().to_string(),
            "--manifests".to_string(),
            tmp("dash_no_manifests.jsonl").to_str().unwrap().to_string(),
            "--out".to_string(),
            out.to_str().unwrap().to_string(),
        ]
    };
    let run_a = dash(&args(&out_a).iter().map(String::as_str).collect::<Vec<_>>());
    assert!(
        run_a.status.success(),
        "dash failed: {}",
        String::from_utf8_lossy(&run_a.stderr)
    );
    let run_b = dash(&args(&out_b).iter().map(String::as_str).collect::<Vec<_>>());
    assert!(run_b.status.success());

    let a = std::fs::read_to_string(&out_a).unwrap();
    let b = std::fs::read_to_string(&out_b).unwrap();
    assert_eq!(a, b, "same inputs must render byte-identical dashboards");
    for needle in [
        "Bench trend",
        "Optimal-shape winner map",
        "Regression triage",
        "Optimality gap",
        "<polyline",
    ] {
        assert!(a.contains(needle), "missing {needle:?}");
    }

    for p in [&history, &winners, &out_a, &out_b] {
        let _ = std::fs::remove_file(p);
    }
}
