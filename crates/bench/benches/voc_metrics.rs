//! B2 — VoC accounting: incremental maintenance vs full recomputation,
//! pairwise volumes, and the bitset local-updates sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm::partition::{local_updates, pairwise_volumes};
use hetmmm::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_incremental_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("voc_incremental_set");
    for n in [100usize, 500, 1000] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut part = random_partition(n, Ratio::new(2, 1, 1), &mut rng);
        let moves: Vec<(usize, usize, Proc)> = (0..1000)
            .map(|_| {
                (
                    rng.random_range(0..n),
                    rng.random_range(0..n),
                    Proc::ALL[rng.random_range(0..3)],
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for &(i, j, p) in &moves {
                    part.set(i, j, p);
                }
                black_box(part.voc())
            });
        });
    }
    group.finish();
}

fn bench_full_invariant_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("voc_full_recompute");
    group.sample_size(10);
    for n in [100usize, 500] {
        let mut rng = StdRng::seed_from_u64(3);
        let part = random_partition(n, Ratio::new(2, 1, 1), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| part.assert_invariants());
        });
    }
    group.finish();
}

fn bench_pairwise_volumes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_volumes");
    for n in [100usize, 1000, 5000] {
        let candidate = CandidateType::BlockRectangle
            .construct(n, Ratio::new(5, 2, 1))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(pairwise_volumes(&candidate.partition)));
        });
    }
    group.finish();
}

fn bench_local_updates_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_updates_bitset");
    group.sample_size(10);
    for n in [100usize, 300] {
        let mut rng = StdRng::seed_from_u64(4);
        let part = random_partition(n, Ratio::new(3, 2, 1), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(local_updates(&part)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_updates,
    bench_full_invariant_recompute,
    bench_pairwise_volumes,
    bench_local_updates_bitset
);
criterion_main!(benches);
