//! B4 — candidate construction and the recommendation API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm::prelude::*;
use hetmmm::shapes::candidates::all_feasible;
use std::hint::black_box;

fn bench_construct_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_all_candidates");
    for n in [100usize, 500, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(all_feasible(n, Ratio::new(5, 2, 1))));
        });
    }
    group.finish();
}

fn bench_single_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_one");
    for ty in CandidateType::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(ty.paper_name()),
            &ty,
            |b, &ty| {
                b.iter(|| black_box(ty.construct(500, Ratio::new(10, 2, 1))));
            },
        );
    }
    group.finish();
}

fn bench_recommend(c: &mut Criterion) {
    let mut group = c.benchmark_group("recommend");
    group.sample_size(20);
    let ratio = Ratio::new(5, 2, 1);
    let platform = Platform::new(ratio, 1e9, 10.0 / 1e9);
    for n in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(hetmmm::recommend(n, ratio, &platform, Algorithm::Scb)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_construct_all,
    bench_single_candidate,
    bench_recommend
);
criterion_main!(benches);
