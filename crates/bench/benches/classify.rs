//! B3 — shape analysis: corner counting and archetype classification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm::prelude::*;
use hetmmm::shapes::corner_count;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn condensed(n: usize, seed: u64) -> Partition {
    let runner = DfaRunner::new(DfaConfig::new(n, Ratio::new(2, 1, 1)));
    let mut part = runner.run_seed(seed).partition;
    beautify(&mut part);
    part
}

fn bench_corner_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("corner_count");
    for n in [60usize, 120, 240] {
        let part = condensed(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(corner_count(&part, Proc::R)));
        });
    }
    group.finish();
}

fn bench_classify_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_exact");
    for n in [60usize, 120] {
        let part = condensed(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(classify(&part)));
        });
    }
    group.finish();
}

fn bench_classify_coarse(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_coarse");
    for n in [60usize, 120, 240] {
        let part = condensed(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(classify_coarse(&part, 10)));
        });
    }
    group.finish();
}

fn bench_reduce_to_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_to_archetype_a");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let part = random_partition(60, Ratio::new(2, 2, 1), &mut rng);
    group.bench_function("n60_from_scatter", |b| {
        b.iter(|| black_box(reduce_to_archetype_a(&part)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_corner_count,
    bench_classify_exact,
    bench_classify_coarse,
    bench_reduce_to_a
);
criterion_main!(benches);
