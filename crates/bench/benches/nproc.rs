//! B7 — the k-processor generalization: grid updates and search runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm_nproc::{NDfaConfig, NDfaRunner, NPartition};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_npartition_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("npartition_set");
    for k in [3usize, 4, 8] {
        let weights: Vec<u32> = (0..k).map(|i| (k - i) as u32).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut part = NPartition::random(100, &weights, &mut rng);
        let moves: Vec<(usize, usize, u8)> = (0..1000)
            .map(|_| {
                (
                    rng.random_range(0..100),
                    rng.random_range(0..100),
                    rng.random_range(0..k) as u8,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                for &(i, j, p) in &moves {
                    part.set(i, j, p);
                }
                black_box(part.voc())
            });
        });
    }
    group.finish();
}

fn bench_nproc_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("nproc_search_run");
    group.sample_size(10);
    for (label, weights) in [
        ("k3", vec![2u32, 1, 1]),
        ("k4", vec![6, 3, 2, 1]),
        ("k5", vec![8, 4, 2, 1, 1]),
    ] {
        let runner = NDfaRunner::new(NDfaConfig::new(40, weights));
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(runner.run_seed(seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_npartition_set, bench_nproc_search);
criterion_main!(benches);
