//! B1 — Push operation and DFA throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_single_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_push");
    for n in [50usize, 100, 200] {
        let ratio = Ratio::new(2, 1, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let start = random_partition(n, ratio, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || start.clone(),
                |mut part| {
                    black_box(try_push_any_type(&mut part, Proc::R, Direction::Down));
                    part
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_dfa_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfa_full_run");
    group.sample_size(10);
    for n in [30usize, 60, 100] {
        let runner = DfaRunner::new(DfaConfig::new(n, Ratio::new(2, 1, 1)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(runner.run_seed(seed))
            });
        });
    }
    group.finish();
}

fn bench_beautify(c: &mut Criterion) {
    let mut group = c.benchmark_group("beautify");
    group.sample_size(10);
    let n = 60;
    let ratio = Ratio::new(3, 2, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let start = random_partition(n, ratio, &mut rng);
    group.bench_function("n60", |b| {
        b.iter_batched(
            || start.clone(),
            |mut part| {
                black_box(beautify(&mut part));
                part
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_push,
    bench_dfa_convergence,
    bench_beautify
);
criterion_main!(benches);
