//! B5 — simulator and cost-model evaluation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm::prelude::*;
use std::hint::black_box;

fn platform() -> Platform {
    Platform::new(Ratio::new(5, 2, 1), 1e9, 8.0 / 1e9)
}

fn bench_cost_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model_eval");
    let part = CandidateType::BlockRectangle
        .construct(500, Ratio::new(5, 2, 1))
        .unwrap()
        .partition;
    let plat = platform();
    for algo in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
            b.iter(|| black_box(evaluate(a, &part, &plat)));
        });
    }
    group.finish();
}

fn bench_simulate_scb(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_scb");
    for n in [500usize, 2000, 5000] {
        let part = CandidateType::BlockRectangle
            .construct(n, Ratio::new(5, 2, 1))
            .unwrap()
            .partition;
        let cfg = SimConfig::new(platform(), Algorithm::Scb);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(simulate(&part, &cfg)));
        });
    }
    group.finish();
}

fn bench_simulate_pio(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_pio");
    group.sample_size(20);
    for n in [500usize, 2000] {
        let part = CandidateType::LRectangle
            .construct(n, Ratio::new(5, 2, 1))
            .unwrap()
            .partition;
        let cfg = SimConfig::new(platform(), Algorithm::Pio);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(simulate(&part, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_models,
    bench_simulate_scb,
    bench_simulate_pio
);
criterion_main!(benches);
