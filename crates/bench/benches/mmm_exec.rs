//! B6 — kij execution: serial reference vs partitioned threaded executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetmmm::mmm::{kij_serial, multiply_partitioned, Matrix};
use hetmmm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_serial_kij(c: &mut Criterion) {
    let mut group = c.benchmark_group("kij_serial");
    group.sample_size(10);
    for n in [64usize, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(n, &mut rng);
        let b = Matrix::random(n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(kij_serial(&a, &b)));
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("kij_partitioned");
    group.sample_size(10);
    for n in [64usize, 128] {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random(n, &mut rng);
        let b = Matrix::random(n, &mut rng);
        let part = CandidateType::SquareCorner
            .construct(n, Ratio::new(10, 1, 1))
            .unwrap()
            .partition;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(multiply_partitioned(&a, &b, &part)));
        });
    }
    group.finish();
}

fn bench_shapes_traffic(c: &mut Criterion) {
    // Compares executor wall time across shapes at fixed n — the traffic
    // difference is visible in the stats even when compute dominates.
    let mut group = c.benchmark_group("kij_by_shape");
    group.sample_size(10);
    let n = 96;
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::random(n, &mut rng);
    let b = Matrix::random(n, &mut rng);
    for ty in [
        CandidateType::SquareCorner,
        CandidateType::BlockRectangle,
        CandidateType::TraditionalRectangle,
    ] {
        if let Some(cand) = ty.construct(n, Ratio::new(10, 1, 1)) {
            group.bench_with_input(
                BenchmarkId::from_parameter(ty.paper_name()),
                &cand.partition,
                |bch, part| {
                    bch.iter(|| black_box(multiply_partitioned(&a, &b, part)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_kij,
    bench_partitioned,
    bench_shapes_traffic
);
criterion_main!(benches);
