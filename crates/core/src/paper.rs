//! # Paper-to-API map
//!
//! A reading companion: every section, equation, theorem, figure and claim
//! of DeFlumere & Lastovetsky (HCW/IPDPS-W 2014) mapped to the item in
//! this workspace that implements, checks, or reproduces it.
//!
//! ## Section II — Related work & preliminaries
//!
//! | paper | here |
//! |-------|------|
//! | Hockney model `T = α + β·M` | [`hetmmm_cost::HockneyModel`] |
//! | kij algorithm (Fig. 1) | [`hetmmm_mmm::kij_serial`], [`hetmmm_mmm::multiply_partitioned`] |
//! | five MMM algorithms (SCB…PIO) | [`hetmmm_cost::Algorithm`] |
//! | two-processor Push & shapes (prior work \[8\]) | [`hetmmm_twoproc`] |
//! | two-processor Push illustration (Fig. 2) | `hetmmm_twoproc::run_two_proc_search` |
//!
//! ## Sections III–IV — Formalism
//!
//! | paper | here |
//! |-------|------|
//! | `q(i,j) ∈ {0,1,2}` encoding | [`hetmmm_partition::Proc`] (`R=0, S=1, P=2`) |
//! | speed ratio `P_r : R_r : S_r` | [`hetmmm_partition::Ratio`] |
//! | asymptotic rectangularity (Fig. 3) | [`hetmmm_shapes::RegionKind::AsymptRect`] |
//! | enclosing rectangles (Fig. 4) | [`hetmmm_partition::Partition::enclosing_rect`] |
//! | Eq. 1 volume of communication | [`hetmmm_partition::Partition::voc`] |
//! | Push Types 1–6 (§IV-A) | [`hetmmm_push::PushType`], [`hetmmm_push::try_push`] |
//! | Eq. 2–3 SCB model | [`hetmmm_cost::evaluate`] with [`hetmmm_cost::Algorithm::Scb`] |
//! | Eq. 4–6 PCB model (`d_X`) | [`hetmmm_partition::ProcMetrics::send_elems`] + `Algorithm::Pcb` |
//! | Eq. 7 SCO model (`o_X`, `c_X`) | [`hetmmm_partition::ProcMetrics::local_updates`] + `Algorithm::Sco` |
//! | Eq. 8 PCO model | `Algorithm::Pco` |
//! | Eq. 9 PIO model | `Algorithm::Pio`; blocked variant [`hetmmm_cost::evaluate_pio_blocked`] |
//!
//! ## Sections V–VI — The DFA program
//!
//! | paper | here |
//! |-------|------|
//! | Postulate 1 | `tests/archetype_census.rs`, bench bin `fig5_archetype_census` |
//! | DFA 5-tuple | [`hetmmm_push::DfaRunner`] (states = partitions, Σ = [`hetmmm_push::PushPlan`], δ = [`hetmmm_push::try_push_any_type`]) |
//! | random `q0` (§VI-A-2) | [`hetmmm_partition::random_partition`] |
//! | randomized directions (§VI-A-1) | [`hetmmm_push::PushPlan::random`] |
//! | `find` / `findTypeOne` pseudocode | the select-and-match phases of [`hetmmm_push::try_push`] (see its module docs for the deliberate generalization) |
//! | end conditions (§VI-C) | [`hetmmm_push::is_condensed`], `DfaOutcome::converged` |
//!
//! ## Section VII — Experiments
//!
//! | paper | here |
//! |-------|------|
//! | N = 1000, 11 ratios, ~10k runs | [`crate::census`] / `fig5_archetype_census --n 1000 --runs 10000` |
//! | example run (Fig. 7) | bench bin `fig7_example_run` |
//! | archetypes A–D (Fig. 5) | [`hetmmm_shapes::Archetype`], [`hetmmm_shapes::classify`] |
//!
//! ## Section VIII — Analysis
//!
//! | paper | here |
//! |-------|------|
//! | corner taxonomy (§VIII-A, Fig. 8) | [`hetmmm_shapes::corner_count`] |
//! | Theorem 8.1 (translation invariance) | [`hetmmm_shapes::translate_combined`] |
//! | Theorems 8.2–8.4 (B/C/D → A) | [`hetmmm_shapes::reduce_to_archetype_a`], bench bin `thm8_reductions` |
//!
//! ## Section IX — Candidates
//!
//! | paper | here |
//! |-------|------|
//! | six candidate types (Fig. 10) | [`hetmmm_shapes::CandidateType`] |
//! | Theorem 9.1 (squares fit) | `hetmmm_shapes::candidates::square_corner_feasible`, [`hetmmm_shapes::square_corner_margin`] |
//! | Eq. 13 perimeter minimizer | [`hetmmm_shapes::rectangle_corner_split`] |
//! | canonical forms (Figs. 11–12) | `CandidateType::construct` |
//!
//! ## Section X — Comparison & validation
//!
//! | paper | here |
//! |-------|------|
//! | SCB cost surfaces (Fig. 13) | [`hetmmm_cost::scb_comm_norm`], bench bin `fig13_cost_surface` |
//! | all-six closed forms (the "full analysis" §X defers) | [`hetmmm_cost::scb_comm_norm_candidate`], bench bin `table_optimal_shapes` |
//! | star topology | [`hetmmm_cost::Topology::Star`] |
//! | Open-MPI testbed (Fig. 14) | [`hetmmm_sim::simulate`] (substitution documented in DESIGN.md §2), bench bin `fig14_comm_time` |
//! | ATLAS local multiply | [`hetmmm_mmm::multiply_partitioned`] |
//!
//! ## Section XI — Future work, built here
//!
//! | paper | here |
//! |-------|------|
//! | "four or more processors" | [`hetmmm_nproc`](https://docs.rs) (crate `hetmmm-nproc`), bench bin `nproc_search` |
//! | latency / topology / granularity influences | bench bin `ablation_sweeps` |
