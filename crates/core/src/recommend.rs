//! The downstream-user API: pick the best candidate shape for a platform.
//!
//! The paper's end product is the insight that only six canonical shapes
//! can be optimal; a user with a concrete platform wants the *one* of them
//! to deploy. [`recommend`] constructs every feasible candidate, evaluates
//! the requested algorithm's performance model, and returns the winner with
//! the full ranking.

use hetmmm_cost::{evaluate, Algorithm, Platform};
use hetmmm_partition::Ratio;
use hetmmm_shapes::{candidates, Candidate, CandidateType};

/// Result of [`recommend`].
#[derive(Debug)]
pub struct Recommendation {
    /// The winning candidate (lowest predicted total execution time).
    pub candidate: Candidate,
    /// Predicted execution time of the winner, in seconds.
    pub predicted_total: f64,
    /// Every feasible candidate with its predicted total, best first.
    pub ranking: Vec<(CandidateType, f64)>,
}

/// Construct all feasible candidate shapes for `(n, ratio)` and rank them
/// under `algo` on `platform`.
///
/// Panics if no candidate is feasible (cannot happen for `n ≥ 4` and valid
/// ratios: the Traditional-Rectangle always exists).
pub fn recommend(n: usize, ratio: Ratio, platform: &Platform, algo: Algorithm) -> Recommendation {
    let mut scored: Vec<(Candidate, f64)> = candidates::all_feasible(n, ratio)
        .into_iter()
        .map(|c| {
            let t = evaluate(algo, &c.partition, platform).total;
            (c, t)
        })
        .collect();
    assert!(
        !scored.is_empty(),
        "no feasible candidate shape for n={n}, ratio={ratio}"
    );
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    let ranking = scored.iter().map(|(c, t)| (c.ty, *t)).collect();
    let (candidate, predicted_total) = scored.swap_remove(0);
    Recommendation {
        candidate,
        predicted_total,
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plat(ratio: Ratio, comm_heavy: bool) -> Platform {
        let t_send = if comm_heavy { 50.0 / 1e9 } else { 0.01 / 1e9 };
        Platform::new(ratio, 1e9, t_send)
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let ratio = Ratio::new(5, 2, 1);
        let rec = recommend(60, ratio, &plat(ratio, true), Algorithm::Scb);
        assert!(rec.ranking.len() >= 4);
        for pair in rec.ranking.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(rec.ranking[0].0, rec.candidate.ty);
        assert_eq!(rec.ranking[0].1, rec.predicted_total);
    }

    #[test]
    fn high_heterogeneity_prefers_square_corner_under_scb() {
        // Fig. 13/14: at strongly heterogeneous ratios the Square-Corner
        // wins the communication-bound SCB comparison.
        let ratio = Ratio::new(25, 1, 1);
        let rec = recommend(120, ratio, &plat(ratio, true), Algorithm::Scb);
        assert_eq!(rec.candidate.ty, CandidateType::SquareCorner);
    }

    #[test]
    fn low_heterogeneity_rejects_square_corner() {
        // 2:2:1 cannot even form a Square-Corner (Theorem 9.1).
        let ratio = Ratio::new(2, 2, 1);
        let rec = recommend(120, ratio, &plat(ratio, true), Algorithm::Scb);
        assert_ne!(rec.candidate.ty, CandidateType::SquareCorner);
        assert!(rec
            .ranking
            .iter()
            .all(|(ty, _)| *ty != CandidateType::SquareCorner));
    }

    #[test]
    fn compute_bound_platform_is_shape_insensitive() {
        let ratio = Ratio::new(5, 2, 1);
        let rec = recommend(60, ratio, &plat(ratio, false), Algorithm::Scb);
        let best = rec.ranking.first().unwrap().1;
        let worst = rec.ranking.last().unwrap().1;
        assert!((worst - best) / best < 0.05, "shapes should be near-tied");
    }
}
