//! The Section VII experiment as a library call: run many randomized DFA
//! searches and tabulate the archetypes of the fixed points.

use hetmmm_partition::Ratio;
use hetmmm_push::{beautify, DfaConfig, DfaRunner};
use hetmmm_shapes::{classify_coarse, Archetype};
use serde::{Deserialize, Serialize};

/// Configuration of a census run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CensusConfig {
    /// Matrix dimension (the paper used 1000; 100 reproduces the same
    /// grouping far faster — see EXPERIMENTS.md).
    pub n: usize,
    /// Processor speed ratio.
    pub ratio: Ratio,
    /// Number of DFA runs (the paper used ~10,000 per ratio).
    pub runs: u64,
    /// First seed; runs use `seed0 .. seed0 + runs`.
    pub seed0: u64,
    /// Viewing granularity for coarse classification (the paper's Fig. 7
    /// uses 10 blocks for N = 1000).
    pub blocks: usize,
}

impl CensusConfig {
    /// Defaults: 64 runs from seed 0, 10-block granularity.
    pub fn new(n: usize, ratio: Ratio) -> CensusConfig {
        CensusConfig {
            n,
            ratio,
            runs: 64,
            seed0: 0,
            blocks: 10,
        }
    }

    /// Set the number of runs.
    pub fn with_runs(mut self, runs: u64) -> CensusConfig {
        self.runs = runs;
        self
    }

    /// Set the starting seed.
    pub fn with_seed0(mut self, seed0: u64) -> CensusConfig {
        self.seed0 = seed0;
        self
    }
}

/// Tabulated outcome of a census.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CensusReport {
    /// The configuration that produced this report.
    pub config: CensusConfig,
    /// Fixed points classified per archetype `[A, B, C, D]`.
    pub counts: [usize; 4],
    /// Fixed points the tolerant coarse classifier could not group —
    /// borderline staircase boundaries at small `N`, never random scatter.
    pub non_shapes: usize,
    /// Runs that failed to converge before the step caps (0 expected).
    pub unconverged: usize,
    /// Mean VoC of the random start states.
    pub mean_voc_initial: f64,
    /// Mean VoC of the fixed points.
    pub mean_voc_final: f64,
    /// Mean number of pushes to convergence.
    pub mean_steps: f64,
}

impl CensusReport {
    /// Count for one archetype.
    pub fn count(&self, arch: Archetype) -> usize {
        match arch {
            Archetype::A => self.counts[0],
            Archetype::B => self.counts[1],
            Archetype::C => self.counts[2],
            Archetype::D => self.counts[3],
            Archetype::NonShape => self.non_shapes,
        }
    }

    /// Total runs tabulated.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.non_shapes
    }

    /// Fraction of fixed points grouped into the four archetypes.
    pub fn classified_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        (total - self.non_shapes) as f64 / total as f64
    }
}

/// Run the census: `runs` seeded DFA searches, residual pushes exhausted
/// (Theorem 8.3), fixed points classified at the paper's viewing
/// granularity. Runs fan out over rayon.
pub fn census(config: &CensusConfig) -> CensusReport {
    let _span = hetmmm_obs::span_arg("census.run", config.runs);
    let runner = DfaRunner::new(DfaConfig::new(config.n, config.ratio));
    let outcomes = runner.run_many(config.seed0..config.seed0 + config.runs);

    let mut counts = [0usize; 4];
    let mut non_shapes = 0usize;
    let mut unconverged = 0usize;
    let mut sum_initial = 0.0;
    let mut sum_final = 0.0;
    let mut sum_steps = 0.0;
    let total = outcomes.len().max(1);

    for out in outcomes {
        if !out.converged {
            unconverged += 1;
        }
        sum_initial += out.voc_initial as f64;
        sum_steps += out.steps as f64;
        let mut part = out.partition;
        beautify(&mut part);
        sum_final += part.voc() as f64;
        match classify_coarse(&part, config.blocks) {
            Archetype::A => counts[0] += 1,
            Archetype::B => counts[1] += 1,
            Archetype::C => counts[2] += 1,
            Archetype::D => counts[3] += 1,
            Archetype::NonShape => non_shapes += 1,
        }
    }

    CensusReport {
        config: config.clone(),
        counts,
        non_shapes,
        unconverged,
        mean_voc_initial: sum_initial / total as f64,
        mean_voc_final: sum_final / total as f64,
        mean_steps: sum_steps / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_totals_add_up() {
        let report = census(&CensusConfig::new(24, Ratio::new(2, 1, 1)).with_runs(10));
        assert_eq!(report.total(), 10);
        assert_eq!(report.unconverged, 0);
        assert!(report.mean_voc_final <= report.mean_voc_initial);
        assert!(report.mean_steps > 0.0);
    }

    #[test]
    fn census_is_deterministic() {
        let cfg = CensusConfig::new(20, Ratio::new(3, 1, 1)).with_runs(6);
        let a = census(&cfg);
        let b = census(&cfg);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.non_shapes, b.non_shapes);
    }

    #[test]
    fn disjoint_seed_ranges_differ() {
        let a = census(&CensusConfig::new(20, Ratio::new(3, 1, 1)).with_runs(6));
        let b = census(
            &CensusConfig::new(20, Ratio::new(3, 1, 1))
                .with_runs(6)
                .with_seed0(1000),
        );
        // Same statistics family but different samples (VoC means will
        // essentially never coincide exactly).
        assert!(a.mean_voc_final != b.mean_voc_final || a.counts != b.counts);
    }
}
