//! # hetmmm
//!
//! A from-scratch reproduction of **DeFlumere & Lastovetsky, "Searching for
//! the Optimal Data Partitioning Shape for Parallel Matrix Matrix
//! Multiplication on 3 Heterogeneous Processors"** (HCW / IPDPS Workshops
//! 2014) — the Push operation, the DFA shape search, the four archetypes,
//! the six candidate canonical partitions, the five parallel-MMM
//! performance models, a message-level platform simulator, and a threaded
//! kij executor.
//!
//! ## Quick start
//!
//! ```
//! use hetmmm::prelude::*;
//!
//! // Your platform: P is 5x faster than S, R is 2x faster than S.
//! let ratio = Ratio::new(5, 2, 1);
//! let platform = Platform::new(ratio, 1e9, 10.0 / 1e9);
//!
//! // Which of the six candidate shapes minimizes SCB execution time?
//! let rec = hetmmm::recommend(120, ratio, &platform, Algorithm::Scb);
//! println!("use the {} partition", rec.candidate.ty);
//!
//! // Or run the paper's randomized Push DFA yourself:
//! let report = hetmmm::census(&hetmmm::CensusConfig::new(40, ratio).with_runs(8));
//! assert_eq!(report.total(), 8);
//! assert!(report.classified_fraction() > 0.5);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`partition`] | the `q(i,j)` grid, VoC accounting, enclosing rectangles |
//! | [`push`] | Push Types 1–6, the randomized DFA, beautify |
//! | [`shapes`] | corners, archetypes A–D, reductions, six candidates |
//! | [`cost`] | Hockney model, SCB/PCB/SCO/PCO/PIO closed forms |
//! | [`sim`] | message-level schedule simulation |
//! | [`mmm`] | serial kij and the partition-driven threaded executor |
//! | [`twoproc`] | the two-processor prior-work substrate |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hetmmm_cost as cost;
pub use hetmmm_error as error;
pub use hetmmm_mmm as mmm;
pub use hetmmm_partition as partition;
pub use hetmmm_push as push;
pub use hetmmm_shapes as shapes;
pub use hetmmm_sim as sim;
pub use hetmmm_twoproc as twoproc;

mod census;
pub mod paper;
pub mod prelude;
mod recommend;

pub use census::{census, CensusConfig, CensusReport};
pub use recommend::{recommend, Recommendation};
