//! One-stop imports for the common types.

pub use hetmmm_cost::{
    evaluate, evaluate_all, AlgoTime, Algorithm, HockneyModel, Platform, Topology,
};
pub use hetmmm_error::{HetmmmError, NonConvergence};
pub use hetmmm_mmm::{
    kij_serial, multiply_partitioned, multiply_partitioned_with, ExecConfig, ExecStats, FaultKind,
    FaultPlan, Matrix, ProcExec, RecoveryStats,
};
pub use hetmmm_obs::{
    self as obs, Clock, EventKind, EventRecord, FakeClock, FmtSink, JsonlSink, MetricsSnapshot,
    MonotonicClock, RunManifest, Sink,
};
pub use hetmmm_partition::{
    random_partition, CommMetrics, Partition, PartitionBuilder, Proc, Ratio, Rect,
};
pub use hetmmm_push::{
    beautify, is_condensed, try_push, try_push_any_type, DfaConfig, DfaOutcome, DfaRunner,
    Direction, PushPlan, PushType, Termination,
};
pub use hetmmm_shapes::{
    classify, classify_coarse, reduce_to_archetype_a, Archetype, Candidate, CandidateType,
};
pub use hetmmm_sim::{simulate, simulate_all, SimConfig, SimResult};
pub use hetmmm_twoproc::{degrade_partition, DegradeOutcome, TwoProcShape};

pub use crate::{census, recommend, CensusConfig, CensusReport, Recommendation};
