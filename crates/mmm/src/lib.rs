//! # hetmmm-mmm
//!
//! The kij matrix-matrix multiplication substrate (Section II, Fig. 1) and
//! a partition-driven multi-threaded executor standing in for the paper's
//! three Open-MPI nodes (Section X-B).
//!
//! The kij algorithm iterates a pivot `k` over rows/columns: at each step,
//! every element of C is updated with
//! `C[i,j] += A[i,k] * B[k,j]`. If the processor computing `C[i,j]` does
//! not own the pivot elements `A[i,k]` / `B[k,j]`, they must be
//! communicated — which is precisely where the partition shape determines
//! the communication volume.
//!
//! [`parallel::multiply_partitioned`] runs one OS thread per processor.
//! Each worker holds **only the matrix elements its partition assigns to
//! it**; pivot fragments travel through crossbeam channels, so the
//! communication the cost models count actually happens (and is counted by
//! the executor's [`parallel::ExecStats`]). The result is verified against
//! the serial reference in tests for arbitrary partitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod parallel;

pub use matrix::{kij_serial, naive_multiply, Matrix};
pub use parallel::{multiply_partitioned, ExecStats};
