//! # hetmmm-mmm
//!
//! The kij matrix-matrix multiplication substrate (Section II, Fig. 1) and
//! a partition-driven multi-threaded executor standing in for the paper's
//! three Open-MPI nodes (Section X-B).
//!
//! The kij algorithm iterates a pivot `k` over rows/columns: at each step,
//! every element of C is updated with
//! `C[i,j] += A[i,k] * B[k,j]`. If the processor computing `C[i,j]` does
//! not own the pivot elements `A[i,k]` / `B[k,j]`, they must be
//! communicated — which is precisely where the partition shape determines
//! the communication volume.
//!
//! [`parallel::multiply_partitioned`] runs one OS thread per processor.
//! Each worker holds **only the matrix elements its partition assigns to
//! it**; pivot fragments travel through bounded channels, so the
//! communication the cost models count actually happens (and is counted by
//! the executor's [`parallel::ExecStats`]). The result is verified against
//! the serial reference in tests for arbitrary partitions.
//!
//! The executor is fault-tolerant: worker failures (scripted through
//! [`fault::FaultPlan`] or real) are detected via channel disconnects and
//! receive timeouts, then run through a layered recovery engine — receive
//! re-waits with bounded exponential backoff absorb transient silences,
//! step checkpoints banked with the supervisor let re-attempts resume
//! instead of restarting, convictions re-assign the dead processor's C
//! cells onto the survivors with [`hetmmm_twoproc::degrade_partition`],
//! and when survivors, retries, or the recovery deadline run out the
//! supervisor finishes the tail serially and reports
//! [`parallel::RecoveryStats::degraded_mode`] instead of erroring — see
//! DESIGN.md's "Failure model".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod matrix;
pub mod parallel;
mod supervise;

pub use fault::{FaultKind, FaultPlan};
pub use matrix::{kij_serial, naive_multiply, Matrix};
pub use parallel::{
    multiply_partitioned, multiply_partitioned_with, ExecConfig, ExecStats, ProcExec, RecoveryStats,
};
