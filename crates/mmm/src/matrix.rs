//! Dense square matrices and the serial kij reference.

use rand::{Rng, RngExt};

/// A dense square `n x n` matrix of `f64`, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(n: usize) -> Matrix {
        assert!(n > 0);
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// A matrix with entries drawn uniformly from `[-1, 1)`.
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Matrix {
        let mut m = Matrix::zeros(n);
        for v in &mut m.data {
            *v = rng.random_range(-1.0..1.0);
        }
        m
    }

    /// Build from a function of `(i, j)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Write element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Add `v` to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// Largest absolute elementwise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
    }
}

/// The kij algorithm exactly as Section II describes it: for each pivot
/// `k`, update every element of C.
pub fn kij_serial(a: &Matrix, b: &Matrix) -> Matrix {
    let _span = hetmmm_obs::fine_span_arg("mmm.kernel", a.n() as u64);
    assert_eq!(a.n(), b.n());
    let n = a.n();
    let mut c = Matrix::zeros(n);
    for k in 0..n {
        for i in 0..n {
            let aik = a.get(i, k);
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c.add(i, j, aik * b.get(k, j));
            }
        }
    }
    c
}

/// Classic ijk triple loop, used to cross-check the kij variant.
pub fn naive_multiply(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n(), b.n());
    let n = a.n();
    let mut c = Matrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(8, &mut rng);
        let i = Matrix::identity(8);
        assert!(kij_serial(&a, &i).max_abs_diff(&a) < 1e-12);
        assert!(kij_serial(&i, &a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn kij_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 2, 5, 16, 33] {
            let a = Matrix::random(n, &mut rng);
            let b = Matrix::random(n, &mut rng);
            let diff = kij_serial(&a, &b).max_abs_diff(&naive_multiply(&a, &b));
            assert!(diff < 1e-10, "n = {n}: diff {diff}");
        }
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_fn(2, |i, j| (2 * i + j) as f64); // [0 1; 2 3]
        let b = Matrix::from_fn(2, |i, j| (i + 2 * j) as f64); // [0 2; 1 3]
        let c = kij_serial(&a, &b);
        // [0 1; 2 3] * [0 2; 1 3] = [1 3; 3 13]
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 3.0);
        assert_eq!(c.get(1, 0), 3.0);
        assert_eq!(c.get(1, 1), 13.0);
    }

    #[test]
    fn zeros_times_anything() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random(6, &mut rng);
        let z = Matrix::zeros(6);
        assert_eq!(kij_serial(&a, &z), Matrix::zeros(6));
    }
}
