//! Deterministic fault injection for the threaded executor.
//!
//! A [`FaultPlan`] scripts worker failures ahead of a run: which processor
//! misbehaves, how ([`FaultKind`]), and at which pivot step. Plans are
//! plain data — fully deterministic and serializable — so a failing
//! recovery scenario can be replayed exactly from its plan (or from the
//! seed that generated it via [`FaultPlan::random_crash`]).
//!
//! Injection lives entirely behind `ExecConfig::fault_plan`
//! (an `Option`): with `None` the per-step check the workers perform is a
//! lookup in an empty slice, so the production path pays nothing
//! measurable.

use hetmmm_partition::Proc;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One scripted worker fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker exits before sending anything at pivot step `step`,
    /// dropping its channel endpoints — peers observe a disconnect.
    CrashAt {
        /// Pivot step at which the worker dies.
        step: usize,
    },
    /// The worker silently skips its sends at pivot step `step` but keeps
    /// running — peers observe a receive timeout (a lost message).
    DropMessageAt {
        /// Pivot step whose outgoing fragments are lost.
        step: usize,
    },
    /// The worker sleeps before sending at pivot step `step`. A delay
    /// shorter than the receive timeout must *not* trigger recovery.
    DelaySendAt {
        /// Pivot step whose sends are delayed.
        step: usize,
        /// Delay duration in milliseconds.
        millis: u64,
    },
    /// The worker wedges at pivot step `step`: it checkpoints, parks for
    /// long enough to outlast every peer's receive budget, then returns
    /// quietly without sending anything further. Peers observe persistent
    /// silence — the permanent counterpart of [`FaultKind::DelaySendAt`].
    StallAt {
        /// Pivot step at which the worker goes silent.
        step: usize,
    },
}

impl FaultKind {
    /// The pivot step this fault fires at.
    pub fn step(self) -> usize {
        match self {
            FaultKind::CrashAt { step }
            | FaultKind::DropMessageAt { step }
            | FaultKind::DelaySendAt { step, .. }
            | FaultKind::StallAt { step } => step,
        }
    }

    /// Is this fault *transient* — able to resolve by waiting, so that
    /// retry/backoff can absorb it without convicting anyone?
    ///
    /// A delayed send resolves by itself once the sender wakes up (if the
    /// receive budget covers the delay). Everything else is persistent
    /// silence for the awaited fragment: a crashed or stalled worker never
    /// speaks again, and a dropped message never arrives no matter how
    /// long the victim waits — those must escalate to blame.
    pub fn is_transient(self) -> bool {
        match self {
            FaultKind::DelaySendAt { .. } => true,
            FaultKind::CrashAt { .. }
            | FaultKind::DropMessageAt { .. }
            | FaultKind::StallAt { .. } => false,
        }
    }

    /// Draw one fault uniformly-ish from the chaos distribution:
    /// crash / drop / stall / delay, with delay durations straddling
    /// `timeout_millis` so the boundary of the receive budget is probed
    /// from both sides.
    pub fn random<R: Rng>(n: usize, timeout_millis: u64, rng: &mut R) -> FaultKind {
        let step = rng.random_range(0..n.max(1));
        match rng.random_range(0..10u32) {
            0..=2 => FaultKind::CrashAt { step },
            3..=4 => FaultKind::DropMessageAt { step },
            5..=6 => FaultKind::StallAt { step },
            _ => {
                // Half the delays land under the timeout (must be invisible),
                // half over it (must be absorbed by retry or escalate).
                let t = timeout_millis.max(2);
                let millis = if rng.random_range(0..2u32) == 0 {
                    rng.random_range(1..t)
                } else {
                    rng.random_range(t..t * 3)
                };
                FaultKind::DelaySendAt { step, millis }
            }
        }
    }
}

/// A scripted set of `(processor, fault)` pairs for one executor run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scripted faults. Multiple faults per processor are allowed;
    /// each fires at its own step.
    pub faults: Vec<(Proc, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: add one fault.
    pub fn with_fault(mut self, proc: Proc, kind: FaultKind) -> FaultPlan {
        self.faults.push((proc, kind));
        self
    }

    /// Convenience: a single crash of `proc` at pivot step `step`.
    pub fn crash(proc: Proc, step: usize) -> FaultPlan {
        FaultPlan::new().with_fault(proc, FaultKind::CrashAt { step })
    }

    /// A single crash of a random processor at a random pivot step of an
    /// `n x n` multiply, drawn deterministically from `rng`.
    pub fn random_crash<R: Rng>(n: usize, rng: &mut R) -> FaultPlan {
        let proc = Proc::ALL[rng.random_range(0..3usize)];
        let step = rng.random_range(0..n.max(1));
        FaultPlan::crash(proc, step)
    }

    /// A multi-fault schedule for an `n x n` multiply, drawn
    /// deterministically from `rng`: 1–3 faults from the
    /// [`FaultKind::random`] chaos distribution on distinct processors
    /// (so a cascade kills workers one at a time rather than scripting
    /// two faults on an already-dead worker).
    ///
    /// `timeout_millis` should be the run's configured receive timeout;
    /// delay durations are drawn straddling it so schedules probe the
    /// timeout boundary from both sides.
    pub fn random_schedule<R: Rng>(n: usize, timeout_millis: u64, rng: &mut R) -> FaultPlan {
        let count = rng.random_range(1..=3usize);
        let mut procs = Proc::ALL;
        // Partial Fisher-Yates: the first `count` entries are the victims.
        for i in 0..count {
            let j = rng.random_range(i..3usize);
            procs.swap(i, j);
        }
        let mut plan = FaultPlan::new();
        for &proc in &procs[..count] {
            plan = plan.with_fault(proc, FaultKind::random(n, timeout_millis, rng));
        }
        plan
    }

    /// The faults scripted for one processor.
    pub fn faults_for(&self, proc: Proc) -> Vec<FaultKind> {
        self.faults
            .iter()
            .filter(|(p, _)| *p == proc)
            .map(|&(_, k)| k)
            .collect()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn faults_for_filters_by_proc() {
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 3 })
            .with_fault(Proc::S, FaultKind::DropMessageAt { step: 1 })
            .with_fault(
                Proc::R,
                FaultKind::DelaySendAt {
                    step: 5,
                    millis: 10,
                },
            );
        assert_eq!(plan.faults_for(Proc::R).len(), 2);
        assert_eq!(
            plan.faults_for(Proc::S),
            vec![FaultKind::DropMessageAt { step: 1 }]
        );
        assert!(plan.faults_for(Proc::P).is_empty());
    }

    #[test]
    fn random_crash_is_deterministic_and_in_range() {
        let n = 16;
        let a = FaultPlan::random_crash(n, &mut StdRng::seed_from_u64(9));
        let b = FaultPlan::random_crash(n, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let (_, kind) = a.faults[0];
        assert!(kind.step() < n);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::crash(Proc::S, 7).with_fault(
            Proc::P,
            FaultKind::DelaySendAt {
                step: 2,
                millis: 50,
            },
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn every_kind_roundtrips_through_json() {
        for kind in [
            FaultKind::CrashAt { step: 0 },
            FaultKind::DropMessageAt { step: 9 },
            FaultKind::DelaySendAt {
                step: 3,
                millis: 25,
            },
            FaultKind::StallAt { step: 6 },
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: FaultKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn transient_classification_matches_semantics() {
        assert!(FaultKind::DelaySendAt { step: 1, millis: 5 }.is_transient());
        assert!(!FaultKind::CrashAt { step: 1 }.is_transient());
        assert!(!FaultKind::DropMessageAt { step: 1 }.is_transient());
        assert!(!FaultKind::StallAt { step: 1 }.is_transient());
    }

    #[test]
    fn random_schedule_is_deterministic_and_well_formed() {
        let n = 20;
        let a = FaultPlan::random_schedule(n, 50, &mut StdRng::seed_from_u64(31));
        let b = FaultPlan::random_schedule(n, 50, &mut StdRng::seed_from_u64(31));
        assert_eq!(a, b);
        for seed in 0..200 {
            let plan = FaultPlan::random_schedule(n, 50, &mut StdRng::seed_from_u64(seed));
            assert!((1..=3).contains(&plan.faults.len()));
            // Distinct victims.
            let mut procs: Vec<Proc> = plan.faults.iter().map(|&(p, _)| p).collect();
            procs.sort_by_key(|p| p.idx());
            procs.dedup();
            assert_eq!(procs.len(), plan.faults.len());
            for (_, kind) in &plan.faults {
                assert!(kind.step() < n);
                if let FaultKind::DelaySendAt { millis, .. } = kind {
                    assert!((1..150).contains(millis), "delay straddles the timeout");
                }
            }
        }
    }

    #[test]
    fn random_schedule_covers_every_kind_and_both_delay_sides() {
        let n = 16;
        let (mut crash, mut drop, mut stall, mut under, mut over) = (0, 0, 0, 0, 0);
        for seed in 0..300 {
            let plan = FaultPlan::random_schedule(n, 40, &mut StdRng::seed_from_u64(seed));
            for (_, kind) in &plan.faults {
                match kind {
                    FaultKind::CrashAt { .. } => crash += 1,
                    FaultKind::DropMessageAt { .. } => drop += 1,
                    FaultKind::StallAt { .. } => stall += 1,
                    FaultKind::DelaySendAt { millis, .. } if *millis < 40 => under += 1,
                    FaultKind::DelaySendAt { .. } => over += 1,
                }
            }
        }
        assert!(crash > 0 && drop > 0 && stall > 0 && under > 0 && over > 0);
    }
}
