//! Deterministic fault injection for the threaded executor.
//!
//! A [`FaultPlan`] scripts worker failures ahead of a run: which processor
//! misbehaves, how ([`FaultKind`]), and at which pivot step. Plans are
//! plain data — fully deterministic and serializable — so a failing
//! recovery scenario can be replayed exactly from its plan (or from the
//! seed that generated it via [`FaultPlan::random_crash`]).
//!
//! Injection lives entirely behind `ExecConfig::fault_plan`
//! (an `Option`): with `None` the per-step check the workers perform is a
//! lookup in an empty slice, so the production path pays nothing
//! measurable.

use hetmmm_partition::Proc;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One scripted worker fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker exits before sending anything at pivot step `step`,
    /// dropping its channel endpoints — peers observe a disconnect.
    CrashAt {
        /// Pivot step at which the worker dies.
        step: usize,
    },
    /// The worker silently skips its sends at pivot step `step` but keeps
    /// running — peers observe a receive timeout (a lost message).
    DropMessageAt {
        /// Pivot step whose outgoing fragments are lost.
        step: usize,
    },
    /// The worker sleeps before sending at pivot step `step`. A delay
    /// shorter than the receive timeout must *not* trigger recovery.
    DelaySendAt {
        /// Pivot step whose sends are delayed.
        step: usize,
        /// Delay duration in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// The pivot step this fault fires at.
    pub fn step(self) -> usize {
        match self {
            FaultKind::CrashAt { step }
            | FaultKind::DropMessageAt { step }
            | FaultKind::DelaySendAt { step, .. } => step,
        }
    }
}

/// A scripted set of `(processor, fault)` pairs for one executor run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scripted faults. Multiple faults per processor are allowed;
    /// each fires at its own step.
    pub faults: Vec<(Proc, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: add one fault.
    pub fn with_fault(mut self, proc: Proc, kind: FaultKind) -> FaultPlan {
        self.faults.push((proc, kind));
        self
    }

    /// Convenience: a single crash of `proc` at pivot step `step`.
    pub fn crash(proc: Proc, step: usize) -> FaultPlan {
        FaultPlan::new().with_fault(proc, FaultKind::CrashAt { step })
    }

    /// A single crash of a random processor at a random pivot step of an
    /// `n x n` multiply, drawn deterministically from `rng`.
    pub fn random_crash<R: Rng>(n: usize, rng: &mut R) -> FaultPlan {
        let proc = Proc::ALL[rng.random_range(0..3usize)];
        let step = rng.random_range(0..n.max(1));
        FaultPlan::crash(proc, step)
    }

    /// The faults scripted for one processor.
    pub fn faults_for(&self, proc: Proc) -> Vec<FaultKind> {
        self.faults
            .iter()
            .filter(|(p, _)| *p == proc)
            .map(|&(_, k)| k)
            .collect()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn faults_for_filters_by_proc() {
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 3 })
            .with_fault(Proc::S, FaultKind::DropMessageAt { step: 1 })
            .with_fault(
                Proc::R,
                FaultKind::DelaySendAt {
                    step: 5,
                    millis: 10,
                },
            );
        assert_eq!(plan.faults_for(Proc::R).len(), 2);
        assert_eq!(
            plan.faults_for(Proc::S),
            vec![FaultKind::DropMessageAt { step: 1 }]
        );
        assert!(plan.faults_for(Proc::P).is_empty());
    }

    #[test]
    fn random_crash_is_deterministic_and_in_range() {
        let n = 16;
        let a = FaultPlan::random_crash(n, &mut StdRng::seed_from_u64(9));
        let b = FaultPlan::random_crash(n, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let (_, kind) = a.faults[0];
        assert!(kind.step() < n);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::crash(Proc::S, 7).with_fault(
            Proc::P,
            FaultKind::DelaySendAt {
                step: 2,
                millis: 50,
            },
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
