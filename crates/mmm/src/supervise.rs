//! Supervision primitives for the fault-tolerant executor: the
//! supervisor-held step checkpoint, the per-cell resume state, and the
//! bounded exponential backoff policy.
//!
//! PR 1's executor recovered by restarting the whole multiply on a
//! degraded partition. This module makes recovery *incremental* and
//! *budgeted*:
//!
//! - Workers periodically bank their C accumulators into a [`Checkpoint`]
//!   owned by the supervisor. Each banked cell carries the pivot step it
//!   is valid **through**, so the bank stays correct even when a worker's
//!   cells start at different resume points (re-assigned cells lag the
//!   worker's original ones).
//! - The supervisor folds banked snapshots into a [`CellState`] — one
//!   `(partial value, next pivot step)` pair per C cell. A re-attempt
//!   starts at [`CellState::resume_step`] (the least-advanced cell) and
//!   each worker applies a step to a cell only if that cell still needs
//!   it, so re-assigned cells replay exactly the missing contributions.
//! - [`BackoffPolicy`] computes the bounded exponential waits used both
//!   by workers re-arming a timed-out receive and by the supervisor
//!   between attempts, all through the installed clock so a
//!   [`hetmmm_obs::FakeClock`] keeps schedules deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One worker's banked progress: its C accumulators, each tagged with the
/// pivot step the value is valid through (all steps `< through` folded in).
#[derive(Clone, Debug, Default)]
pub(crate) struct ProcSnapshot {
    /// `(i, j, partial value, through)` per owned cell.
    pub cells: Vec<(u32, u32, f64, u32)>,
}

/// Supervisor-held checkpoint: one slot per processor, written by the
/// worker threads mid-run and drained by the supervisor after each
/// attempt. Slots are independent mutexes, so workers never contend with
/// each other.
#[derive(Debug, Default)]
pub(crate) struct Checkpoint {
    slots: [Mutex<Option<ProcSnapshot>>; 3],
    writes: AtomicU64,
}

impl Checkpoint {
    pub(crate) fn new() -> Checkpoint {
        Checkpoint::default()
    }

    /// Bank a snapshot for processor index `idx` (replaces any previous
    /// one — later snapshots always dominate earlier ones per cell).
    pub(crate) fn bank(&self, idx: usize, snapshot: ProcSnapshot) {
        let mut slot = self.slots[idx].lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(snapshot);
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the snapshot banked for processor index `idx`, if any.
    pub(crate) fn take(&self, idx: usize) -> Option<ProcSnapshot> {
        self.slots[idx]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
    }

    /// Total bank operations performed so far.
    pub(crate) fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// The supervisor's view of the whole C matrix: per cell, the partial
/// value accumulated so far and the next pivot step the cell still needs.
#[derive(Clone, Debug)]
pub(crate) struct CellState {
    n: usize,
    /// Partial `C[i,j]` values, row-major.
    pub c: Vec<f64>,
    /// `next_k[i*n+j]`: first pivot step not yet folded into `c[i*n+j]`.
    pub next_k: Vec<u32>,
}

impl CellState {
    pub(crate) fn new(n: usize) -> CellState {
        CellState {
            n,
            c: vec![0.0; n * n],
            next_k: vec![0; n * n],
        }
    }

    /// Fold a banked snapshot in: a cell is overwritten only when the
    /// snapshot has folded in strictly more pivot steps than the state.
    pub(crate) fn absorb(&mut self, snapshot: &ProcSnapshot) {
        for &(i, j, v, through) in &snapshot.cells {
            let idx = i as usize * self.n + j as usize;
            if through > self.next_k[idx] {
                self.c[idx] = v;
                self.next_k[idx] = through;
            }
        }
    }

    /// First pivot step any cell still needs — where the next attempt
    /// resumes from. Equals `n` when every cell is complete.
    pub(crate) fn resume_step(&self) -> usize {
        self.next_k.iter().copied().min().unwrap_or(0) as usize
    }

    /// Initial `(accumulator, next step)` pairs for the given cells, in
    /// order — what a worker starts a (re-)attempt from.
    pub(crate) fn initial_for(&self, cells: &[(u32, u32)]) -> (Vec<f64>, Vec<u32>) {
        let mut acc = Vec::with_capacity(cells.len());
        let mut next = Vec::with_capacity(cells.len());
        for &(i, j) in cells {
            let idx = i as usize * self.n + j as usize;
            acc.push(self.c[idx]);
            next.push(self.next_k[idx]);
        }
        (acc, next)
    }
}

/// Bounded exponential backoff: wait `base * 2^i` after the `i`-th retry,
/// capped at `cap`, for at most `attempts` retries.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BackoffPolicy {
    pub attempts: u32,
    pub base: Duration,
    pub cap: Duration,
}

impl BackoffPolicy {
    /// The wait granted by retry number `i` (0-based).
    pub(crate) fn delay(&self, i: u32) -> Duration {
        let factor = 1u32.checked_shl(i).unwrap_or(u32::MAX);
        let nanos = (self.base.as_nanos() as u64).saturating_mul(factor as u64);
        Duration::from_nanos(nanos).min(self.cap)
    }

    /// Total extra wait the policy can grant on top of the base timeout:
    /// the sum of every retry's delay.
    pub(crate) fn total_extra(&self) -> Duration {
        (0..self.attempts).map(|i| self.delay(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = BackoffPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(35),
        };
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(35)); // capped
        assert_eq!(p.delay(3), Duration::from_millis(35));
        assert_eq!(
            p.total_extra(),
            Duration::from_millis(10 + 20 + 35 + 35 + 35)
        );
    }

    #[test]
    fn backoff_survives_huge_retry_indices() {
        let p = BackoffPolicy {
            attempts: 2,
            base: Duration::from_secs(1),
            cap: Duration::from_secs(4),
        };
        assert_eq!(p.delay(63), Duration::from_secs(4));
        assert_eq!(p.delay(200), Duration::from_secs(4));
    }

    #[test]
    fn checkpoint_bank_and_take_round_trip() {
        let cp = Checkpoint::new();
        assert!(cp.take(1).is_none());
        cp.bank(
            1,
            ProcSnapshot {
                cells: vec![(0, 0, 1.5, 3)],
            },
        );
        cp.bank(
            1,
            ProcSnapshot {
                cells: vec![(0, 0, 2.5, 5)],
            },
        );
        assert_eq!(cp.writes(), 2);
        let snap = cp.take(1).expect("banked");
        assert_eq!(snap.cells, vec![(0, 0, 2.5, 5)]);
        assert!(cp.take(1).is_none(), "take drains the slot");
    }

    #[test]
    fn cell_state_absorbs_only_strictly_newer_cells() {
        let mut state = CellState::new(2);
        state.absorb(&ProcSnapshot {
            cells: vec![(0, 0, 1.0, 2), (0, 1, 9.0, 1)],
        });
        // Older/equal `through` must not clobber.
        state.absorb(&ProcSnapshot {
            cells: vec![(0, 0, -7.0, 2), (0, 1, 3.0, 0)],
        });
        assert_eq!(state.c[0], 1.0);
        assert_eq!(state.c[1], 9.0);
        assert_eq!(state.next_k, vec![2, 1, 0, 0]);
        assert_eq!(state.resume_step(), 0);
    }

    #[test]
    fn initial_for_reads_cells_in_order() {
        let mut state = CellState::new(2);
        state.absorb(&ProcSnapshot {
            cells: vec![(1, 1, 4.0, 2)],
        });
        let (acc, next) = state.initial_for(&[(1, 1), (0, 0)]);
        assert_eq!(acc, vec![4.0, 0.0]);
        assert_eq!(next, vec![2, 0]);
    }

    #[test]
    fn resume_step_is_the_least_advanced_cell() {
        let mut state = CellState::new(2);
        state.absorb(&ProcSnapshot {
            cells: vec![
                (0, 0, 1.0, 4),
                (0, 1, 1.0, 4),
                (1, 0, 1.0, 4),
                (1, 1, 1.0, 3),
            ],
        });
        assert_eq!(state.resume_step(), 3);
    }
}
