//! Partition-driven threaded kij executor with fault tolerance.
//!
//! One OS thread per processor plays the role of the paper's three MPI
//! nodes (Section X-B). Each worker holds only the A/B elements its
//! partition assigns to it; at every pivot step `k` the owners of column
//! `k` of A and row `k` of B send the fragments the other workers need
//! (and only those — a worker owning no C element in row `i` never
//! receives `A[i,k]`). The communication statistics the executor gathers
//! are exactly the quantities the analytic models charge for, so the
//! integration tests can check executor-counted traffic against
//! `pairwise_volumes` for any partition.
//!
//! ## Failure model
//!
//! Fragments travel through *bounded* channels and every receive carries a
//! timeout, so a worker that crashes (channel disconnect) or stops sending
//! (receive timeout) is detected rather than deadlocking the run. Workers
//! never panic on peer loss: they return a verdict naming the peer, the
//! supervisor aggregates the verdicts into a single culprit, re-assigns
//! the dead processor's C cells onto the two survivors with
//! [`hetmmm_twoproc::degrade_partition`] (the paper's two-processor
//! degenerate case: Straight-Line below a 3:1 survivor ratio,
//! Square-Corner above), and restarts the multiply on the degraded
//! partition. Failures are scripted deterministically through
//! [`FaultPlan`] for testing; recovery activity is reported in
//! [`RecoveryStats`].

use crate::fault::{FaultKind, FaultPlan};
use crate::matrix::Matrix;
use hetmmm_error::HetmmmError;
use hetmmm_obs::{self as obs, Clock};
use hetmmm_partition::{Partition, Proc};
use hetmmm_twoproc::degrade_partition;
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Per-worker execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcExec {
    /// Scalar updates `C[i,j] += A[i,k] * B[k,j]` performed.
    pub updates: u64,
    /// Fragment elements sent to other workers.
    pub elems_sent: u64,
    /// Fragment elements received from other workers.
    pub elems_recv: u64,
    /// Non-empty fragment messages sent.
    pub messages: u64,
}

/// Counters describing what the fault-tolerance layer did during a run.
/// All zero when no failure occurred.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Worker failures detected (injected or real).
    pub faults_detected: u64,
    /// C elements whose owner changed during survivor re-partitioning.
    pub elems_reassigned: u64,
    /// Times the multiply was restarted on a degraded partition.
    pub retries: u64,
}

/// Aggregate execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Counters per processor, indexed by [`Proc::idx`]. After a recovery
    /// these describe the final (successful) attempt; a dead processor's
    /// slot is all zeros.
    pub per_proc: [ProcExec; 3],
    /// What the fault-tolerance layer did (all zero on a clean run).
    pub recovery: RecoveryStats,
}

impl ExecStats {
    /// Total elements that crossed between workers.
    pub fn total_sent(&self) -> u64 {
        self.per_proc.iter().map(|p| p.elems_sent).sum()
    }

    /// Total scalar updates performed by all workers.
    pub fn total_updates(&self) -> u64 {
        self.per_proc.iter().map(|p| p.updates).sum()
    }

    /// Total non-empty messages exchanged.
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|p| p.messages).sum()
    }

    /// Map the measured counters onto a platform clock, SCB-style: all
    /// fragments serially on one medium (`α` per message, `β` per
    /// element), then computation in parallel at the platform's speeds.
    ///
    /// Because the executor's traffic equals the analytic pairwise volumes
    /// and its update counts equal `N · ∈X`, this reproduces the
    /// `hetmmm_cost::evaluate(Scb, ..)` total exactly up to the latency
    /// term's message granularity — asserted in the integration tests.
    pub fn virtual_scb_time(&self, speeds: [f64; 3], alpha: f64, beta: f64) -> f64 {
        let comm = alpha * self.total_messages() as f64 + beta * self.total_sent() as f64;
        let comp = self
            .per_proc
            .iter()
            .zip(speeds)
            .map(|(p, s)| p.updates as f64 / s)
            .fold(0.0f64, f64::max);
        comm + comp
    }
}

/// Tunables of the threaded executor.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Capacity (in messages) of each worker-to-worker channel. Small and
    /// bounded: a healthy run stays in lockstep, so a handful of steps of
    /// slack is plenty, and a dead receiver can only absorb this much
    /// before its peers notice.
    pub channel_capacity: usize,
    /// How long a worker waits on a peer (per receive, and per stalled
    /// send) before declaring it lost.
    pub recv_timeout: Duration,
    /// Recovery attempts before giving up with
    /// [`HetmmmError::WorkerFailure`]. The default allows the full
    /// degradation chain three → two → one worker.
    pub max_retries: u64,
    /// Scripted faults for deterministic testing. `None` (the default)
    /// injects nothing and costs nothing on the hot path.
    pub fault_plan: Option<FaultPlan>,
    /// Time source for send deadlines and receive-wait measurement. Tests
    /// inject a [`hetmmm_obs::FakeClock`] for deterministic timings; the
    /// default is the shared monotonic clock.
    pub clock: Arc<dyn Clock>,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            channel_capacity: 4,
            recv_timeout: Duration::from_secs(1),
            max_retries: 3,
            fault_plan: None,
            clock: Arc::new(obs::MonotonicClock),
        }
    }
}

impl ExecConfig {
    /// Builder-style: set the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ExecConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style: set the peer-loss detection timeout.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> ExecConfig {
        self.recv_timeout = timeout;
        self
    }

    /// Builder-style: set the time source.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> ExecConfig {
        self.clock = clock;
        self
    }
}

/// One step's fragments from one sender: the pivot step `k`, `(row,
/// value)` pairs of A-column `k` and `(col, value)` pairs of B-row `k`
/// that the receiver needs. The step tag lets a receiver detect a lost
/// message immediately (the next message arrives out of step) instead of
/// silently consuming shifted fragments.
type StepMessage = (usize, Vec<(u32, f64)>, Vec<(u32, f64)>);

/// How a worker's run ended. Workers never panic on peer failure — they
/// report, and the supervisor decides.
enum Verdict {
    /// Finished all `n` steps; carries the owned C cells and counters.
    Completed(Vec<(u32, u32, f64)>, ProcExec),
    /// An injected [`FaultKind::CrashAt`] fired.
    Crashed { step: usize },
    /// A peer disconnected or went silent past the timeout.
    PeerLost {
        peer: Proc,
        step: usize,
        detail: &'static str,
    },
    /// The worker thread itself panicked — a genuine bug rather than a
    /// modeled fault. Carries the panic payload when it was a string.
    Panicked { what: String },
}

/// `try_send` with a deadline: a full channel is retried until `timeout`
/// elapses, so a stalled (but connected) receiver is eventually treated as
/// lost instead of blocking the sender forever.
fn send_with_deadline(
    tx: &SyncSender<StepMessage>,
    mut msg: StepMessage,
    timeout: Duration,
    clock: &dyn Clock,
) -> Result<(), &'static str> {
    let deadline = clock
        .now_nanos()
        .saturating_add(timeout.as_nanos().min(u64::MAX as u128) as u64);
    loop {
        match tx.try_send(msg) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => return Err("channel disconnected"),
            Err(TrySendError::Full(m)) => {
                if clock.now_nanos() >= deadline {
                    return Err("send timed out (peer stalled)");
                }
                msg = m;
                // hetmmm-lint: allow(L005) bounded backoff while a real channel is full
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

struct Worker {
    proc: Proc,
    n: usize,
    /// `a_frags[k]`: owned `(i, A[i,k])` pairs.
    a_frags: Vec<Vec<(u32, f64)>>,
    /// `b_frags[k]`: owned `(j, B[k,j])` pairs.
    b_frags: Vec<Vec<(u32, f64)>>,
    /// Owned C cells.
    c_cells: Vec<(u32, u32)>,
    /// `row_needed[Y][i]`: does processor `Y` own C elements in row `i`?
    row_needed: [Vec<bool>; 3],
    /// `col_needed[Y][j]`.
    col_needed: [Vec<bool>; 3],
    /// Outgoing channels to the other active workers.
    out: Vec<(Proc, SyncSender<StepMessage>)>,
    /// Incoming channels from the other active workers.
    inbox: Vec<(Proc, Receiver<StepMessage>)>,
    /// This worker's scripted faults (empty outside injection tests).
    faults: Vec<FaultKind>,
    /// Peer-loss detection timeout.
    timeout: Duration,
    /// Time source for send deadlines and receive-wait measurement.
    clock: Arc<dyn Clock>,
}

impl Worker {
    /// Report a lost peer through the facade before returning the verdict.
    fn peer_lost(&self, peer: Proc, step: usize, detail: &'static str) -> Verdict {
        if obs::enabled() {
            obs::emit(obs::EventKind::ExecPeerLost {
                worker: self.proc.to_string(),
                peer: peer.to_string(),
                step: step as u64,
                detail: detail.to_string(),
            });
        }
        Verdict::PeerLost { peer, step, detail }
    }

    fn run(mut self) -> Verdict {
        let _span = obs::span_arg("exec.worker", self.proc.idx() as u64);
        let n = self.n;
        let mut stats = ProcExec::default();
        let mut a_col = vec![0.0f64; n];
        let mut b_row = vec![0.0f64; n];
        // C accumulators, one per owned cell (same order as c_cells).
        let mut acc = vec![0.0f64; self.c_cells.len()];

        for k in 0..n {
            // Injected faults scripted for this step.
            let mut drop_sends = false;
            for &fault in &self.faults {
                match fault {
                    FaultKind::CrashAt { step } if step == k => {
                        // Exiting drops our channel endpoints; peers see a
                        // disconnect.
                        return Verdict::Crashed { step: k };
                    }
                    FaultKind::DropMessageAt { step } if step == k => drop_sends = true,
                    FaultKind::DelaySendAt { step, millis } if step == k => {
                        // hetmmm-lint: allow(L005) the injected stall IS the modeled fault
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    _ => {}
                }
            }

            // Send the needed slices of our fragments to each peer.
            if !drop_sends {
                for (peer, tx) in &self.out {
                    let a_part: Vec<(u32, f64)> = self.a_frags[k]
                        .iter()
                        .copied()
                        .filter(|&(i, _)| self.row_needed[peer.idx()][i as usize])
                        .collect();
                    let b_part: Vec<(u32, f64)> = self.b_frags[k]
                        .iter()
                        .copied()
                        .filter(|&(j, _)| self.col_needed[peer.idx()][j as usize])
                        .collect();
                    let payload = (a_part.len() + b_part.len()) as u64;
                    match send_with_deadline(tx, (k, a_part, b_part), self.timeout, &*self.clock) {
                        Ok(()) => {
                            stats.elems_sent += payload;
                            if payload > 0 {
                                stats.messages += 1;
                            }
                            if obs::enabled() && payload > 0 {
                                obs::emit(obs::EventKind::ExecSend {
                                    from: self.proc.to_string(),
                                    to: peer.to_string(),
                                    step: k as u64,
                                    elems: payload,
                                });
                            }
                        }
                        Err(detail) => return self.peer_lost(*peer, k, detail),
                    }
                }
            }
            // Own fragments.
            for &(i, v) in &self.a_frags[k] {
                a_col[i as usize] = v;
            }
            for &(j, v) in &self.b_frags[k] {
                b_row[j as usize] = v;
            }
            // Receive every active peer's fragments.
            for (peer, rx) in &self.inbox {
                // Measure blocked time only when someone is listening; the
                // uninstrumented path stays two relaxed loads per receive.
                let timing = obs::enabled() || obs::metrics_enabled();
                let wait_start = if timing { self.clock.now_nanos() } else { 0 };
                match rx.recv_timeout(self.timeout) {
                    Ok((msg_step, a_part, b_part)) => {
                        if msg_step != k {
                            return self.peer_lost(
                                *peer,
                                k,
                                "out-of-step message (lost message upstream)",
                            );
                        }
                        let received = (a_part.len() + b_part.len()) as u64;
                        stats.elems_recv += received;
                        if timing {
                            let wait_nanos = self.clock.now_nanos().saturating_sub(wait_start);
                            if obs::metrics_enabled() {
                                obs::metrics()
                                    .histogram(obs::metrics::names::EXEC_RECV_WAIT_NANOS, || {
                                        obs::Histogram::exponential(1000, 4, 12)
                                    })
                                    .observe(wait_nanos);
                            }
                            if obs::enabled() {
                                obs::emit(obs::EventKind::ExecRecv {
                                    from: peer.to_string(),
                                    to: self.proc.to_string(),
                                    step: k as u64,
                                    elems: received,
                                    wait_nanos,
                                });
                            }
                        }
                        for (i, v) in a_part {
                            a_col[i as usize] = v;
                        }
                        for (j, v) in b_part {
                            b_row[j as usize] = v;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        return self.peer_lost(*peer, k, "receive timed out")
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return self.peer_lost(*peer, k, "channel disconnected")
                    }
                }
            }
            // Update every owned C element.
            for (cell, accum) in self.c_cells.iter().zip(acc.iter_mut()) {
                let (i, j) = (cell.0 as usize, cell.1 as usize);
                *accum += a_col[i] * b_row[j];
            }
            stats.updates += self.c_cells.len() as u64;
        }

        let result = self
            .c_cells
            .drain(..)
            .zip(acc)
            .map(|((i, j), v)| (i, j, v))
            .collect();
        Verdict::Completed(result, stats)
    }
}

/// One worker's completed contribution: its processor, C updates, stats.
type WorkerDone = (Proc, Vec<(u32, u32, f64)>, ProcExec);

/// What one attempt (one spawn of the active workers) produced.
enum Attempt {
    Done(Vec<WorkerDone>),
    Failed {
        dead: Proc,
        step: Option<usize>,
        detail: String,
    },
}

/// Run the active workers once over `part` and aggregate their verdicts.
fn run_attempt(
    a: &Matrix,
    b: &Matrix,
    part: &Partition,
    active: &[Proc],
    config: &ExecConfig,
) -> Attempt {
    let n = part.n();

    // Bounded channels between each ordered pair of active workers.
    let mut txs: Vec<Vec<Option<SyncSender<StepMessage>>>> = vec![vec![None, None, None]; 3];
    let mut rxs: Vec<Vec<Option<Receiver<StepMessage>>>> =
        (0..3).map(|_| vec![None, None, None]).collect();
    for &x in active {
        for &y in active {
            if x == y {
                continue;
            }
            let (tx, rx) = sync_channel(config.channel_capacity);
            txs[x.idx()][y.idx()] = Some(tx);
            rxs[y.idx()][x.idx()] = Some(rx);
        }
    }

    // Need maps shared by value (small).
    let row_needed: [Vec<bool>; 3] =
        Proc::ALL.map(|y| (0..n).map(|i| part.row_has(y, i)).collect());
    let col_needed: [Vec<bool>; 3] =
        Proc::ALL.map(|y| (0..n).map(|j| part.col_has(y, j)).collect());

    let mut workers: Vec<Worker> = Vec::with_capacity(active.len());
    for &x in active {
        let mut a_frags = vec![Vec::new(); n];
        let mut b_frags = vec![Vec::new(); n];
        let mut c_cells = Vec::with_capacity(part.elems(x));
        for (i, j) in part.cells_of(x) {
            // A element (i, j) belongs to column-fragment j; B element
            // (i, j) belongs to row-fragment i.
            a_frags[j].push((i as u32, a.get(i, j)));
            b_frags[i].push((j as u32, b.get(i, j)));
            c_cells.push((i as u32, j as u32));
        }
        let out: Vec<(Proc, SyncSender<StepMessage>)> = x
            .others()
            .into_iter()
            .filter_map(|y| txs[x.idx()][y.idx()].take().map(|tx| (y, tx)))
            .collect();
        let inbox: Vec<(Proc, Receiver<StepMessage>)> = x
            .others()
            .into_iter()
            .filter_map(|y| rxs[x.idx()][y.idx()].take().map(|rx| (y, rx)))
            .collect();
        let faults = config
            .fault_plan
            .as_ref()
            .map(|plan| plan.faults_for(x))
            .unwrap_or_default();
        workers.push(Worker {
            proc: x,
            n,
            a_frags,
            b_frags,
            c_cells,
            row_needed: row_needed.clone(),
            col_needed: col_needed.clone(),
            out,
            inbox,
            faults,
            timeout: config.recv_timeout,
            clock: Arc::clone(&config.clock),
        });
    }

    let mut verdicts: Vec<(Proc, Verdict)> = Vec::with_capacity(active.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                let proc = w.proc;
                (proc, scope.spawn(move || w.run()))
            })
            .collect();
        for (proc, handle) in handles {
            // Workers return verdicts instead of panicking; a panic here
            // is a genuine bug, not a modeled fault — but the coordinator
            // still degrades gracefully, blaming the panicked worker,
            // rather than taking the whole run down with it.
            let verdict = handle.join().unwrap_or_else(|payload| {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|m| (*m).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Verdict::Panicked { what }
            });
            verdicts.push((proc, verdict));
        }
    });

    let mut done: Vec<WorkerDone> = Vec::new();
    let mut failed = Vec::new();
    for (proc, v) in verdicts {
        match v {
            Verdict::Completed(cells, stats) => done.push((proc, cells, stats)),
            other => failed.push((proc, other)),
        }
    }
    if failed.is_empty() {
        return Attempt::Done(done);
    }

    // Blame aggregation, weighted by how conclusive each report is. An
    // explicit crash is a confession (+100). An out-of-step message proves
    // the named sender skipped or lost a send (+10). A receive timeout is
    // strong evidence of a stall (+3). A bare disconnect is weak (+1): it
    // is often just the cascade from an innocent peer that already exited
    // after detecting the real failure. Without the weighting, the first
    // detector's early exit can out-vote the actual culprit. Ties break
    // toward the lower processor index, deterministically.
    let mut blame = [0u32; 3];
    let mut dead_step: [Option<usize>; 3] = [None; 3];
    let mut dead_detail: [Option<String>; 3] = [None, None, None];
    for (proc, verdict) in &failed {
        match verdict {
            Verdict::Completed(..) => {}
            Verdict::Panicked { what } => {
                blame[proc.idx()] += 100;
                dead_detail[proc.idx()] = Some(format!("worker panicked: {what}"));
            }
            Verdict::Crashed { step } => {
                blame[proc.idx()] += 100;
                dead_step[proc.idx()] = Some(*step);
                dead_detail[proc.idx()] = Some("injected crash".to_string());
            }
            Verdict::PeerLost { peer, step, detail } => {
                blame[peer.idx()] += if detail.contains("out-of-step") {
                    10
                } else if detail.contains("timed out") {
                    3
                } else {
                    1
                };
                let slot = &mut dead_step[peer.idx()];
                if slot.is_none_or(|s| *step < s) {
                    *slot = Some(*step);
                    dead_detail[peer.idx()] = Some(format!("reported lost by {proc}: {detail}"));
                }
            }
        }
    }
    // Strict `>` keeps the first maximum, preferring the lower processor
    // index on ties.
    let mut dead_idx = 0;
    for i in 1..3 {
        if blame[i] > blame[dead_idx] {
            dead_idx = i;
        }
    }
    let dead = Proc::ALL[dead_idx];
    if obs::enabled() {
        obs::emit(obs::EventKind::ExecBlame {
            dead: dead.to_string(),
            weights: blame.iter().map(|&w| w as u64).collect(),
        });
    }
    Attempt::Failed {
        dead,
        step: dead_step[dead_idx],
        detail: dead_detail[dead_idx]
            .take()
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

/// Multiply `A x B` with ownership given by `part`, one thread per
/// processor, fragments exchanged through bounded channels. Returns the
/// assembled C and the executor statistics.
///
/// Fails with [`HetmmmError::DimensionMismatch`] if the matrices and
/// partition disagree on `n`, and with [`HetmmmError::WorkerFailure`] /
/// [`HetmmmError::NoSurvivors`] if workers die beyond what survivor
/// re-partitioning can absorb (see [`multiply_partitioned_with`] to
/// configure that behaviour and to inject faults).
///
/// ```
/// use hetmmm_mmm::{kij_serial, multiply_partitioned, Matrix};
/// use hetmmm_partition::{Partition, Proc};
///
/// let a = Matrix::from_fn(8, |i, j| (i + j) as f64);
/// let b = Matrix::identity(8);
/// let part = Partition::from_fn(8, |i, _| if i < 4 { Proc::P } else { Proc::S });
/// let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
/// assert!(c.max_abs_diff(&a) < 1e-12); // A x I = A
/// assert_eq!(stats.total_sent(), part.voc());
/// assert_eq!(stats.recovery.faults_detected, 0);
/// ```
pub fn multiply_partitioned(
    a: &Matrix,
    b: &Matrix,
    part: &Partition,
) -> Result<(Matrix, ExecStats), HetmmmError> {
    multiply_partitioned_with(a, b, part, &ExecConfig::default())
}

/// [`multiply_partitioned`] with explicit executor configuration —
/// channel capacity, peer-loss timeout, retry budget and (for tests) a
/// deterministic [`FaultPlan`].
///
/// On worker failure the dead processor's C cells are re-assigned onto
/// the survivors ([`hetmmm_twoproc::degrade_partition`]; with a single
/// survivor left, it inherits everything) and the multiply restarts on
/// the degraded partition. `stats.recovery` reports the activity; the
/// returned C is always verified-correct in tests against `kij_serial`.
pub fn multiply_partitioned_with(
    a: &Matrix,
    b: &Matrix,
    part: &Partition,
    config: &ExecConfig,
) -> Result<(Matrix, ExecStats), HetmmmError> {
    let n = part.n();
    if a.n() != n {
        return Err(HetmmmError::dimension_mismatch("A vs partition", a.n(), n));
    }
    if b.n() != n {
        return Err(HetmmmError::dimension_mismatch("B vs partition", b.n(), n));
    }

    let mut active: Vec<Proc> = Proc::ALL.to_vec();
    let mut current = part.clone();
    let mut recovery = RecoveryStats::default();
    let _span = obs::span_arg("exec.run", n as u64);

    loop {
        match run_attempt(a, b, &current, &active, config) {
            Attempt::Done(results) => {
                let mut c = Matrix::zeros(n);
                let mut stats = ExecStats {
                    recovery,
                    ..ExecStats::default()
                };
                for (proc, cells, proc_stats) in results {
                    stats.per_proc[proc.idx()] = proc_stats;
                    for (i, j, v) in cells {
                        c.set(i as usize, j as usize, v);
                    }
                }
                if obs::metrics_enabled() {
                    let m = obs::metrics();
                    for p in Proc::ALL {
                        let pe = &stats.per_proc[p.idx()];
                        m.counter(obs::metrics::names::EXEC_UPDATES[p.idx()])
                            .add(pe.updates);
                        m.counter(obs::metrics::names::EXEC_ELEMS_SENT[p.idx()])
                            .add(pe.elems_sent);
                    }
                    m.counter(obs::metrics::names::EXEC_RECOVERIES)
                        .add(recovery.faults_detected);
                }
                return Ok((c, stats));
            }
            Attempt::Failed { dead, step, detail } => {
                recovery.faults_detected += 1;
                active.retain(|&p| p != dead);
                if active.is_empty() {
                    return Err(HetmmmError::NoSurvivors {
                        retries: recovery.retries,
                    });
                }
                if recovery.retries >= config.max_retries {
                    return Err(HetmmmError::WorkerFailure {
                        proc_q: dead.q(),
                        step,
                        detail: format!("{detail} (retry budget exhausted)"),
                    });
                }
                recovery.retries += 1;
                let reassigned_now;
                if active.len() == 2 {
                    let degraded = degrade_partition(&current, dead);
                    reassigned_now = degraded.reassigned as u64;
                    current = degraded.partition;
                } else {
                    // Last survivor inherits everything that is not
                    // already its own.
                    let survivor = active[0];
                    let orphans: Vec<(usize, usize)> = Proc::ALL
                        .into_iter()
                        .filter(|&p| p != survivor)
                        .flat_map(|p| current.cells_of(p).collect::<Vec<_>>())
                        .collect();
                    reassigned_now = orphans.len() as u64;
                    for (i, j) in orphans {
                        current.set(i, j, survivor);
                    }
                }
                recovery.elems_reassigned += reassigned_now;
                if obs::enabled() {
                    obs::emit(obs::EventKind::ExecRepartition {
                        dead: dead.to_string(),
                        reassigned: reassigned_now,
                        survivors: active.len() as u64,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::kij_serial;
    use hetmmm_partition::{pairwise_volumes, PartitionBuilder, Rect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrices(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (Matrix::random(n, &mut rng), Matrix::random(n, &mut rng))
    }

    /// Short detection timeout so drop-message tests stay fast.
    fn fast_config() -> ExecConfig {
        ExecConfig::default().with_recv_timeout(Duration::from_millis(200))
    }

    #[test]
    fn matches_serial_on_strips() {
        let n = 24;
        let (a, b) = random_matrices(n, 7);
        let part = Partition::from_fn(n, |i, _| {
            if i < 8 {
                Proc::P
            } else if i < 16 {
                Proc::R
            } else {
                Proc::S
            }
        });
        let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        let reference = kij_serial(&a, &b);
        assert!(c.max_abs_diff(&reference) < 1e-10);
        assert_eq!(stats.total_updates(), (n * n * n) as u64);
        assert_eq!(stats.recovery, RecoveryStats::default());
    }

    #[test]
    fn matches_serial_on_square_corner() {
        let n = 20;
        let (a, b) = random_matrices(n, 8);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 5), Proc::R)
            .rect(Rect::new(14, 19, 14, 19), Proc::S)
            .build();
        let (c, _) = multiply_partitioned(&a, &b, &part).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    }

    #[test]
    fn matches_serial_on_scatter() {
        // Even a pathological scatter must compute correctly.
        let n = 16;
        let (a, b) = random_matrices(n, 9);
        let part = Partition::from_fn(n, |i, j| match (i * 7 + j * 3) % 4 {
            0 => Proc::R,
            1 => Proc::S,
            _ => Proc::P,
        });
        let (c, _) = multiply_partitioned(&a, &b, &part).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    }

    #[test]
    fn rejects_mismatched_dimensions() {
        let (a, _) = random_matrices(8, 13);
        let (_, b) = random_matrices(9, 13);
        let part = Partition::new(8, Proc::P);
        match multiply_partitioned(&a, &b, &part) {
            Err(HetmmmError::DimensionMismatch { left, right, .. }) => {
                assert_eq!((left, right), (9, 8));
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        let part = Partition::new(10, Proc::P);
        assert!(matches!(
            multiply_partitioned(&a, &a, &part),
            Err(HetmmmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn traffic_matches_pairwise_volumes() {
        // The executor sends exactly the elements the analytic accounting
        // charges for: fragment element (i,k) of A goes to Y iff Y owns C
        // cells in row i, etc.
        let n = 18;
        let (a, b) = random_matrices(n, 10);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 8, 0, 5), Proc::R)
            .rect(Rect::new(10, 17, 9, 17), Proc::S)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        let vol = pairwise_volumes(&part);
        let expect: u64 = vol.iter().flatten().sum();
        assert_eq!(stats.total_sent(), expect);
        assert_eq!(stats.total_sent(), part.voc());
        // Per-sender totals match the row sums of the volume matrix.
        for x in Proc::ALL {
            let sent: u64 = vol[x.idx()].iter().sum();
            assert_eq!(stats.per_proc[x.idx()].elems_sent, sent, "{x}");
        }
    }

    #[test]
    fn single_owner_partition_sends_nothing() {
        let n = 8;
        let (a, b) = random_matrices(n, 11);
        let part = Partition::new(n, Proc::P);
        let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.total_sent(), 0);
        assert_eq!(stats.per_proc[Proc::P.idx()].updates, (n * n * n) as u64);
    }

    #[test]
    fn updates_proportional_to_ownership() {
        let n = 12;
        let (a, b) = random_matrices(n, 12);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 11), Proc::R)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        assert_eq!(
            stats.per_proc[Proc::R.idx()].updates,
            (n * part.elems(Proc::R)) as u64
        );
        assert_eq!(
            stats.per_proc[Proc::P.idx()].updates,
            (n * part.elems(Proc::P)) as u64
        );
    }

    #[test]
    fn virtual_scb_time_matches_cost_model_without_latency() {
        let n = 18;
        let (a, b) = random_matrices(n, 21);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 8, 0, 5), Proc::R)
            .rect(Rect::new(10, 17, 9, 17), Proc::S)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        // Speeds indexed [R, S, P] to match Proc::idx.
        let beta = 1e-9;
        let speeds = [2e9, 1e9, 4e9];
        let virt = stats.virtual_scb_time(speeds, 0.0, beta);
        // Manual SCB: voc * beta + max over processors of
        // (N * elems) updates at the processor's speed.
        let comm = part.voc() as f64 * beta;
        let comp = [Proc::R, Proc::S, Proc::P]
            .iter()
            .map(|&p| (n * part.elems(p)) as f64 / speeds[p.idx()])
            .fold(0.0f64, f64::max);
        assert!((virt - (comm + comp)).abs() < 1e-15);
    }

    #[test]
    fn message_count_bounded_by_steps() {
        let n = 12;
        let (a, b) = random_matrices(n, 22);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 11), Proc::R)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        // Each worker sends at most 2 peers x n steps non-empty messages.
        for p in Proc::ALL {
            assert!(stats.per_proc[p.idx()].messages <= (2 * n) as u64);
        }
        assert!(stats.total_messages() > 0);
    }

    // ---- fault-tolerance tests ----

    fn three_way(n: usize) -> Partition {
        PartitionBuilder::new(n)
            .rect(Rect::new(0, n / 3 - 1, 0, n - 1), Proc::R)
            .rect(Rect::new(n / 3, 2 * n / 3 - 1, 0, n - 1), Proc::S)
            .build()
    }

    #[test]
    fn injected_crash_recovers_with_correct_result() {
        let n = 18;
        let (a, b) = random_matrices(n, 31);
        let part = three_way(n);
        let dead_elems = part.elems(Proc::S) as u64;
        let config = fast_config().with_fault_plan(FaultPlan::crash(Proc::S, n / 2));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.faults_detected, 1);
        assert_eq!(stats.recovery.retries, 1);
        assert_eq!(stats.recovery.elems_reassigned, dead_elems);
        // The dead worker contributed nothing to the final attempt.
        assert_eq!(stats.per_proc[Proc::S.idx()], ProcExec::default());
    }

    #[test]
    fn crash_at_step_zero_recovers() {
        let n = 12;
        let (a, b) = random_matrices(n, 32);
        let part = three_way(n);
        let config = fast_config().with_fault_plan(FaultPlan::crash(Proc::R, 0));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.faults_detected, 1);
    }

    #[test]
    fn dropped_message_detected_by_timeout_and_recovered() {
        let n = 12;
        let (a, b) = random_matrices(n, 33);
        let part = three_way(n);
        let plan = FaultPlan::new().with_fault(Proc::P, FaultKind::DropMessageAt { step: 3 });
        let config = fast_config().with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert!(stats.recovery.faults_detected >= 1);
        assert_eq!(stats.per_proc[Proc::P.idx()], ProcExec::default());
    }

    #[test]
    fn short_delay_does_not_trigger_recovery() {
        let n = 10;
        let (a, b) = random_matrices(n, 34);
        let part = three_way(n);
        let plan = FaultPlan::new().with_fault(
            Proc::S,
            FaultKind::DelaySendAt {
                step: 2,
                millis: 20,
            },
        );
        let config = ExecConfig::default().with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery, RecoveryStats::default());
    }

    #[test]
    fn two_crashes_degrade_to_single_survivor() {
        let n = 15;
        let (a, b) = random_matrices(n, 35);
        let part = three_way(n);
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 2 })
            .with_fault(Proc::S, FaultKind::CrashAt { step: 5 });
        let config = fast_config().with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.faults_detected, 2);
        assert_eq!(stats.recovery.retries, 2);
        // Everything ended up on P: N * N^2 updates.
        assert_eq!(stats.per_proc[Proc::P.idx()].updates, (n * n * n) as u64);
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn all_workers_dead_reports_no_survivors() {
        let n = 9;
        let (a, b) = random_matrices(n, 36);
        let part = three_way(n);
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 0 })
            .with_fault(Proc::S, FaultKind::CrashAt { step: 1 })
            .with_fault(Proc::P, FaultKind::CrashAt { step: 2 });
        let config = fast_config().with_fault_plan(plan);
        match multiply_partitioned_with(&a, &b, &part, &config) {
            Err(HetmmmError::NoSurvivors { retries }) => assert_eq!(retries, 2),
            other => panic!("expected NoSurvivors, got {other:?}"),
        }
    }

    #[test]
    fn retry_budget_exhaustion_reports_worker_failure() {
        let n = 9;
        let (a, b) = random_matrices(n, 37);
        let part = three_way(n);
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 0 })
            .with_fault(Proc::S, FaultKind::CrashAt { step: 1 });
        let mut config = fast_config().with_fault_plan(plan);
        config.max_retries = 1;
        match multiply_partitioned_with(&a, &b, &part, &config) {
            Err(HetmmmError::WorkerFailure { proc_q, .. }) => {
                assert_eq!(proc_q, Proc::S.q());
            }
            other => panic!("expected WorkerFailure, got {other:?}"),
        }
    }

    #[test]
    fn crash_of_sole_owner_is_survivable() {
        // P owns every cell and dies: the empty survivors inherit all of
        // it, split between them.
        let n = 10;
        let (a, b) = random_matrices(n, 38);
        let part = Partition::new(n, Proc::P);
        let config = fast_config().with_fault_plan(FaultPlan::crash(Proc::P, 4));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.elems_reassigned, (n * n) as u64);
        assert_eq!(stats.per_proc[Proc::P.idx()], ProcExec::default());
    }
}
