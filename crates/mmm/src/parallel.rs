//! Partition-driven threaded kij executor.
//!
//! One OS thread per processor plays the role of the paper's three MPI
//! nodes (Section X-B). Each worker holds only the A/B elements its
//! partition assigns to it; at every pivot step `k` the owners of column
//! `k` of A and row `k` of B send the fragments the other workers need
//! (and only those — a worker owning no C element in row `i` never
//! receives `A[i,k]`). The communication statistics the executor gathers
//! are exactly the quantities the analytic models charge for, so the
//! integration tests can check executor-counted traffic against
//! `pairwise_volumes` for any partition.

use crate::matrix::Matrix;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hetmmm_partition::{Partition, Proc};
use serde::{Deserialize, Serialize};

/// Per-worker execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcExec {
    /// Scalar updates `C[i,j] += A[i,k] * B[k,j]` performed.
    pub updates: u64,
    /// Fragment elements sent to other workers.
    pub elems_sent: u64,
    /// Fragment elements received from other workers.
    pub elems_recv: u64,
    /// Non-empty fragment messages sent.
    pub messages: u64,
}

/// Aggregate execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Counters per processor, indexed by [`Proc::idx`].
    pub per_proc: [ProcExec; 3],
}

impl ExecStats {
    /// Total elements that crossed between workers.
    pub fn total_sent(&self) -> u64 {
        self.per_proc.iter().map(|p| p.elems_sent).sum()
    }

    /// Total scalar updates performed by all workers.
    pub fn total_updates(&self) -> u64 {
        self.per_proc.iter().map(|p| p.updates).sum()
    }

    /// Total non-empty messages exchanged.
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|p| p.messages).sum()
    }

    /// Map the measured counters onto a platform clock, SCB-style: all
    /// fragments serially on one medium (`α` per message, `β` per
    /// element), then computation in parallel at the platform's speeds.
    ///
    /// Because the executor's traffic equals the analytic pairwise volumes
    /// and its update counts equal `N · ∈X`, this reproduces the
    /// `hetmmm_cost::evaluate(Scb, ..)` total exactly up to the latency
    /// term's message granularity — asserted in the integration tests.
    pub fn virtual_scb_time(
        &self,
        speeds: [f64; 3],
        alpha: f64,
        beta: f64,
    ) -> f64 {
        let comm = alpha * self.total_messages() as f64
            + beta * self.total_sent() as f64;
        let comp = self
            .per_proc
            .iter()
            .zip(speeds)
            .map(|(p, s)| p.updates as f64 / s)
            .fold(0.0f64, f64::max);
        comm + comp
    }
}

/// One step's fragments from one sender: `(row, value)` pairs of A-column
/// `k` and `(col, value)` pairs of B-row `k` that the receiver needs.
type StepMessage = (Vec<(u32, f64)>, Vec<(u32, f64)>);

struct Worker {
    proc: Proc,
    n: usize,
    /// `a_frags[k]`: owned `(i, A[i,k])` pairs.
    a_frags: Vec<Vec<(u32, f64)>>,
    /// `b_frags[k]`: owned `(j, B[k,j])` pairs.
    b_frags: Vec<Vec<(u32, f64)>>,
    /// Owned C cells.
    c_cells: Vec<(u32, u32)>,
    /// `row_needed[Y][i]`: does processor `Y` own C elements in row `i`?
    row_needed: [Vec<bool>; 3],
    /// `col_needed[Y][j]`.
    col_needed: [Vec<bool>; 3],
    /// Outgoing channels to the two other workers.
    out: Vec<(Proc, Sender<StepMessage>)>,
    /// Incoming channels from the two other workers.
    inbox: Vec<Receiver<StepMessage>>,
}

impl Worker {
    fn run(mut self) -> (Vec<(u32, u32, f64)>, ProcExec) {
        let n = self.n;
        let mut stats = ProcExec::default();
        let mut a_col = vec![0.0f64; n];
        let mut b_row = vec![0.0f64; n];
        // C accumulators, one per owned cell (same order as c_cells).
        let mut acc = vec![0.0f64; self.c_cells.len()];

        for k in 0..n {
            // Send the needed slices of our fragments to each peer.
            for (peer, tx) in &self.out {
                let a_part: Vec<(u32, f64)> = self.a_frags[k]
                    .iter()
                    .copied()
                    .filter(|&(i, _)| self.row_needed[peer.idx()][i as usize])
                    .collect();
                let b_part: Vec<(u32, f64)> = self.b_frags[k]
                    .iter()
                    .copied()
                    .filter(|&(j, _)| self.col_needed[peer.idx()][j as usize])
                    .collect();
                let payload = (a_part.len() + b_part.len()) as u64;
                stats.elems_sent += payload;
                if payload > 0 {
                    stats.messages += 1;
                }
                tx.send((a_part, b_part)).expect("peer hung up");
            }
            // Own fragments.
            for &(i, v) in &self.a_frags[k] {
                a_col[i as usize] = v;
            }
            for &(j, v) in &self.b_frags[k] {
                b_row[j as usize] = v;
            }
            // Receive both peers' fragments.
            for rx in &self.inbox {
                let (a_part, b_part) = rx.recv().expect("peer died");
                stats.elems_recv += (a_part.len() + b_part.len()) as u64;
                for (i, v) in a_part {
                    a_col[i as usize] = v;
                }
                for (j, v) in b_part {
                    b_row[j as usize] = v;
                }
            }
            // Update every owned C element.
            for (cell, accum) in self.c_cells.iter().zip(acc.iter_mut()) {
                let (i, j) = (cell.0 as usize, cell.1 as usize);
                *accum += a_col[i] * b_row[j];
            }
            stats.updates += self.c_cells.len() as u64;
        }

        let result = self
            .c_cells
            .drain(..)
            .zip(acc)
            .map(|((i, j), v)| (i, j, v))
            .collect();
        (result, stats)
    }
}

/// Multiply `A x B` with ownership given by `part`, one thread per
/// processor, fragments exchanged through channels. Returns the assembled
/// C and the executor statistics.
///
/// Panics if the matrices and partition disagree on `n`.
///
/// ```
/// use hetmmm_mmm::{kij_serial, multiply_partitioned, Matrix};
/// use hetmmm_partition::{Partition, Proc};
///
/// let a = Matrix::from_fn(8, |i, j| (i + j) as f64);
/// let b = Matrix::identity(8);
/// let part = Partition::from_fn(8, |i, _| if i < 4 { Proc::P } else { Proc::S });
/// let (c, stats) = multiply_partitioned(&a, &b, &part);
/// assert!(c.max_abs_diff(&a) < 1e-12); // A x I = A
/// assert_eq!(stats.total_sent(), part.voc());
/// ```
pub fn multiply_partitioned(a: &Matrix, b: &Matrix, part: &Partition) -> (Matrix, ExecStats) {
    let n = a.n();
    assert_eq!(n, b.n(), "A and B must agree");
    assert_eq!(n, part.n(), "partition must match the matrices");

    // Channels between each ordered pair of workers.
    let mut txs: Vec<Vec<Option<Sender<StepMessage>>>> = vec![vec![None, None, None]; 3];
    let mut rxs: Vec<Vec<Option<Receiver<StepMessage>>>> = vec![vec![None, None, None]; 3];
    for x in Proc::ALL {
        for y in Proc::ALL {
            if x == y {
                continue;
            }
            let (tx, rx) = unbounded();
            txs[x.idx()][y.idx()] = Some(tx);
            rxs[y.idx()][x.idx()] = Some(rx);
        }
    }

    // Need maps shared by value (small).
    let row_needed: [Vec<bool>; 3] =
        Proc::ALL.map(|y| (0..n).map(|i| part.row_has(y, i)).collect());
    let col_needed: [Vec<bool>; 3] =
        Proc::ALL.map(|y| (0..n).map(|j| part.col_has(y, j)).collect());

    let mut workers: Vec<Worker> = Vec::with_capacity(3);
    for x in Proc::ALL {
        let mut a_frags = vec![Vec::new(); n];
        let mut b_frags = vec![Vec::new(); n];
        let mut c_cells = Vec::with_capacity(part.elems(x));
        for i in 0..n {
            for j in 0..n {
                if part.get(i, j) == x {
                    // A element (i, j) belongs to column-fragment j.
                    a_frags[j].push((i as u32, a.get(i, j)));
                    // B element (i, j) belongs to row-fragment i.
                    b_frags[i].push((j as u32, b.get(i, j)));
                    c_cells.push((i as u32, j as u32));
                }
            }
        }
        let out: Vec<(Proc, Sender<StepMessage>)> = x
            .others()
            .into_iter()
            .map(|y| (y, txs[x.idx()][y.idx()].take().expect("channel wired")))
            .collect();
        let inbox: Vec<Receiver<StepMessage>> = x
            .others()
            .into_iter()
            .map(|y| rxs[x.idx()][y.idx()].take().expect("channel wired"))
            .collect();
        workers.push(Worker {
            proc: x,
            n,
            a_frags,
            b_frags,
            c_cells,
            row_needed: row_needed.clone(),
            col_needed: col_needed.clone(),
            out,
            inbox,
        });
    }

    let mut c = Matrix::zeros(n);
    let mut stats = ExecStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                let proc = w.proc;
                (proc, scope.spawn(move || w.run()))
            })
            .collect();
        for (proc, handle) in handles {
            let (cells, proc_stats) = handle.join().expect("worker panicked");
            stats.per_proc[proc.idx()] = proc_stats;
            for (i, j, v) in cells {
                c.set(i as usize, j as usize, v);
            }
        }
    });
    (c, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::kij_serial;
    use hetmmm_partition::{pairwise_volumes, PartitionBuilder, Rect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrices(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (Matrix::random(n, &mut rng), Matrix::random(n, &mut rng))
    }

    #[test]
    fn matches_serial_on_strips() {
        let n = 24;
        let (a, b) = random_matrices(n, 7);
        let part = Partition::from_fn(n, |i, _| {
            if i < 8 {
                Proc::P
            } else if i < 16 {
                Proc::R
            } else {
                Proc::S
            }
        });
        let (c, stats) = multiply_partitioned(&a, &b, &part);
        let reference = kij_serial(&a, &b);
        assert!(c.max_abs_diff(&reference) < 1e-10);
        assert_eq!(stats.total_updates(), (n * n * n) as u64);
    }

    #[test]
    fn matches_serial_on_square_corner() {
        let n = 20;
        let (a, b) = random_matrices(n, 8);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 5), Proc::R)
            .rect(Rect::new(14, 19, 14, 19), Proc::S)
            .build();
        let (c, _) = multiply_partitioned(&a, &b, &part);
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    }

    #[test]
    fn matches_serial_on_scatter() {
        // Even a pathological scatter must compute correctly.
        let n = 16;
        let (a, b) = random_matrices(n, 9);
        let part = Partition::from_fn(n, |i, j| match (i * 7 + j * 3) % 4 {
            0 => Proc::R,
            1 => Proc::S,
            _ => Proc::P,
        });
        let (c, _) = multiply_partitioned(&a, &b, &part);
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    }

    #[test]
    fn traffic_matches_pairwise_volumes() {
        // The executor sends exactly the elements the analytic accounting
        // charges for: fragment element (i,k) of A goes to Y iff Y owns C
        // cells in row i, etc.
        let n = 18;
        let (a, b) = random_matrices(n, 10);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 8, 0, 5), Proc::R)
            .rect(Rect::new(10, 17, 9, 17), Proc::S)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part);
        let vol = pairwise_volumes(&part);
        let expect: u64 = vol.iter().flatten().sum();
        assert_eq!(stats.total_sent(), expect);
        assert_eq!(stats.total_sent(), part.voc());
        // Per-sender totals match the row sums of the volume matrix.
        for x in Proc::ALL {
            let sent: u64 = vol[x.idx()].iter().sum();
            assert_eq!(stats.per_proc[x.idx()].elems_sent, sent, "{x}");
        }
    }

    #[test]
    fn single_owner_partition_sends_nothing() {
        let n = 8;
        let (a, b) = random_matrices(n, 11);
        let part = Partition::new(n, Proc::P);
        let (c, stats) = multiply_partitioned(&a, &b, &part);
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.total_sent(), 0);
        assert_eq!(stats.per_proc[Proc::P.idx()].updates, (n * n * n) as u64);
    }

    #[test]
    fn updates_proportional_to_ownership() {
        let n = 12;
        let (a, b) = random_matrices(n, 12);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 11), Proc::R)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part);
        assert_eq!(
            stats.per_proc[Proc::R.idx()].updates,
            (n * part.elems(Proc::R)) as u64
        );
        assert_eq!(
            stats.per_proc[Proc::P.idx()].updates,
            (n * part.elems(Proc::P)) as u64
        );
    }

    #[test]
    fn virtual_scb_time_matches_cost_model_without_latency() {
        let n = 18;
        let (a, b) = random_matrices(n, 21);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 8, 0, 5), Proc::R)
            .rect(Rect::new(10, 17, 9, 17), Proc::S)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part);
        // Speeds indexed [R, S, P] to match Proc::idx.
        let beta = 1e-9;
        let speeds = [2e9, 1e9, 4e9];
        let virt = stats.virtual_scb_time(speeds, 0.0, beta);
        // Manual SCB: voc * beta + max(N * elems / speed).
        let comm = part.voc() as f64 * beta;
        let comp = [Proc::R, Proc::S, Proc::P]
            .iter()
            .map(|&p| (n * part.elems(p)) as f64 * n as f64 / (n as f64) / speeds[p.idx()])
            .fold(0.0f64, f64::max);
        // (N * elems) updates per processor.
        let comp_exact = [Proc::R, Proc::S, Proc::P]
            .iter()
            .map(|&p| (n * part.elems(p)) as f64 / speeds[p.idx()])
            .fold(0.0f64, f64::max);
        let _ = comp;
        assert!((virt - (comm + comp_exact)).abs() < 1e-15);
    }

    #[test]
    fn message_count_bounded_by_steps() {
        let n = 12;
        let (a, b) = random_matrices(n, 22);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 11), Proc::R)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part);
        // Each worker sends at most 2 peers x n steps non-empty messages.
        for p in Proc::ALL {
            assert!(stats.per_proc[p.idx()].messages <= (2 * n) as u64);
        }
        assert!(stats.total_messages() > 0);
    }
}
