//! Partition-driven threaded kij executor with fault tolerance.
//!
//! One OS thread per processor plays the role of the paper's three MPI
//! nodes (Section X-B). Each worker holds only the A/B elements its
//! partition assigns to it; at every pivot step `k` the owners of column
//! `k` of A and row `k` of B send the fragments the other workers need
//! (and only those — a worker owning no C element in row `i` never
//! receives `A[i,k]`). The communication statistics the executor gathers
//! are exactly the quantities the analytic models charge for, so the
//! integration tests can check executor-counted traffic against
//! `pairwise_volumes` for any partition.
//!
//! ## Failure model
//!
//! Fragments travel through *bounded* channels and every receive carries a
//! timeout, so a worker that crashes (channel disconnect) or stops sending
//! (receive timeout) is detected rather than deadlocking the run. Recovery
//! is layered (see DESIGN.md §7):
//!
//! 1. **Receive re-wait.** A timed-out receive is re-armed with bounded
//!    exponential backoff ([`ExecConfig::retry_attempts`] slices of
//!    `backoff_base · 2^i`, capped at `backoff_cap`) before the worker
//!    declares the peer lost — a slow sender within the budget costs a
//!    retry counter tick and nothing else.
//! 2. **Supervised re-attempt.** Workers bank step checkpoints with the
//!    supervisor; on an *inconclusive* failure (timeouts and disconnects
//!    only, no crash or panic confession) the supervisor re-runs the
//!    multiply from the last checkpointed step, again with backoff, before
//!    blaming anyone.
//! 3. **Conviction and degrade.** Persistent silence escalates to blame:
//!    verdicts are aggregated into a single culprit (workers that finished
//!    all `n` steps are exempt), the dead processor's C cells re-assigned
//!    onto the two survivors with [`hetmmm_twoproc::degrade_partition`]
//!    (Straight-Line below a 3:1 survivor ratio, Square-Corner above),
//!    and the multiply *resumes* from the checkpoint — re-assigned cells
//!    replay only their missing contributions.
//! 4. **Graceful degrade.** When survivors drop to one, the retry budget
//!    runs out, or the [`ExecConfig::recovery_deadline`] passes, the
//!    supervisor finishes the remaining pivot steps serially (kij on the
//!    checkpointed partials) and returns `Ok` with
//!    [`RecoveryStats::degraded_mode`] set instead of erroring.
//!
//! Failures are scripted deterministically through [`FaultPlan`] for
//! testing; recovery activity is reported in [`RecoveryStats`].

use crate::fault::{FaultKind, FaultPlan};
use crate::matrix::Matrix;
use crate::supervise::{BackoffPolicy, CellState, Checkpoint, ProcSnapshot};
use hetmmm_error::HetmmmError;
use hetmmm_obs::{self as obs, Clock};
use hetmmm_partition::{Partition, Proc};
use hetmmm_twoproc::{degrade_partition, fallback_survivor};
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Per-worker execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcExec {
    /// Scalar updates `C[i,j] += A[i,k] * B[k,j]` performed.
    pub updates: u64,
    /// Fragment elements sent to other workers.
    pub elems_sent: u64,
    /// Fragment elements received from other workers.
    pub elems_recv: u64,
    /// Non-empty fragment messages sent.
    pub messages: u64,
    /// Timed-out receives this worker re-armed instead of escalating.
    pub recv_retries: u64,
}

impl ProcExec {
    /// Fold another attempt's counters into this slot.
    fn fold(&mut self, other: &ProcExec) {
        self.updates += other.updates;
        self.elems_sent += other.elems_sent;
        self.elems_recv += other.elems_recv;
        self.messages += other.messages;
        self.recv_retries += other.recv_retries;
    }
}

/// Counters describing what the fault-tolerance layer did during a run.
/// All zero (and `degraded_mode` false) when no failure occurred.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Worker failures convicted (injected or real).
    pub faults_detected: u64,
    /// C elements whose owner changed during survivor re-partitioning.
    pub elems_reassigned: u64,
    /// Times the multiply was restarted on a degraded partition.
    pub retries: u64,
    /// Worker-level receive re-waits (transient absorption, layer 1).
    pub recv_retries: u64,
    /// Supervisor-level re-attempts before any conviction (layer 2).
    pub attempt_retries: u64,
    /// Total nanoseconds of supervisor backoff between attempts.
    pub backoff_nanos: u64,
    /// Pivot steps recovery skipped thanks to checkpointed resume
    /// (summed over re-attempts).
    pub resumed_steps: u64,
    /// Pivot steps re-run past the resume point (worst cell, summed over
    /// re-attempts). `resumed + replayed == n` per re-attempt.
    pub replayed_steps: u64,
    /// Step-checkpoint snapshots workers banked with the supervisor.
    pub checkpoints: u64,
    /// The run finished via the serial fallback instead of full parallel
    /// recovery. The result is still correct; only the execution shape
    /// degraded.
    pub degraded_mode: bool,
}

/// Aggregate execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Counters per processor, indexed by [`Proc::idx`], accumulated
    /// across every attempt the processor survived. A convicted
    /// processor's slot is all zeros.
    pub per_proc: [ProcExec; 3],
    /// What the fault-tolerance layer did (all zero on a clean run).
    pub recovery: RecoveryStats,
}

impl ExecStats {
    /// Total elements that crossed between workers.
    pub fn total_sent(&self) -> u64 {
        self.per_proc.iter().map(|p| p.elems_sent).sum()
    }

    /// Total scalar updates performed by all workers.
    pub fn total_updates(&self) -> u64 {
        self.per_proc.iter().map(|p| p.updates).sum()
    }

    /// Total non-empty messages exchanged.
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|p| p.messages).sum()
    }

    /// Map the measured counters onto a platform clock, SCB-style: all
    /// fragments serially on one medium (`α` per message, `β` per
    /// element), then computation in parallel at the platform's speeds.
    ///
    /// Because the executor's traffic equals the analytic pairwise volumes
    /// and its update counts equal `N · ∈X`, this reproduces the
    /// `hetmmm_cost::evaluate(Scb, ..)` total exactly up to the latency
    /// term's message granularity — asserted in the integration tests.
    pub fn virtual_scb_time(&self, speeds: [f64; 3], alpha: f64, beta: f64) -> f64 {
        let comm = alpha * self.total_messages() as f64 + beta * self.total_sent() as f64;
        let comp = self
            .per_proc
            .iter()
            .zip(speeds)
            .map(|(p, s)| p.updates as f64 / s)
            .fold(0.0f64, f64::max);
        comm + comp
    }
}

/// Tunables of the threaded executor.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Capacity (in messages) of each worker-to-worker channel. Small and
    /// bounded: a healthy run stays in lockstep, so a handful of steps of
    /// slack is plenty, and a dead receiver can only absorb this much
    /// before its peers notice. Must be nonzero ([`ExecConfig::validate`]).
    pub channel_capacity: usize,
    /// Base wait of a single receive (and of a stalled send) before the
    /// retry/backoff ladder starts. Must be nonzero.
    pub recv_timeout: Duration,
    /// Convictions (restarts on a degraded partition) before the
    /// supervisor stops re-partitioning and finishes serially in degraded
    /// mode. The default allows the full chain three → two → one worker.
    pub max_retries: u64,
    /// Retry budget used at *both* recovery layers: how many extra
    /// backoff slices a worker grants a silent peer before declaring it
    /// lost, and how many inconclusive attempts the supervisor re-runs
    /// before convicting.
    pub retry_attempts: u32,
    /// First backoff slice; slice `i` waits `base · 2^i`.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff slice.
    pub backoff_cap: Duration,
    /// Bank a checkpoint every this many completed pivot steps (per
    /// worker). Checkpointing only runs when a fault plan is installed,
    /// so the production hot path is untouched. Must be nonzero.
    pub checkpoint_every: usize,
    /// Global wall budget for recovery, measured on [`ExecConfig::clock`]
    /// from the first detected failure. Once exceeded, the supervisor
    /// stops re-attempting and finishes serially in degraded mode.
    pub recovery_deadline: Duration,
    /// Scripted faults for deterministic testing. `None` (the default)
    /// injects nothing and costs nothing on the hot path.
    pub fault_plan: Option<FaultPlan>,
    /// Time source for send deadlines, receive-wait measurement, the
    /// recovery deadline, and supervisor backoff sleeps. Tests inject a
    /// [`hetmmm_obs::FakeClock`] for deterministic timings (its `sleep`
    /// advances instantly); the default is the shared monotonic clock.
    pub clock: Arc<dyn Clock>,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            channel_capacity: 4,
            recv_timeout: Duration::from_secs(1),
            max_retries: 3,
            retry_attempts: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(200),
            checkpoint_every: 1,
            recovery_deadline: Duration::from_secs(30),
            fault_plan: None,
            clock: Arc::new(obs::MonotonicClock),
        }
    }
}

impl ExecConfig {
    /// Builder-style: set the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ExecConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style: set the base peer-loss detection timeout.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> ExecConfig {
        self.recv_timeout = timeout;
        self
    }

    /// Builder-style: set the per-channel message capacity.
    pub fn with_channel_capacity(mut self, capacity: usize) -> ExecConfig {
        self.channel_capacity = capacity;
        self
    }

    /// Builder-style: set the retry budget shared by receive re-waits and
    /// supervisor re-attempts (0 restores PR 1's convict-on-first-timeout
    /// behaviour).
    pub fn with_retry_attempts(mut self, attempts: u32) -> ExecConfig {
        self.retry_attempts = attempts;
        self
    }

    /// Builder-style: set the exponential backoff base and cap.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> ExecConfig {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Builder-style: set the checkpoint cadence (in pivot steps).
    pub fn with_checkpoint_every(mut self, steps: usize) -> ExecConfig {
        self.checkpoint_every = steps;
        self
    }

    /// Builder-style: set the global recovery deadline.
    pub fn with_recovery_deadline(mut self, deadline: Duration) -> ExecConfig {
        self.recovery_deadline = deadline;
        self
    }

    /// Builder-style: set the time source.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> ExecConfig {
        self.clock = clock;
        self
    }

    /// Reject configurations that can only hang or wedge the executor.
    ///
    /// A zero receive timeout never fires `recv_timeout` meaningfully, a
    /// zero-capacity channel turns every send into a rendezvous that
    /// deadlocks the lockstep protocol, a zero checkpoint cadence is a
    /// division-by-zero wearing a trench coat, and a cap below the base
    /// makes the backoff ladder non-monotone. All are misuse, surfaced
    /// eagerly as [`HetmmmError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), HetmmmError> {
        let invalid = |field: &str, detail: &str| {
            Err(HetmmmError::InvalidConfig {
                field: field.to_string(),
                detail: detail.to_string(),
            })
        };
        if self.channel_capacity == 0 {
            return invalid(
                "channel_capacity",
                "must be nonzero (a zero-capacity channel deadlocks the lockstep protocol)",
            );
        }
        if self.recv_timeout.is_zero() {
            return invalid(
                "recv_timeout",
                "must be nonzero (a zero timeout convicts every peer instantly)",
            );
        }
        if self.checkpoint_every == 0 {
            return invalid("checkpoint_every", "must be nonzero");
        }
        if self.backoff_cap < self.backoff_base {
            return invalid("backoff_cap", "must be >= backoff_base");
        }
        Ok(())
    }

    /// The backoff policy both recovery layers run.
    fn backoff(&self) -> BackoffPolicy {
        BackoffPolicy {
            attempts: self.retry_attempts,
            base: self.backoff_base,
            cap: self.backoff_cap,
        }
    }

    /// Worst-case wait of one receive: the base timeout plus every backoff
    /// slice. Senders use the same patience, and injected stalls park
    /// beyond it so every peer's budget provably runs out.
    fn receive_budget(&self) -> Duration {
        self.recv_timeout + self.backoff().total_extra()
    }
}

/// One step's fragments from one sender: the pivot step `k`, `(row,
/// value)` pairs of A-column `k` and `(col, value)` pairs of B-row `k`
/// that the receiver needs. The step tag lets a receiver detect a lost
/// message immediately (the next message arrives out of step) instead of
/// silently consuming shifted fragments.
type StepMessage = (usize, Vec<(u32, f64)>, Vec<(u32, f64)>);

/// How a worker's run ended. Workers never panic on peer failure — they
/// report, and the supervisor decides.
enum Verdict {
    /// Finished all `n` steps; carries the owned C cells and counters.
    Completed(Vec<(u32, u32, f64)>, ProcExec),
    /// An injected [`FaultKind::CrashAt`] fired at `step`. Work since the
    /// last banked checkpoint is lost with the worker.
    Crashed { step: usize },
    /// An injected [`FaultKind::StallAt`] fired: the worker checkpointed,
    /// parked past every peer's receive budget, and returned quietly.
    /// Deliberately carries no accusation — a wedged worker in a real
    /// system reports nothing, so the supervisor must convict it on peer
    /// testimony alone.
    Stalled { stats: ProcExec },
    /// A peer disconnected or went silent past the receive budget (the
    /// step it happened at travels in the `ExecPeerLost` event).
    PeerLost {
        peer: Proc,
        detail: &'static str,
        stats: ProcExec,
    },
    /// The worker thread itself panicked — a genuine bug rather than a
    /// modeled fault. The payload is reported through the obs facade at
    /// capture time.
    Panicked,
}

/// `try_send` with a deadline: a full channel is retried until `timeout`
/// elapses, so a stalled (but connected) receiver is eventually treated as
/// lost instead of blocking the sender forever.
///
/// On success returns the full-channel wait interval `(start, end)` on the
/// clock axis, or `None` when the first `try_send` went through — the
/// caller turns it into a `blocked` timeline segment. The fast path pays
/// no extra clock reads.
fn send_with_deadline(
    tx: &SyncSender<StepMessage>,
    mut msg: StepMessage,
    timeout: Duration,
    clock: &dyn Clock,
) -> Result<Option<(u64, u64)>, &'static str> {
    let deadline = clock
        .now_nanos()
        .saturating_add(timeout.as_nanos().min(u64::MAX as u128) as u64);
    let mut blocked_since: Option<u64> = None;
    loop {
        match tx.try_send(msg) {
            Ok(()) => return Ok(blocked_since.map(|since| (since, clock.now_nanos()))),
            Err(TrySendError::Disconnected(_)) => return Err("channel disconnected"),
            Err(TrySendError::Full(m)) => {
                let now = clock.now_nanos();
                if now >= deadline {
                    return Err("send timed out (peer stalled)");
                }
                blocked_since.get_or_insert(now);
                msg = m;
                // hetmmm-lint: allow(L005) bounded backoff while a real channel is full
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

struct Worker {
    proc: Proc,
    n: usize,
    /// First pivot step of this attempt (the global resume point).
    start: usize,
    /// `a_frags[k]`: owned `(i, A[i,k])` pairs.
    a_frags: Vec<Vec<(u32, f64)>>,
    /// `b_frags[k]`: owned `(j, B[k,j])` pairs.
    b_frags: Vec<Vec<(u32, f64)>>,
    /// Owned C cells.
    c_cells: Vec<(u32, u32)>,
    /// Initial accumulator per owned cell (checkpointed partials).
    acc0: Vec<f64>,
    /// First pivot step each owned cell still needs; steps below it are
    /// already folded into `acc0` and must not be re-applied.
    next0: Vec<u32>,
    /// `row_needed[Y][i]`: does processor `Y` own C elements in row `i`?
    row_needed: [Vec<bool>; 3],
    /// `col_needed[Y][j]`.
    col_needed: [Vec<bool>; 3],
    /// Outgoing channels to the other active workers.
    out: Vec<(Proc, SyncSender<StepMessage>)>,
    /// Incoming channels from the other active workers.
    inbox: Vec<(Proc, Receiver<StepMessage>)>,
    /// This worker's scripted faults (empty outside injection tests).
    faults: Vec<FaultKind>,
    /// Base receive wait before the retry ladder starts.
    timeout: Duration,
    /// Receive re-wait backoff policy.
    retry: BackoffPolicy,
    /// Send patience and stall park duration (derived from the budget).
    send_patience: Duration,
    park: Duration,
    /// Supervisor-held checkpoint to bank progress into (present iff a
    /// fault plan is installed — the clean hot path never pays for it).
    checkpoint: Option<Arc<Checkpoint>>,
    /// Bank a snapshot every this many completed steps.
    checkpoint_every: usize,
    /// Time source for send deadlines and receive-wait measurement.
    clock: Arc<dyn Clock>,
}

impl Worker {
    /// Emit one timeline segment attributing `[start, end]` of this
    /// worker's wall time to `kind`. Callers gate on [`obs::enabled`] so
    /// the uninstrumented path never constructs the arguments.
    fn segment(&self, kind: &str, peer: &str, step: usize, start_nanos: u64, end_nanos: u64) {
        obs::emit(obs::EventKind::ExecSegment {
            worker: self.proc.to_string(),
            kind: kind.to_string(),
            peer: peer.to_string(),
            step: step as u64,
            start_nanos,
            end_nanos,
        });
    }

    /// Bank the current accumulators with the supervisor: every owned
    /// cell, tagged with the step it is valid through (its own resume
    /// point if that is further along than this attempt's progress).
    fn bank(&self, acc: &[f64], through: usize) {
        let Some(cp) = &self.checkpoint else {
            return;
        };
        let seg = obs::enabled();
        let bank_start = if seg { self.clock.now_nanos() } else { 0 };
        let through = through as u32;
        let cells = self
            .c_cells
            .iter()
            .zip(acc)
            .zip(&self.next0)
            .map(|((&(i, j), &v), &nk)| (i, j, v, nk.max(through)))
            .collect();
        cp.bank(self.proc.idx(), ProcSnapshot { cells });
        if seg {
            let bank_end = self.clock.now_nanos();
            self.segment("checkpoint", "", through as usize, bank_start, bank_end);
            obs::emit(obs::EventKind::ExecCheckpoint {
                worker: self.proc.to_string(),
                through: through as u64,
                cells: self.c_cells.len() as u64,
            });
        }
    }

    /// Bank progress and report a lost peer through the facade before
    /// returning the verdict.
    fn peer_lost(
        &self,
        acc: &[f64],
        stats: ProcExec,
        peer: Proc,
        step: usize,
        detail: &'static str,
    ) -> Verdict {
        self.bank(acc, step);
        if obs::enabled() {
            obs::emit(obs::EventKind::ExecPeerLost {
                worker: self.proc.to_string(),
                peer: peer.to_string(),
                step: step as u64,
                detail: detail.to_string(),
            });
        }
        Verdict::PeerLost {
            peer,
            detail,
            stats,
        }
    }

    fn run(mut self) -> Verdict {
        let _span = obs::span_arg("exec.worker", self.proc.idx() as u64);
        let n = self.n;
        let mut stats = ProcExec::default();
        let mut a_col = vec![0.0f64; n];
        let mut b_row = vec![0.0f64; n];
        // C accumulators, one per owned cell (same order as c_cells),
        // seeded from the supervisor's checkpointed partials.
        let mut acc = std::mem::take(&mut self.acc0);

        for k in self.start..n {
            // Injected faults scripted for this step.
            let mut drop_sends = false;
            for &fault in &self.faults {
                match fault {
                    FaultKind::CrashAt { step } if step == k => {
                        // Exiting drops our channel endpoints; peers see a
                        // disconnect. Work since the last periodic bank
                        // dies with us — that is the modeled loss.
                        return Verdict::Crashed { step: k };
                    }
                    FaultKind::DropMessageAt { step } if step == k => drop_sends = true,
                    FaultKind::DelaySendAt { step, millis } if step == k => {
                        // hetmmm-lint: allow(L005) the injected stall IS the modeled fault
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    FaultKind::StallAt { step } if step == k => {
                        // Park past every peer's receive budget, then
                        // return without accusing anyone: persistent
                        // silence that only peer testimony can convict.
                        self.bank(&acc, k);
                        // hetmmm-lint: allow(L005) the injected stall IS the modeled fault
                        std::thread::sleep(self.park);
                        return Verdict::Stalled { stats };
                    }
                    _ => {}
                }
            }

            // Send the needed slices of our fragments to each peer.
            // `seg` gates all timeline-segment work this step; like the
            // event emissions it costs one relaxed load when off.
            let seg = obs::enabled();
            if !drop_sends {
                for (peer, tx) in &self.out {
                    let a_part: Vec<(u32, f64)> = self.a_frags[k]
                        .iter()
                        .copied()
                        .filter(|&(i, _)| self.row_needed[peer.idx()][i as usize])
                        .collect();
                    let b_part: Vec<(u32, f64)> = self.b_frags[k]
                        .iter()
                        .copied()
                        .filter(|&(j, _)| self.col_needed[peer.idx()][j as usize])
                        .collect();
                    let payload = (a_part.len() + b_part.len()) as u64;
                    let send_start = if seg { self.clock.now_nanos() } else { 0 };
                    match send_with_deadline(
                        tx,
                        (k, a_part, b_part),
                        self.send_patience,
                        &*self.clock,
                    ) {
                        Ok(blocked) => {
                            stats.elems_sent += payload;
                            if payload > 0 {
                                stats.messages += 1;
                            }
                            if seg {
                                let send_end = self.clock.now_nanos();
                                let peer_name = peer.to_string();
                                if let Some((b0, b1)) = blocked {
                                    self.segment("blocked", &peer_name, k, b0, b1);
                                }
                                self.segment("send", &peer_name, k, send_start, send_end);
                                if payload > 0 {
                                    obs::emit(obs::EventKind::ExecSend {
                                        from: self.proc.to_string(),
                                        to: peer_name,
                                        step: k as u64,
                                        elems: payload,
                                    });
                                }
                            }
                        }
                        Err(detail) => return self.peer_lost(&acc, stats, *peer, k, detail),
                    }
                }
            }
            // Own fragments.
            for &(i, v) in &self.a_frags[k] {
                a_col[i as usize] = v;
            }
            for &(j, v) in &self.b_frags[k] {
                b_row[j as usize] = v;
            }
            // Receive every active peer's fragments, re-arming timed-out
            // waits with bounded exponential backoff before escalating.
            for (peer, rx) in &self.inbox {
                // Measure blocked time only when someone is listening; the
                // uninstrumented path stays two relaxed loads per receive.
                let timing = obs::enabled() || obs::metrics_enabled();
                let wait_start = if timing { self.clock.now_nanos() } else { 0 };
                let mut window = self.timeout;
                let mut rewaits = 0u32;
                let (msg_step, a_part, b_part) = loop {
                    match rx.recv_timeout(window) {
                        Ok(msg) => break msg,
                        Err(RecvTimeoutError::Timeout) => {
                            if rewaits >= self.retry.attempts {
                                return self.peer_lost(&acc, stats, *peer, k, "receive timed out");
                            }
                            window = self.retry.delay(rewaits);
                            rewaits += 1;
                            stats.recv_retries += 1;
                            if obs::enabled() {
                                obs::emit(obs::EventKind::ExecRetry {
                                    worker: self.proc.to_string(),
                                    peer: peer.to_string(),
                                    step: k as u64,
                                    attempt: rewaits as u64,
                                    wait_nanos: window.as_nanos() as u64,
                                });
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            return self.peer_lost(&acc, stats, *peer, k, "channel disconnected")
                        }
                    }
                };
                if msg_step != k {
                    return self.peer_lost(
                        &acc,
                        stats,
                        *peer,
                        k,
                        "out-of-step message (lost message upstream)",
                    );
                }
                let received = (a_part.len() + b_part.len()) as u64;
                stats.elems_recv += received;
                if timing {
                    let wait_nanos = self.clock.now_nanos().saturating_sub(wait_start);
                    if obs::metrics_enabled() {
                        obs::metrics()
                            .histogram(obs::metrics::names::EXEC_RECV_WAIT_NANOS, || {
                                obs::Histogram::exponential(1000, 4, 12)
                            })
                            .observe(wait_nanos);
                    }
                    if obs::enabled() {
                        let peer_name = peer.to_string();
                        self.segment(
                            "recv-wait",
                            &peer_name,
                            k,
                            wait_start,
                            wait_start.saturating_add(wait_nanos),
                        );
                        obs::emit(obs::EventKind::ExecRecv {
                            from: peer_name,
                            to: self.proc.to_string(),
                            step: k as u64,
                            elems: received,
                            wait_nanos,
                        });
                    }
                }
                for (i, v) in a_part {
                    a_col[i as usize] = v;
                }
                for (j, v) in b_part {
                    b_row[j as usize] = v;
                }
            }
            // Update every owned C element that still needs this step
            // (checkpointed cells skip steps already folded in).
            let compute_start = if seg { self.clock.now_nanos() } else { 0 };
            let mut applied = 0u64;
            for ((cell, accum), &nk) in self.c_cells.iter().zip(acc.iter_mut()).zip(&self.next0) {
                if k as u32 >= nk {
                    let (i, j) = (cell.0 as usize, cell.1 as usize);
                    *accum += a_col[i] * b_row[j];
                    applied += 1;
                }
            }
            stats.updates += applied;
            if seg {
                let compute_end = self.clock.now_nanos();
                self.segment("compute", "", k, compute_start, compute_end);
            }
            // Periodically bank progress so a later crash of *anyone*
            // resumes from here instead of step zero. The final step skips
            // the bank — the Completed verdict carries everything.
            if self.checkpoint.is_some()
                && k + 1 < n
                && (k + 1 - self.start) % self.checkpoint_every == 0
            {
                self.bank(&acc, k + 1);
            }
        }

        let result = self
            .c_cells
            .drain(..)
            .zip(acc)
            .map(|((i, j), v)| (i, j, v))
            .collect();
        Verdict::Completed(result, stats)
    }
}

/// One worker's completed contribution: its processor, C updates, stats.
type WorkerDone = (Proc, Vec<(u32, u32, f64)>, ProcExec);

/// What one attempt (one spawn of the active workers) produced.
enum Attempt {
    Done(Vec<WorkerDone>),
    Failed {
        dead: Proc,
        /// Did anyone confess (crash/panic)? Inconclusive failures earn
        /// supervisor-level retries before a conviction.
        conclusive: bool,
        /// Evidence weights per processor ([`Proc::idx`]-indexed), carried
        /// up so the supervisor can publish them if (and only if) this
        /// attempt's verdict becomes a conviction.
        weights: [u32; 3],
        /// Workers that finished all `n` steps this attempt.
        done: Vec<WorkerDone>,
        /// Counters from workers that did not finish.
        partial: Vec<(Proc, ProcExec)>,
    },
}

/// Everything one attempt needs beyond the matrices and partition.
struct AttemptCtx<'a> {
    config: &'a ExecConfig,
    state: &'a CellState,
    checkpoint: Option<&'a Arc<Checkpoint>>,
    start: usize,
}

/// Run the active workers once over `part` and aggregate their verdicts.
fn run_attempt(
    a: &Matrix,
    b: &Matrix,
    part: &Partition,
    active: &[Proc],
    ctx: &AttemptCtx,
) -> Attempt {
    let n = part.n();
    let config = ctx.config;

    // Bounded channels between each ordered pair of active workers.
    let mut txs: Vec<Vec<Option<SyncSender<StepMessage>>>> = vec![vec![None, None, None]; 3];
    let mut rxs: Vec<Vec<Option<Receiver<StepMessage>>>> =
        (0..3).map(|_| vec![None, None, None]).collect();
    for &x in active {
        for &y in active {
            if x == y {
                continue;
            }
            let (tx, rx) = sync_channel(config.channel_capacity);
            txs[x.idx()][y.idx()] = Some(tx);
            rxs[y.idx()][x.idx()] = Some(rx);
        }
    }

    // Need maps shared by value (small).
    let row_needed: [Vec<bool>; 3] =
        Proc::ALL.map(|y| (0..n).map(|i| part.row_has(y, i)).collect());
    let col_needed: [Vec<bool>; 3] =
        Proc::ALL.map(|y| (0..n).map(|j| part.col_has(y, j)).collect());

    let budget = config.receive_budget();

    let mut workers: Vec<Worker> = Vec::with_capacity(active.len());
    for &x in active {
        let mut a_frags = vec![Vec::new(); n];
        let mut b_frags = vec![Vec::new(); n];
        let mut c_cells = Vec::with_capacity(part.elems(x));
        for (i, j) in part.cells_of(x) {
            // A element (i, j) belongs to column-fragment j; B element
            // (i, j) belongs to row-fragment i.
            a_frags[j].push((i as u32, a.get(i, j)));
            b_frags[i].push((j as u32, b.get(i, j)));
            c_cells.push((i as u32, j as u32));
        }
        let (acc0, next0) = ctx.state.initial_for(&c_cells);
        let out: Vec<(Proc, SyncSender<StepMessage>)> = x
            .others()
            .into_iter()
            .filter_map(|y| txs[x.idx()][y.idx()].take().map(|tx| (y, tx)))
            .collect();
        let inbox: Vec<(Proc, Receiver<StepMessage>)> = x
            .others()
            .into_iter()
            .filter_map(|y| rxs[x.idx()][y.idx()].take().map(|rx| (y, rx)))
            .collect();
        let faults = config
            .fault_plan
            .as_ref()
            .map(|plan| plan.faults_for(x))
            .unwrap_or_default();
        workers.push(Worker {
            proc: x,
            n,
            start: ctx.start,
            a_frags,
            b_frags,
            c_cells,
            acc0,
            next0,
            row_needed: row_needed.clone(),
            col_needed: col_needed.clone(),
            out,
            inbox,
            faults,
            timeout: config.recv_timeout,
            retry: config.backoff(),
            send_patience: budget,
            park: budget * 2 + Duration::from_millis(50),
            checkpoint: ctx.checkpoint.cloned(),
            checkpoint_every: config.checkpoint_every,
            clock: Arc::clone(&config.clock),
        });
    }

    let mut verdicts: Vec<(Proc, Verdict)> = Vec::with_capacity(active.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                let proc = w.proc;
                (proc, scope.spawn(move || w.run()))
            })
            .collect();
        for (proc, handle) in handles {
            // Workers return verdicts instead of panicking; a panic here
            // is a genuine bug, not a modeled fault — but the coordinator
            // still degrades gracefully, blaming the panicked worker,
            // rather than taking the whole run down with it.
            let verdict = handle.join().unwrap_or_else(|payload| {
                if obs::enabled() {
                    let what = payload
                        .downcast_ref::<&str>()
                        .map(|m| (*m).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    obs::emit(obs::EventKind::ExecPeerLost {
                        worker: proc.to_string(),
                        peer: proc.to_string(),
                        step: 0,
                        detail: format!("worker panicked: {what}"),
                    });
                }
                Verdict::Panicked
            });
            verdicts.push((proc, verdict));
        }
    });

    let mut done: Vec<WorkerDone> = Vec::new();
    let mut partial: Vec<(Proc, ProcExec)> = Vec::new();
    let mut failed = Vec::new();
    let mut completed = [false; 3];
    for (proc, v) in verdicts {
        match v {
            Verdict::Completed(cells, stats) => {
                completed[proc.idx()] = true;
                done.push((proc, cells, stats));
            }
            other => failed.push((proc, other)),
        }
    }
    if failed.is_empty() {
        return Attempt::Done(done);
    }

    // Blame aggregation, weighted by how conclusive each report is. An
    // explicit crash or panic is a confession (+100). An out-of-step
    // message proves the named sender skipped or lost a send (+10). A
    // receive timeout is strong evidence of a stall (+3). A bare
    // disconnect is weak (+1): it is often just the cascade from an
    // innocent peer that already exited after detecting the real failure.
    // Without the weighting, the first detector's early exit can out-vote
    // the actual culprit. A worker that finished all `n` steps is exempt
    // from conviction — completion is proof of life. Ties break toward
    // the lower processor index, deterministically.
    let mut conclusive = false;
    let mut blame = [0u32; 3];
    for (proc, verdict) in &failed {
        match verdict {
            Verdict::Completed(..) => {}
            Verdict::Panicked => {
                conclusive = true;
                blame[proc.idx()] += 100;
            }
            Verdict::Crashed { step } => {
                // A confession must also be visible on the wire: the
                // happens-before checker (H003) only accepts a conviction
                // it can see testimony for. Panics already reported at
                // join time; modeled crashes confess here, citing the
                // step the fault fired at.
                if obs::enabled() {
                    obs::emit(obs::EventKind::ExecPeerLost {
                        worker: proc.to_string(),
                        peer: proc.to_string(),
                        step: *step as u64,
                        detail: "worker crashed (injected fault)".to_string(),
                    });
                }
                conclusive = true;
                blame[proc.idx()] += 100;
            }
            Verdict::Stalled { stats } => {
                // No self-report: a wedged worker is convicted (or not) on
                // its peers' testimony.
                partial.push((*proc, *stats));
            }
            Verdict::PeerLost {
                peer,
                detail,
                stats,
            } => {
                partial.push((*proc, *stats));
                blame[peer.idx()] += if detail.contains("out-of-step") {
                    10
                } else if detail.contains("timed out") {
                    3
                } else {
                    1
                };
            }
        }
    }
    // Convict among the workers that did not finish (completion is an
    // alibi); strict `>` keeps the first maximum, preferring the lower
    // processor index on ties.
    let mut dead_idx: Option<usize> = None;
    for &p in active {
        let i = p.idx();
        if completed[i] {
            continue;
        }
        match dead_idx {
            Some(d) if blame[i] <= blame[d] => {}
            _ => dead_idx = Some(i),
        }
    }
    // Every failed verdict comes from a non-completed active proc, so a
    // candidate always exists; fall back defensively all the same.
    let dead_idx = dead_idx.unwrap_or(0);
    let dead = Proc::ALL[dead_idx];
    // No ExecBlame here: an inconclusive verdict may still be overturned
    // by a supervisor retry. The supervisor emits the blame event at the
    // conviction point, so the event stream satisfies the happens-before
    // protocol (`obs_verify --hb`, rule H003): blame only after the retry
    // budget is exhausted or on a confession.
    Attempt::Failed {
        dead,
        conclusive,
        weights: blame,
        done,
        partial,
    }
}

/// Multiply `A x B` with ownership given by `part`, one thread per
/// processor, fragments exchanged through bounded channels. Returns the
/// assembled C and the executor statistics.
///
/// Fails with [`HetmmmError::DimensionMismatch`] if the matrices and
/// partition disagree on `n`. Worker failures never fail the call: they
/// are absorbed by retry/backoff, checkpointed resume, and survivor
/// re-partitioning, degrading to a supervisor-side serial tail
/// ([`RecoveryStats::degraded_mode`]) in the worst case — see
/// [`multiply_partitioned_with`] to configure that behaviour and to
/// inject faults.
///
/// ```
/// use hetmmm_mmm::{kij_serial, multiply_partitioned, Matrix};
/// use hetmmm_partition::{Partition, Proc};
///
/// let a = Matrix::from_fn(8, |i, j| (i + j) as f64);
/// let b = Matrix::identity(8);
/// let part = Partition::from_fn(8, |i, _| if i < 4 { Proc::P } else { Proc::S });
/// let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
/// assert!(c.max_abs_diff(&a) < 1e-12); // A x I = A
/// assert_eq!(stats.total_sent(), part.voc());
/// assert_eq!(stats.recovery.faults_detected, 0);
/// ```
pub fn multiply_partitioned(
    a: &Matrix,
    b: &Matrix,
    part: &Partition,
) -> Result<(Matrix, ExecStats), HetmmmError> {
    multiply_partitioned_with(a, b, part, &ExecConfig::default())
}

/// The supervisor loop state shared by the parallel and degraded exits.
struct Supervisor {
    state: CellState,
    per_proc: [ProcExec; 3],
    recovery: RecoveryStats,
    checkpoint: Option<Arc<Checkpoint>>,
}

impl Supervisor {
    /// Fold one attempt's completed workers and banked checkpoints in.
    fn absorb_attempt(&mut self, done: Vec<WorkerDone>, partial: Vec<(Proc, ProcExec)>, n: usize) {
        for (proc, cells, stats) in done {
            self.fold_stats(proc, &stats);
            let snapshot = ProcSnapshot {
                cells: cells
                    .into_iter()
                    .map(|(i, j, v)| (i, j, v, n as u32))
                    .collect(),
            };
            self.state.absorb(&snapshot);
        }
        for (proc, stats) in partial {
            self.fold_stats(proc, &stats);
        }
        if let Some(cp) = &self.checkpoint {
            for p in Proc::ALL {
                if let Some(snapshot) = cp.take(p.idx()) {
                    self.state.absorb(&snapshot);
                }
            }
        }
    }

    fn fold_stats(&mut self, proc: Proc, stats: &ProcExec) {
        self.per_proc[proc.idx()].fold(stats);
        self.recovery.recv_retries += stats.recv_retries;
    }

    /// Record the run's counters into the metrics registry. Instruments
    /// for the recovery path are touched only when they measured
    /// something, so a clean run's metric snapshot is identical to the
    /// pre-recovery-engine one (the perf gate compares counter sets
    /// exactly).
    fn record_metrics(&self) {
        if !obs::metrics_enabled() {
            return;
        }
        let m = obs::metrics();
        for p in Proc::ALL {
            let pe = &self.per_proc[p.idx()];
            m.counter(obs::metrics::names::EXEC_UPDATES[p.idx()])
                .add(pe.updates);
            m.counter(obs::metrics::names::EXEC_ELEMS_SENT[p.idx()])
                .add(pe.elems_sent);
        }
        m.counter(obs::metrics::names::EXEC_RECOVERIES)
            .add(self.recovery.faults_detected);
        let guarded = [
            (
                obs::metrics::names::EXEC_RECV_RETRIES,
                self.recovery.recv_retries,
            ),
            (
                obs::metrics::names::EXEC_ATTEMPT_RETRIES,
                self.recovery.attempt_retries,
            ),
            (
                obs::metrics::names::EXEC_BACKOFF_NANOS,
                self.recovery.backoff_nanos,
            ),
            (
                obs::metrics::names::EXEC_CHECKPOINTS,
                self.recovery.checkpoints,
            ),
            (
                obs::metrics::names::EXEC_RESUMED_STEPS,
                self.recovery.resumed_steps,
            ),
            (
                obs::metrics::names::EXEC_REPLAYED_STEPS,
                self.recovery.replayed_steps,
            ),
        ];
        for (name, value) in guarded {
            if value > 0 {
                m.counter(name).add(value);
            }
        }
        if self.recovery.degraded_mode {
            m.counter(obs::metrics::names::EXEC_DEGRADED_RUNS).inc();
        }
    }

    fn finish(mut self, n: usize) -> (Matrix, ExecStats) {
        if let Some(cp) = &self.checkpoint {
            self.recovery.checkpoints = cp.writes();
        }
        self.record_metrics();
        let c = Matrix::from_fn(n, |i, j| self.state.c[i * n + j]);
        let stats = ExecStats {
            per_proc: self.per_proc,
            recovery: self.recovery,
        };
        (c, stats)
    }

    /// Graceful degrade: finish every incomplete cell serially from the
    /// checkpointed partials, attribute the tail to the fastest survivor
    /// (if any survives), and return `Ok` in degraded mode.
    fn finish_degraded(
        mut self,
        a: &Matrix,
        b: &Matrix,
        part: &Partition,
        active: &[Proc],
        reason: &str,
    ) -> (Matrix, ExecStats) {
        let n = part.n();
        let resume = self.state.resume_step();
        let mut tail_updates = 0u64;
        for i in 0..n {
            for j in 0..n {
                let idx = i * n + j;
                for k in self.state.next_k[idx] as usize..n {
                    self.state.c[idx] += a.get(i, k) * b.get(k, j);
                    tail_updates += 1;
                }
                self.state.next_k[idx] = n as u32;
            }
        }
        // The fastest survivor (by owned elements, ties to the lower
        // index) is the node the serial tail models running on.
        if let Some(s) = fallback_survivor(part, active) {
            self.per_proc[s.idx()].updates += tail_updates;
        }
        self.recovery.degraded_mode = true;
        self.recovery.resumed_steps += resume as u64;
        self.recovery.replayed_steps += (n - resume) as u64;
        if obs::enabled() {
            obs::emit(obs::EventKind::ExecDegraded {
                survivors: active.len() as u64,
                cascade_depth: self.recovery.faults_detected,
                reason: reason.to_string(),
                replayed: (n - resume) as u64,
            });
        }
        self.finish(n)
    }
}

/// [`multiply_partitioned`] with explicit executor configuration —
/// channel capacity, timeouts, retry/backoff budgets, checkpoint cadence,
/// recovery deadline, and (for tests) a deterministic [`FaultPlan`].
///
/// Rejects wedge-prone configurations with
/// [`HetmmmError::InvalidConfig`] (see [`ExecConfig::validate`]). On
/// worker failure the supervisor climbs the recovery ladder described in
/// the module docs; `stats.recovery` reports the activity, and the
/// returned C is always verified-correct in tests against `kij_serial` —
/// including degraded-mode exits.
pub fn multiply_partitioned_with(
    a: &Matrix,
    b: &Matrix,
    part: &Partition,
    config: &ExecConfig,
) -> Result<(Matrix, ExecStats), HetmmmError> {
    config.validate()?;
    let n = part.n();
    if a.n() != n {
        return Err(HetmmmError::dimension_mismatch("A vs partition", a.n(), n));
    }
    if b.n() != n {
        return Err(HetmmmError::dimension_mismatch("B vs partition", b.n(), n));
    }

    let mut active: Vec<Proc> = Proc::ALL.to_vec();
    let mut current = part.clone();
    let mut sup = Supervisor {
        state: CellState::new(n),
        per_proc: [ProcExec::default(); 3],
        recovery: RecoveryStats::default(),
        // Checkpointing piggybacks on fault injection: with no plan there
        // is nothing to rehearse and the clean hot path stays untouched.
        checkpoint: config
            .fault_plan
            .is_some()
            .then(|| Arc::new(Checkpoint::new())),
    };
    let backoff = config.backoff();
    let mut deadline: Option<u64> = None;
    let mut attempt_no: u64 = 0;
    let mut transient_used: u32 = 0;
    let mut pending_backoff: u64 = 0;
    let _span = obs::span_arg("exec.run", n as u64);

    loop {
        let start = sup.state.resume_step();
        attempt_no += 1;
        if attempt_no > 1 {
            sup.recovery.resumed_steps += start as u64;
            sup.recovery.replayed_steps += (n - start) as u64;
            if obs::enabled() {
                obs::emit(obs::EventKind::ExecResume {
                    attempt: attempt_no,
                    resume_step: start as u64,
                    resumed: start as u64,
                    replayed: (n - start) as u64,
                    survivors: active.len() as u64,
                    backoff_nanos: pending_backoff,
                });
            }
        }
        pending_backoff = 0;
        let ctx = AttemptCtx {
            config,
            state: &sup.state,
            checkpoint: sup.checkpoint.as_ref(),
            start,
        };
        match run_attempt(a, b, &current, &active, &ctx) {
            Attempt::Done(results) => {
                sup.absorb_attempt(results, Vec::new(), n);
                return Ok(sup.finish(n));
            }
            Attempt::Failed {
                dead,
                conclusive,
                weights,
                done,
                partial,
            } => {
                sup.absorb_attempt(done, partial, n);
                let now = config.clock.now_nanos();
                let dl = *deadline.get_or_insert_with(|| {
                    now.saturating_add(
                        config.recovery_deadline.as_nanos().min(u64::MAX as u128) as u64
                    )
                });
                if now >= dl {
                    return Ok(sup.finish_degraded(a, b, &current, &active, "deadline"));
                }
                if !conclusive && transient_used < config.retry_attempts {
                    // Inconclusive: nobody confessed. Back off and re-run
                    // from the checkpoint before blaming anyone — this is
                    // what absorbs transient silences.
                    let wait = backoff.delay(transient_used);
                    transient_used += 1;
                    sup.recovery.attempt_retries += 1;
                    let wait_nanos = wait.as_nanos().min(u64::MAX as u128) as u64;
                    sup.recovery.backoff_nanos += wait_nanos;
                    pending_backoff = wait_nanos;
                    config.clock.sleep(wait);
                    continue;
                }
                // Conviction: the evidence (or the exhausted retry
                // budget) stands. Each new fault gets a fresh transient
                // budget — cascades re-enter discrimination per fault.
                transient_used = 0;
                if obs::enabled() {
                    obs::emit(obs::EventKind::ExecBlame {
                        dead: dead.to_string(),
                        weights: weights.iter().map(|&w| w as u64).collect(),
                    });
                }
                sup.recovery.faults_detected += 1;
                sup.per_proc[dead.idx()] = ProcExec::default();
                active.retain(|&p| p != dead);
                if sup.recovery.retries >= config.max_retries {
                    return Ok(sup.finish_degraded(a, b, &current, &active, "retry-budget"));
                }
                sup.recovery.retries += 1;
                if active.len() < 2 {
                    return Ok(sup.finish_degraded(a, b, &current, &active, "sole-survivor"));
                }
                let degraded = degrade_partition(&current, dead);
                let reassigned_now = degraded.reassigned as u64;
                current = degraded.partition;
                sup.recovery.elems_reassigned += reassigned_now;
                if obs::enabled() {
                    obs::emit(obs::EventKind::ExecRepartition {
                        dead: dead.to_string(),
                        reassigned: reassigned_now,
                        survivors: active.len() as u64,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::kij_serial;
    use hetmmm_obs::FakeClock;
    use hetmmm_partition::{pairwise_volumes, PartitionBuilder, Rect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrices(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        (Matrix::random(n, &mut rng), Matrix::random(n, &mut rng))
    }

    /// Short timeouts and a tight retry/backoff budget so the
    /// timeout-driven fault tests stay fast.
    fn fast_config() -> ExecConfig {
        ExecConfig::default()
            .with_recv_timeout(Duration::from_millis(200))
            .with_retry_attempts(1)
            .with_backoff(Duration::from_millis(20), Duration::from_millis(40))
    }

    #[test]
    fn matches_serial_on_strips() {
        let n = 24;
        let (a, b) = random_matrices(n, 7);
        let part = Partition::from_fn(n, |i, _| {
            if i < 8 {
                Proc::P
            } else if i < 16 {
                Proc::R
            } else {
                Proc::S
            }
        });
        let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        let reference = kij_serial(&a, &b);
        assert!(c.max_abs_diff(&reference) < 1e-10);
        assert_eq!(stats.total_updates(), (n * n * n) as u64);
        assert_eq!(stats.recovery, RecoveryStats::default());
    }

    #[test]
    fn matches_serial_on_square_corner() {
        let n = 20;
        let (a, b) = random_matrices(n, 8);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 5), Proc::R)
            .rect(Rect::new(14, 19, 14, 19), Proc::S)
            .build();
        let (c, _) = multiply_partitioned(&a, &b, &part).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    }

    #[test]
    fn matches_serial_on_scatter() {
        // Even a pathological scatter must compute correctly.
        let n = 16;
        let (a, b) = random_matrices(n, 9);
        let part = Partition::from_fn(n, |i, j| match (i * 7 + j * 3) % 4 {
            0 => Proc::R,
            1 => Proc::S,
            _ => Proc::P,
        });
        let (c, _) = multiply_partitioned(&a, &b, &part).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
    }

    #[test]
    fn rejects_mismatched_dimensions() {
        let (a, _) = random_matrices(8, 13);
        let (_, b) = random_matrices(9, 13);
        let part = Partition::new(8, Proc::P);
        match multiply_partitioned(&a, &b, &part) {
            Err(HetmmmError::DimensionMismatch { left, right, .. }) => {
                assert_eq!((left, right), (9, 8));
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        let part = Partition::new(10, Proc::P);
        assert!(matches!(
            multiply_partitioned(&a, &a, &part),
            Err(HetmmmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wedge_prone_configs() {
        let (a, b) = random_matrices(4, 14);
        let part = Partition::new(4, Proc::P);
        let cases = [
            (
                ExecConfig::default().with_channel_capacity(0),
                "channel_capacity",
            ),
            (
                ExecConfig::default().with_recv_timeout(Duration::ZERO),
                "recv_timeout",
            ),
            (
                ExecConfig::default().with_checkpoint_every(0),
                "checkpoint_every",
            ),
            (
                ExecConfig::default()
                    .with_backoff(Duration::from_millis(100), Duration::from_millis(10)),
                "backoff_cap",
            ),
        ];
        for (config, expect_field) in cases {
            match multiply_partitioned_with(&a, &b, &part, &config) {
                Err(HetmmmError::InvalidConfig { field, .. }) => {
                    assert_eq!(field, expect_field);
                }
                other => panic!("expected InvalidConfig({expect_field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn traffic_matches_pairwise_volumes() {
        // The executor sends exactly the elements the analytic accounting
        // charges for: fragment element (i,k) of A goes to Y iff Y owns C
        // cells in row i, etc.
        let n = 18;
        let (a, b) = random_matrices(n, 10);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 8, 0, 5), Proc::R)
            .rect(Rect::new(10, 17, 9, 17), Proc::S)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        let vol = pairwise_volumes(&part);
        let expect: u64 = vol.iter().flatten().sum();
        assert_eq!(stats.total_sent(), expect);
        assert_eq!(stats.total_sent(), part.voc());
        // Per-sender totals match the row sums of the volume matrix.
        for x in Proc::ALL {
            let sent: u64 = vol[x.idx()].iter().sum();
            assert_eq!(stats.per_proc[x.idx()].elems_sent, sent, "{x}");
        }
    }

    #[test]
    fn single_owner_partition_sends_nothing() {
        let n = 8;
        let (a, b) = random_matrices(n, 11);
        let part = Partition::new(n, Proc::P);
        let (c, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.total_sent(), 0);
        assert_eq!(stats.per_proc[Proc::P.idx()].updates, (n * n * n) as u64);
    }

    #[test]
    fn updates_proportional_to_ownership() {
        let n = 12;
        let (a, b) = random_matrices(n, 12);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 11), Proc::R)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        assert_eq!(
            stats.per_proc[Proc::R.idx()].updates,
            (n * part.elems(Proc::R)) as u64
        );
        assert_eq!(
            stats.per_proc[Proc::P.idx()].updates,
            (n * part.elems(Proc::P)) as u64
        );
    }

    #[test]
    fn virtual_scb_time_matches_cost_model_without_latency() {
        let n = 18;
        let (a, b) = random_matrices(n, 21);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 8, 0, 5), Proc::R)
            .rect(Rect::new(10, 17, 9, 17), Proc::S)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        // Speeds indexed [R, S, P] to match Proc::idx.
        let beta = 1e-9;
        let speeds = [2e9, 1e9, 4e9];
        let virt = stats.virtual_scb_time(speeds, 0.0, beta);
        // Manual SCB: voc * beta + max over processors of
        // (N * elems) updates at the processor's speed.
        let comm = part.voc() as f64 * beta;
        let comp = [Proc::R, Proc::S, Proc::P]
            .iter()
            .map(|&p| (n * part.elems(p)) as f64 / speeds[p.idx()])
            .fold(0.0f64, f64::max);
        assert!((virt - (comm + comp)).abs() < 1e-15);
    }

    #[test]
    fn message_count_bounded_by_steps() {
        let n = 12;
        let (a, b) = random_matrices(n, 22);
        let part = PartitionBuilder::new(n)
            .rect(Rect::new(0, 5, 0, 11), Proc::R)
            .build();
        let (_, stats) = multiply_partitioned(&a, &b, &part).unwrap();
        // Each worker sends at most 2 peers x n steps non-empty messages.
        for p in Proc::ALL {
            assert!(stats.per_proc[p.idx()].messages <= (2 * n) as u64);
        }
        assert!(stats.total_messages() > 0);
    }

    // ---- fault-tolerance tests ----

    fn three_way(n: usize) -> Partition {
        PartitionBuilder::new(n)
            .rect(Rect::new(0, n / 3 - 1, 0, n - 1), Proc::R)
            .rect(Rect::new(n / 3, 2 * n / 3 - 1, 0, n - 1), Proc::S)
            .build()
    }

    #[test]
    fn injected_crash_recovers_with_correct_result() {
        let n = 18;
        let (a, b) = random_matrices(n, 31);
        let part = three_way(n);
        let dead_elems = part.elems(Proc::S) as u64;
        let config = fast_config().with_fault_plan(FaultPlan::crash(Proc::S, n / 2));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.faults_detected, 1);
        assert_eq!(stats.recovery.retries, 1);
        assert_eq!(stats.recovery.elems_reassigned, dead_elems);
        // A crash is a confession: convicted immediately, no supervisor
        // backoff attempts burned.
        assert_eq!(stats.recovery.attempt_retries, 0);
        // With checkpoint_every = 1 the re-attempt resumes at the crash
        // step instead of replaying from scratch.
        assert_eq!(stats.recovery.resumed_steps, (n / 2) as u64);
        assert_eq!(stats.recovery.replayed_steps, (n - n / 2) as u64);
        assert!(stats.recovery.checkpoints > 0);
        assert!(!stats.recovery.degraded_mode);
        // The dead worker's contribution is not attributed to anyone.
        assert_eq!(stats.per_proc[Proc::S.idx()], ProcExec::default());
    }

    #[test]
    fn crash_at_step_zero_recovers() {
        let n = 12;
        let (a, b) = random_matrices(n, 32);
        let part = three_way(n);
        let config = fast_config().with_fault_plan(FaultPlan::crash(Proc::R, 0));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.faults_detected, 1);
        // Nothing was checkpointed before step 0: full replay.
        assert_eq!(stats.recovery.resumed_steps, 0);
        assert_eq!(stats.recovery.replayed_steps, n as u64);
    }

    #[test]
    fn dropped_message_detected_and_convicted_after_retries() {
        let n = 12;
        let (a, b) = random_matrices(n, 33);
        let part = three_way(n);
        let plan = FaultPlan::new().with_fault(Proc::P, FaultKind::DropMessageAt { step: 3 });
        let config = fast_config().with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        // A lost message is inconclusive (nobody confesses), so the
        // supervisor burns its whole transient budget re-attempting —
        // the drop re-fires every attempt — before convicting P.
        assert_eq!(stats.recovery.attempt_retries, 1);
        assert_eq!(stats.recovery.faults_detected, 1);
        assert!(stats.recovery.backoff_nanos > 0);
        assert_eq!(stats.per_proc[Proc::P.idx()], ProcExec::default());
        assert!(!stats.recovery.degraded_mode);
    }

    #[test]
    fn short_delay_does_not_trigger_recovery() {
        let n = 10;
        let (a, b) = random_matrices(n, 34);
        let part = three_way(n);
        let plan = FaultPlan::new().with_fault(
            Proc::S,
            FaultKind::DelaySendAt {
                step: 2,
                millis: 20,
            },
        );
        let config = ExecConfig::default().with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        // Checkpoints are banked whenever a fault plan is installed, but
        // nothing else moved.
        assert_eq!(stats.recovery.faults_detected, 0);
        assert_eq!(stats.recovery.recv_retries, 0);
        assert_eq!(stats.recovery.attempt_retries, 0);
        assert!(!stats.recovery.degraded_mode);
    }

    #[test]
    fn delay_beyond_timeout_absorbed_by_receive_rewait() {
        let n = 10;
        let (a, b) = random_matrices(n, 39);
        let part = three_way(n);
        // 100ms delay vs a 60ms base timeout: the first wait times out,
        // the first backoff slice (60ms, ending at 120ms) absorbs it.
        let plan = FaultPlan::new().with_fault(
            Proc::S,
            FaultKind::DelaySendAt {
                step: 2,
                millis: 100,
            },
        );
        let config = ExecConfig::default()
            .with_recv_timeout(Duration::from_millis(60))
            .with_retry_attempts(2)
            .with_backoff(Duration::from_millis(60), Duration::from_millis(240))
            .with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        // Absorbed entirely at the worker layer: retries ticked, nobody
        // was blamed, no supervisor attempt was burned.
        assert_eq!(stats.recovery.faults_detected, 0);
        assert_eq!(stats.recovery.attempt_retries, 0);
        assert!(stats.recovery.recv_retries > 0);
        assert!(!stats.recovery.degraded_mode);
    }

    #[test]
    fn stall_is_convicted_on_peer_testimony() {
        let n = 9;
        let (a, b) = random_matrices(n, 40);
        let part = three_way(n);
        let plan = FaultPlan::new().with_fault(Proc::S, FaultKind::StallAt { step: 3 });
        let config = ExecConfig::default()
            .with_recv_timeout(Duration::from_millis(80))
            .with_retry_attempts(1)
            .with_backoff(Duration::from_millis(20), Duration::from_millis(40))
            .with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        // The staller never confesses: conviction rests on its peers'
        // timeout testimony, after the transient budget is exhausted.
        assert_eq!(stats.recovery.faults_detected, 1);
        assert_eq!(stats.recovery.attempt_retries, 1);
        assert!(stats.recovery.recv_retries > 0);
        assert_eq!(stats.per_proc[Proc::S.idx()], ProcExec::default());
        assert!(!stats.recovery.degraded_mode);
    }

    #[test]
    fn deadline_exhaustion_degrades_without_conviction() {
        let n = 9;
        let (a, b) = random_matrices(n, 41);
        let part = three_way(n);
        // A repeating inconclusive fault plus a recovery deadline shorter
        // than one backoff slice: the supervisor must give up re-attempting
        // and finish serially, without ever convicting anyone.
        let clock = Arc::new(FakeClock::new());
        let plan = FaultPlan::new().with_fault(Proc::P, FaultKind::DropMessageAt { step: 2 });
        let config = ExecConfig::default()
            .with_recv_timeout(Duration::from_millis(100))
            .with_retry_attempts(3)
            .with_backoff(Duration::from_millis(100), Duration::from_millis(100))
            .with_recovery_deadline(Duration::from_millis(50))
            .with_clock(clock)
            .with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert!(stats.recovery.degraded_mode);
        assert_eq!(
            stats.recovery.faults_detected, 0,
            "deadline beat conviction"
        );
        assert_eq!(stats.recovery.attempt_retries, 1);
        assert_eq!(
            stats.recovery.backoff_nanos,
            Duration::from_millis(100).as_nanos() as u64,
            "FakeClock makes the backoff schedule exactly reproducible"
        );
    }

    #[test]
    fn two_crashes_degrade_to_serial_on_sole_survivor() {
        let n = 15;
        let (a, b) = random_matrices(n, 35);
        let part = three_way(n);
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 2 })
            .with_fault(Proc::S, FaultKind::CrashAt { step: 5 });
        let config = fast_config().with_fault_plan(plan);
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        // The cascade re-enters blame per fault: two convictions, then a
        // graceful degrade to the single survivor.
        assert_eq!(stats.recovery.faults_detected, 2);
        assert_eq!(stats.recovery.retries, 2);
        assert!(stats.recovery.degraded_mode);
        assert_eq!(stats.per_proc[Proc::R.idx()], ProcExec::default());
        assert_eq!(stats.per_proc[Proc::S.idx()], ProcExec::default());
        // The second crash's checkpoint still pays off: the serial tail
        // starts past step 2.
        assert!(stats.recovery.resumed_steps > 0);
    }

    #[test]
    fn total_fault_cascade_still_returns_a_correct_result() {
        let n = 9;
        let (a, b) = random_matrices(n, 36);
        let part = three_way(n);
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 0 })
            .with_fault(Proc::S, FaultKind::CrashAt { step: 1 })
            .with_fault(Proc::P, FaultKind::CrashAt { step: 2 });
        let config = fast_config().with_fault_plan(plan);
        // PR 1 surfaced NoSurvivors here; the recovery engine now degrades
        // to the supervisor-side serial tail instead of failing the call.
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert!(stats.recovery.degraded_mode);
        assert_eq!(stats.recovery.faults_detected, 2);
    }

    #[test]
    fn retry_budget_exhaustion_degrades_to_serial() {
        let n = 9;
        let (a, b) = random_matrices(n, 37);
        let part = three_way(n);
        let plan = FaultPlan::new()
            .with_fault(Proc::R, FaultKind::CrashAt { step: 0 })
            .with_fault(Proc::S, FaultKind::CrashAt { step: 1 });
        let mut config = fast_config().with_fault_plan(plan);
        config.max_retries = 1;
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert!(stats.recovery.degraded_mode);
        assert_eq!(stats.recovery.faults_detected, 2);
        assert_eq!(stats.recovery.retries, 1);
    }

    #[test]
    fn crash_of_sole_owner_is_survivable() {
        // P owns every cell and dies: the empty survivors inherit all of
        // it, split between them, resuming from P's banked checkpoint.
        let n = 10;
        let (a, b) = random_matrices(n, 38);
        let part = Partition::new(n, Proc::P);
        let config = fast_config().with_fault_plan(FaultPlan::crash(Proc::P, 4));
        let (c, stats) = multiply_partitioned_with(&a, &b, &part, &config).unwrap();
        assert!(c.max_abs_diff(&kij_serial(&a, &b)) < 1e-10);
        assert_eq!(stats.recovery.elems_reassigned, (n * n) as u64);
        assert_eq!(stats.recovery.resumed_steps, 4);
        assert_eq!(stats.per_proc[Proc::P.idx()], ProcExec::default());
        assert!(!stats.recovery.degraded_mode);
    }
}
