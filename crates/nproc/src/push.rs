//! The generalized Push for `k` processors.
//!
//! The three-processor select-and-match operation carries over with one
//! structural change: there are `k − 1` possible displaced owners instead
//! of two, so the per-owner target buckets and the position-to-owner
//! assignment become vectors. The strictness ladder collapses the paper's
//! six types into three [`PushMode`]s (the displaced-side and active-side
//! knobs the types combine), each still governed by the exact ΔVoC
//! contract: `Strict` and `Budgeted` commit only on strict decrease,
//! `Relaxed` on non-increase.

use crate::grid::NPartition;
use serde::{Deserialize, Serialize};

/// Push direction (same semantics as the three-processor engine: Down
/// cleans the top edge of the active processor's enclosing rectangle).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NDirection {
    /// Clean the top row, move down.
    Down,
    /// Clean the bottom row, move up.
    Up,
    /// Clean the rightmost column, move left.
    Left,
    /// Clean the leftmost column, move right.
    Right,
}

impl NDirection {
    /// All four directions.
    pub const ALL: [NDirection; 4] = [
        NDirection::Down,
        NDirection::Up,
        NDirection::Left,
        NDirection::Right,
    ];
}

/// Legality ladder, from the paper's Type 1 (strictest) to Type 6.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PushMode {
    /// Active elements only into occupied lines; displaced owners only
    /// into positions they already share row/column with; ΔVoC < 0.
    Strict,
    /// Active side free (net budget), displaced side strict; ΔVoC < 0.
    Budgeted,
    /// Both sides free; ΔVoC ≤ 0.
    Relaxed,
}

impl PushMode {
    /// The ladder order `try_push_n` uses.
    pub const ALL: [PushMode; 3] = [PushMode::Strict, PushMode::Budgeted, PushMode::Relaxed];
}

/// Canonical-coordinate accessors for a direction.
struct NView<'a> {
    part: &'a mut NPartition,
    dir: NDirection,
    n: usize,
}

impl<'a> NView<'a> {
    fn new(part: &'a mut NPartition, dir: NDirection) -> NView<'a> {
        let n = part.n();
        NView { part, dir, n }
    }

    #[inline]
    fn map(&self, u: usize, v: usize) -> (usize, usize) {
        match self.dir {
            NDirection::Down => (u, v),
            NDirection::Up => (self.n - 1 - u, v),
            NDirection::Right => (v, u),
            NDirection::Left => (v, self.n - 1 - u),
        }
    }

    #[inline]
    fn get(&self, u: usize, v: usize) -> u8 {
        let (i, j) = self.map(u, v);
        self.part.get(i, j)
    }

    #[inline]
    fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let ra = self.map(a.0, a.1);
        let rb = self.map(b.0, b.1);
        self.part.swap(ra, rb);
    }

    #[inline]
    fn row_has(&self, proc: u8, u: usize) -> bool {
        match self.dir {
            NDirection::Down => self.part.row_has(proc, u),
            NDirection::Up => self.part.row_has(proc, self.n - 1 - u),
            NDirection::Right => self.part.col_has(proc, u),
            NDirection::Left => self.part.col_has(proc, self.n - 1 - u),
        }
    }

    #[inline]
    fn col_has(&self, proc: u8, v: usize) -> bool {
        match self.dir {
            NDirection::Down | NDirection::Up => self.part.col_has(proc, v),
            NDirection::Right | NDirection::Left => self.part.row_has(proc, v),
        }
    }

    #[inline]
    fn col_count(&self, proc: u8, v: usize) -> u32 {
        match self.dir {
            NDirection::Down | NDirection::Up => self.part.col_count(proc, v),
            NDirection::Right | NDirection::Left => self.part.row_count(proc, v),
        }
    }

    #[inline]
    fn row_count_canon(&self, proc: u8, u: usize) -> u32 {
        match self.dir {
            NDirection::Down => self.part.row_count(proc, u),
            NDirection::Up => self.part.row_count(proc, self.n - 1 - u),
            NDirection::Right => self.part.col_count(proc, u),
            NDirection::Left => self.part.col_count(proc, self.n - 1 - u),
        }
    }

    fn enclosing_rect_canonical(&self, proc: u8) -> Option<(usize, usize, usize, usize)> {
        let r = self.part.enclosing_rect(proc)?;
        let n = self.n;
        Some(match self.dir {
            NDirection::Down => (r.top, r.bottom, r.left, r.right),
            NDirection::Up => (n - 1 - r.bottom, n - 1 - r.top, r.left, r.right),
            NDirection::Right => (r.left, r.right, r.top, r.bottom),
            NDirection::Left => (n - 1 - r.right, n - 1 - r.left, r.top, r.bottom),
        })
    }
}

/// Result of an applied generalized push.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NAppliedPush {
    /// The active processor.
    pub proc: u8,
    /// Direction.
    pub dir: NDirection,
    /// Mode under which it was legal.
    pub mode: PushMode,
    /// Exact ΔVoC in line units.
    pub delta_voc_units: i64,
    /// Swaps performed.
    pub swaps: usize,
}

/// Attempt a push of `proc` in `dir`, trying modes strictest-first.
/// Commits the first legal one; otherwise leaves the partition untouched.
pub fn try_push_n(part: &mut NPartition, proc: u8, dir: NDirection) -> Option<NAppliedPush> {
    PushMode::ALL
        .iter()
        .find_map(|&mode| try_push_mode(part, proc, dir, mode))
}

/// Attempt a push under one specific mode.
pub fn try_push_mode(
    part: &mut NPartition,
    proc: u8,
    dir: NDirection,
    mode: PushMode,
) -> Option<NAppliedPush> {
    let k = part.k();
    let voc_before = part.voc_units() as i64;
    let mut view = NView::new(part, dir);
    let (top, bottom, left, right) = view.enclosing_rect_canonical(proc)?;
    if bottom == top {
        return None; // single-line rectangle: nowhere to go
    }
    let kline = top;

    let cleaned: Vec<usize> = (left..=right)
        .filter(|&v| view.get(kline, v) == proc)
        .collect();
    let m = cleaned.len();
    debug_assert!(m > 0);

    // Owner slots: every processor except the active one.
    let owners: Vec<u8> = (0..k as u8).filter(|&p| p != proc).collect();
    let slot_of = |p: u8| owners.iter().position(|&o| o == p).expect("owner slot");

    // Phase 1: bucket interior targets per owner by active dirty cost and
    // owner-line cleaning bonus.
    let cap = m + 64;
    let mut buckets: Vec<[Vec<(usize, usize)>; 6]> =
        (0..owners.len()).map(|_| Default::default()).collect();
    for g in (kline + 1)..=bottom {
        for h in left..=right {
            let owner = view.get(g, h);
            if owner == proc {
                continue;
            }
            let col_has_excl_k = {
                let mut cnt = view.col_count(proc, h);
                if view.get(kline, h) == proc {
                    cnt -= 1;
                }
                cnt > 0
            };
            let cost = usize::from(!view.row_has(proc, g)) + usize::from(!col_has_excl_k);
            let cleans = view.row_count_canon(owner, g) == 1 || view.col_count(owner, h) == 1;
            let bucket = cost * 2 + usize::from(!cleans);
            let vec = &mut buckets[slot_of(owner)][bucket];
            if vec.len() < cap {
                vec.push((g, h));
            }
        }
    }
    let owner_targets: Vec<Vec<(usize, usize)>> = buckets
        .into_iter()
        .map(|b| b.into_iter().flatten().collect())
        .collect();

    // Phase 2: assign an owner to each vacated position. A position is
    // free for an owner when that owner already occupies both the cleaned
    // line and the position's cross line.
    let row_k_has: Vec<bool> = owners.iter().map(|&o| view.row_has(o, kline)).collect();
    let displaced_strict = !matches!(mode, PushMode::Relaxed);
    let mut demand = vec![0usize; owners.len()];
    let avail: Vec<usize> = owner_targets.iter().map(Vec::len).collect();
    let mut assignment: Vec<usize> = Vec::with_capacity(m);
    let mut flexible: Vec<usize> = Vec::new();
    for (idx, &v) in cleaned.iter().enumerate() {
        let free: Vec<usize> = (0..owners.len())
            .filter(|&s| row_k_has[s] && view.col_has(owners[s], v))
            .collect();
        match free.len() {
            0 if displaced_strict => return None,
            1 if demand[free[0]] < avail[free[0]] => {
                assignment.push(free[0]);
                demand[free[0]] += 1;
            }
            _ => {
                // Prefer a free owner with spare targets; resolved below.
                assignment.push(usize::MAX);
                flexible.push(idx);
            }
        }
    }
    for idx in flexible {
        let v = cleaned[idx];
        // Free owners first, then anyone with spare targets.
        let mut order: Vec<usize> = (0..owners.len()).collect();
        order.sort_by_key(|&s| !(row_k_has[s] && view.col_has(owners[s], v)));
        let mut placed = false;
        for s in order {
            if demand[s] < avail[s] {
                if displaced_strict && !(row_k_has[s] && view.col_has(owners[s], v)) {
                    continue;
                }
                assignment[idx] = s;
                demand[s] += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }

    // Phase 3: pair and swap under the active-side rules.
    let mut journal: Vec<((usize, usize), (usize, usize))> = Vec::with_capacity(m);
    let mut dirty_used = 0usize;
    let mut next = vec![0usize; owners.len()];
    let mut ok = true;
    'elems: for (idx, &v) in cleaned.iter().enumerate() {
        let slot = assignment[idx];
        loop {
            let Some(&(g, h)) = owner_targets[slot].get(next[slot]) else {
                ok = false;
                break 'elems;
            };
            next[slot] += 1;
            if view.get(g, h) == proc {
                continue;
            }
            let col_has_excl_k = {
                let mut cnt = view.col_count(proc, h);
                if view.get(kline, h) == proc {
                    cnt -= 1;
                }
                cnt > 0
            };
            let cost = usize::from(!view.row_has(proc, g)) + usize::from(!col_has_excl_k);
            let admissible = match mode {
                PushMode::Strict => cost == 0 || dirty_used + cost <= 1,
                PushMode::Budgeted | PushMode::Relaxed => true,
            };
            if !admissible {
                continue;
            }
            view.swap((kline, v), (g, h));
            journal.push(((kline, v), (g, h)));
            dirty_used += cost;
            break;
        }
    }

    let delta = view.part.voc_units() as i64 - voc_before;
    let contract_ok = match mode {
        PushMode::Strict | PushMode::Budgeted => delta < 0,
        PushMode::Relaxed => delta <= 0,
    };
    if !ok || !contract_ok {
        for &(a, b) in journal.iter().rev() {
            view.swap(a, b);
        }
        debug_assert_eq!(view.part.voc_units() as i64, voc_before);
        return None;
    }
    Some(NAppliedPush {
        proc,
        dir,
        mode,
        delta_voc_units: delta,
        swaps: journal.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_never_raises_voc_k4() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut part = NPartition::random(24, &[6, 3, 2, 1], &mut rng);
        let mut voc = part.voc();
        for _ in 0..50 {
            let mut any = false;
            for proc in 1..4u8 {
                for dir in NDirection::ALL {
                    if let Some(ap) = try_push_n(&mut part, proc, dir) {
                        assert!(ap.delta_voc_units <= 0);
                        assert!(part.voc() <= voc);
                        voc = part.voc();
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }
        part.assert_invariants();
    }

    #[test]
    fn failed_push_rolls_back_k5() {
        let mut rng = StdRng::seed_from_u64(2);
        let part = NPartition::random(16, &[8, 3, 2, 2, 1], &mut rng);
        for proc in 1..5u8 {
            for dir in NDirection::ALL {
                for mode in PushMode::ALL {
                    let mut scratch = part.clone();
                    if try_push_mode(&mut scratch, proc, dir, mode).is_none() {
                        assert_eq!(scratch, part, "{proc} {dir:?} {mode:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn element_counts_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut part = NPartition::random(20, &[5, 2, 2, 1], &mut rng);
        let before: Vec<usize> = (0..4).map(|p| part.elems(p as u8)).collect();
        for proc in 1..4u8 {
            for dir in NDirection::ALL {
                let _ = try_push_n(&mut part, proc, dir);
            }
        }
        let after: Vec<usize> = (0..4).map(|p| part.elems(p as u8)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn exact_square_is_fixed_point() {
        // A k=4 partition with three exact corner squares: no pushes.
        let mut part = NPartition::new(12, 4);
        for i in 0..4 {
            for j in 0..4 {
                part.set(i, j, 1);
                part.set(i + 8, j + 8, 2);
                part.set(i, j + 8, 3);
            }
        }
        for proc in 1..4u8 {
            for dir in NDirection::ALL {
                let mut scratch = part.clone();
                assert!(
                    try_push_n(&mut scratch, proc, dir).is_none(),
                    "{proc} {dir:?} should not push"
                );
            }
        }
    }
}
