//! The generalized Push for `k` processors.
//!
//! The three-processor select-and-match operation carries over with one
//! structural change: there are `k − 1` possible displaced owners instead
//! of two, so the per-owner target buckets and the position-to-owner
//! assignment become vectors. The strictness ladder collapses the paper's
//! six types into three [`PushMode`]s (the displaced-side and active-side
//! knobs the types combine), each still governed by the exact ΔVoC
//! contract: `Strict` and `Budgeted` commit only on strict decrease,
//! `Relaxed` on non-increase.
//!
//! Mirroring the three-processor engine, the operation is split into a
//! mode-independent [`n_prepare`] (enclosing rectangle, cleaned line,
//! per-owner target buckets) and a per-mode [`n_attempt`], both generic
//! over the [`NPushGrid`] accessor trait. Two grids implement it: the
//! mutable [`NView`] that applies real pushes, and the read-only overlay
//! behind [`push_feasible_n`] that answers feasibility without cloning.

use crate::grid::NPartition;
use hetmmm_push::geom::Axis;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Push direction (same semantics as the three-processor engine: Down
/// cleans the top edge of the active processor's enclosing rectangle).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NDirection {
    /// Clean the top row, move down.
    Down,
    /// Clean the bottom row, move up.
    Up,
    /// Clean the rightmost column, move left.
    Left,
    /// Clean the leftmost column, move right.
    Right,
}

impl NDirection {
    /// All four directions.
    pub const ALL: [NDirection; 4] = [
        NDirection::Down,
        NDirection::Up,
        NDirection::Left,
        NDirection::Right,
    ];

    /// Position in [`NDirection::ALL`]; used for dense per-(proc, dir)
    /// tables such as the probe cache.
    pub(crate) fn index(self) -> usize {
        match self {
            NDirection::Down => 0,
            NDirection::Up => 1,
            NDirection::Left => 2,
            NDirection::Right => 3,
        }
    }
}

/// Legality ladder, from the paper's Type 1 (strictest) to Type 6.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PushMode {
    /// Active elements only into occupied lines; displaced owners only
    /// into positions they already share row/column with; ΔVoC < 0.
    Strict,
    /// Active side free (net budget), displaced side strict; ΔVoC < 0.
    Budgeted,
    /// Both sides free; ΔVoC ≤ 0.
    Relaxed,
}

impl PushMode {
    /// The ladder order `try_push_n` uses.
    pub const ALL: [PushMode; 3] = [PushMode::Strict, PushMode::Budgeted, PushMode::Relaxed];
}

/// Canonical-coordinate grid accessors the generalized push kernel needs.
/// Implemented by the mutable [`NView`] and by the probe's read-only
/// overlay, so applying and probing share one legality implementation.
/// Method names mirror the three-processor `PushGrid` trait.
///
/// `enclosing_rect` and `line_word` are only consulted by [`n_prepare`],
/// before any swap; overlay implementations may answer them from their
/// base grid.
trait NPushGrid {
    /// Owner of canonical cell `(u, v)`.
    fn get(&self, u: usize, v: usize) -> u8;
    /// Swap two canonical cells.
    fn swap(&mut self, a: (usize, usize), b: (usize, usize));
    /// Does canonical row `u` contain elements of `proc`?
    fn row_has(&self, proc: u8, u: usize) -> bool;
    /// Does canonical column `v` contain elements of `proc`?
    fn col_has(&self, proc: u8, v: usize) -> bool;
    /// Elements of `proc` in canonical column `v`.
    fn col_count(&self, proc: u8, v: usize) -> u32;
    /// Elements of `proc` in canonical row `u`.
    fn row_count(&self, proc: u8, u: usize) -> u32;
    /// Enclosing rectangle `(top, bottom, left, right)` in canonical
    /// coordinates.
    fn enclosing_rect(&self, proc: u8) -> Option<(usize, usize, usize, usize)>;
    /// VoC line units of the underlying grid.
    fn voc_units(&self) -> u64;
    /// Word `w` of `proc`'s canonical-row-`u` bit-plane line (bit `b` =
    /// canonical cell `(u, w * 64 + b)`), for the word sweeps in
    /// [`n_prepare`].
    fn line_word(&self, proc: u8, u: usize, w: usize) -> u64;
}

/// Canonical-coordinate accessors for a direction.
struct NView<'a> {
    part: &'a mut NPartition,
    dir: NDirection,
    n: usize,
}

impl<'a> NView<'a> {
    hetmmm_push::canonical_geometry!(dir: crate::push::NDirection, proc: u8, base: part);

    fn new(part: &'a mut NPartition, dir: NDirection) -> NView<'a> {
        let n = part.n();
        NView { part, dir, n }
    }
}

impl NPushGrid for NView<'_> {
    #[inline]
    fn get(&self, u: usize, v: usize) -> u8 {
        let (i, j) = self.map(u, v);
        self.part.get(i, j)
    }

    #[inline]
    fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let ra = self.map(a.0, a.1);
        let rb = self.map(b.0, b.1);
        self.part.swap(ra, rb);
    }

    #[inline]
    fn row_has(&self, proc: u8, u: usize) -> bool {
        match self.canon_row_line(u) {
            (i, Axis::Row) => self.part.row_has(proc, i),
            (j, Axis::Col) => self.part.col_has(proc, j),
        }
    }

    #[inline]
    fn col_has(&self, proc: u8, v: usize) -> bool {
        match self.canon_col_line(v) {
            (j, Axis::Col) => self.part.col_has(proc, j),
            (i, Axis::Row) => self.part.row_has(proc, i),
        }
    }

    #[inline]
    fn col_count(&self, proc: u8, v: usize) -> u32 {
        match self.canon_col_line(v) {
            (j, Axis::Col) => self.part.col_count(proc, j),
            (i, Axis::Row) => self.part.row_count(proc, i),
        }
    }

    #[inline]
    fn row_count(&self, proc: u8, u: usize) -> u32 {
        match self.canon_row_line(u) {
            (i, Axis::Row) => self.part.row_count(proc, i),
            (j, Axis::Col) => self.part.col_count(proc, j),
        }
    }

    fn enclosing_rect(&self, proc: u8) -> Option<(usize, usize, usize, usize)> {
        let r = self.part.enclosing_rect(proc)?;
        Some(self.canon_rect(r.top, r.bottom, r.left, r.right))
    }

    #[inline]
    fn voc_units(&self) -> u64 {
        self.part.voc_units()
    }

    #[inline]
    fn line_word(&self, proc: u8, u: usize, w: usize) -> u64 {
        self.plane_line_word(proc, u, w)
    }
}

/// Result of an applied generalized push.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NAppliedPush {
    /// The active processor.
    pub proc: u8,
    /// Direction.
    pub dir: NDirection,
    /// Mode under which it was legal.
    pub mode: PushMode,
    /// Exact ΔVoC in line units.
    pub delta_voc_units: i64,
    /// Swaps performed.
    pub swaps: usize,
    /// Bitmask (bit = processor id, `k ≤ 64` by construction) of every
    /// processor whose elements the push moved: the active processor plus
    /// each displaced receiver. The search uses it to evict probe-cache
    /// slots for exactly the processors whose occupancy changed.
    pub touched_mask: u64,
}

/// Mode-independent preparation of a push attempt: the cleaned line and
/// the per-owner candidate target lists (phase 1). Computed once and
/// reused across the mode ladder by [`try_push_n`] and the probe.
struct NPrepared {
    /// Canonical index of the cleaned line.
    kline: usize,
    /// Canonical columns of the active processor's elements in that line.
    cleaned: Vec<usize>,
    /// Owner slot order: every processor except the active one.
    owners: Vec<u8>,
    /// Candidate interior targets per owner slot, best-first.
    owner_targets: Vec<Vec<(usize, usize)>>,
}

/// Phase 1 — locate the cleaned line and bucket interior targets per
/// displaced owner by active dirty cost and owner-line cleaning bonus.
fn n_prepare<G: NPushGrid>(view: &G, proc: u8, k: usize) -> Option<NPrepared> {
    let (top, bottom, left, right) = view.enclosing_rect(proc)?;
    if bottom == top {
        return None; // single-line rectangle: nowhere to go
    }
    let kline = top;

    // Word range and per-word masks covering canonical columns
    // [left, right] of the bit-planes.
    let w_lo = left / 64;
    let w_hi = right / 64;
    let lo_mask = !0u64 << (left % 64);
    let hi_mask = {
        let r = right % 64;
        if r == 63 {
            !0u64
        } else {
            (1u64 << (r + 1)) - 1
        }
    };
    let rect_mask = |w: usize| -> u64 {
        let mut m = !0u64;
        if w == w_lo {
            m &= lo_mask;
        }
        if w == w_hi {
            m &= hi_mask;
        }
        m
    };

    // Active elements in the cleaned line, word-wise (ascending v).
    let mut cleaned: Vec<usize> = Vec::new();
    for w in w_lo..=w_hi {
        let mut bits = view.line_word(proc, kline, w) & rect_mask(w);
        while bits != 0 {
            cleaned.push(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
    let m = cleaned.len();
    debug_assert!(m > 0);

    // Owner slots: every processor except the active one, ascending.
    let owners: Vec<u8> = (0..k as u8).filter(|&p| p != proc).collect();

    // Per-column facts are invariant during prepare, so compute them once
    // per rectangle width as bitmasks over the rect words: `col_ok[w]`
    // bit b — the active side already owns column `w*64+b` outside the
    // cleaned line; `col_cleans[slot][w]` bit b — removing the owner's
    // element would empty that owner's column.
    let wn = w_hi - w_lo + 1;
    let mut col_ok = vec![0u64; wn];
    let mut col_cleans = vec![vec![0u64; wn]; owners.len()];
    for w in w_lo..=w_hi {
        let row_k = view.line_word(proc, kline, w);
        let mut bits = rect_mask(w);
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let h = w * 64 + b;
            let mut cnt = view.col_count(proc, h);
            if (row_k >> b) & 1 == 1 {
                cnt -= 1;
            }
            if cnt > 0 {
                col_ok[w - w_lo] |= 1u64 << b;
            }
            for (slot, &owner) in owners.iter().enumerate() {
                if view.col_count(owner, h) == 1 {
                    col_cleans[slot][w - w_lo] |= 1u64 << b;
                }
            }
        }
    }

    // Sweep each owner's bit-plane words over the rectangle interior.
    // Per owner the candidates still arrive in (g, h) lexicographic order
    // — the order the per-cell scan produced — so every bucket's contents
    // and cap truncation are unchanged.
    let cap = m + 64;
    let mut buckets: Vec<[Vec<(usize, usize)>; 6]> =
        (0..owners.len()).map(|_| Default::default()).collect();
    for g in (kline + 1)..=bottom {
        let row_dirty = usize::from(!view.row_has(proc, g));
        for (slot, &owner) in owners.iter().enumerate() {
            let row_cleans = view.row_count(owner, g) == 1;
            for w in w_lo..=w_hi {
                let mut bits = view.line_word(owner, g, w) & rect_mask(w);
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let cost = row_dirty + usize::from((col_ok[w - w_lo] >> b) & 1 == 0);
                    let cleans = row_cleans || (col_cleans[slot][w - w_lo] >> b) & 1 == 1;
                    let bucket = cost * 2 + usize::from(!cleans);
                    let vec = &mut buckets[slot][bucket];
                    if vec.len() < cap {
                        vec.push((g, w * 64 + b));
                    }
                }
            }
        }
    }
    let owner_targets: Vec<Vec<(usize, usize)>> = buckets
        .into_iter()
        .map(|b| b.into_iter().flatten().collect())
        .collect();
    Some(NPrepared {
        kline,
        cleaned,
        owners,
        owner_targets,
    })
}

/// Outcome of a successful [`n_attempt`].
struct NAttemptOutcome {
    delta: i64,
    swaps: usize,
    touched_mask: u64,
}

/// Phases 2 and 3 under one mode — owner assignment, greedy pairing,
/// swaps, and the ΔVoC contract. Rolls back completely on failure.
fn n_attempt<G: NPushGrid>(
    view: &mut G,
    proc: u8,
    mode: PushMode,
    prep: &NPrepared,
    voc_before: i64,
) -> Option<NAttemptOutcome> {
    let kline = prep.kline;
    let cleaned = &prep.cleaned;
    let owners = &prep.owners;
    let owner_targets = &prep.owner_targets;
    let m = cleaned.len();

    // Phase 2: assign an owner to each vacated position. A position is
    // free for an owner when that owner already occupies both the cleaned
    // line and the position's cross line.
    let row_k_has: Vec<bool> = owners.iter().map(|&o| view.row_has(o, kline)).collect();
    let displaced_strict = !matches!(mode, PushMode::Relaxed);
    let mut demand = vec![0usize; owners.len()];
    let avail: Vec<usize> = owner_targets.iter().map(Vec::len).collect();
    let mut assignment: Vec<usize> = Vec::with_capacity(m);
    let mut flexible: Vec<usize> = Vec::new();
    for (idx, &v) in cleaned.iter().enumerate() {
        let free: Vec<usize> = (0..owners.len())
            .filter(|&s| row_k_has[s] && view.col_has(owners[s], v))
            .collect();
        match free.len() {
            0 if displaced_strict => return None,
            1 if demand[free[0]] < avail[free[0]] => {
                assignment.push(free[0]);
                demand[free[0]] += 1;
            }
            _ => {
                // Prefer a free owner with spare targets; resolved below.
                assignment.push(usize::MAX);
                flexible.push(idx);
            }
        }
    }
    for idx in flexible {
        let v = cleaned[idx];
        // Free owners first, then anyone with spare targets.
        let mut order: Vec<usize> = (0..owners.len()).collect();
        order.sort_by_key(|&s| !(row_k_has[s] && view.col_has(owners[s], v)));
        let mut placed = false;
        for s in order {
            if demand[s] < avail[s] {
                if displaced_strict && !(row_k_has[s] && view.col_has(owners[s], v)) {
                    continue;
                }
                assignment[idx] = s;
                demand[s] += 1;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }

    // Phase 3: pair and swap under the active-side rules.
    let mut journal: Vec<((usize, usize), (usize, usize))> = Vec::with_capacity(m);
    let mut dirty_used = 0usize;
    let mut next = vec![0usize; owners.len()];
    let mut touched_mask = 0u64;
    let mut ok = true;
    'elems: for (idx, &v) in cleaned.iter().enumerate() {
        let slot = assignment[idx];
        loop {
            let Some(&(g, h)) = owner_targets[slot].get(next[slot]) else {
                ok = false;
                break 'elems;
            };
            next[slot] += 1;
            if view.get(g, h) == proc {
                continue;
            }
            let col_has_excl_k = {
                let mut cnt = view.col_count(proc, h);
                if view.get(kline, h) == proc {
                    cnt -= 1;
                }
                cnt > 0
            };
            let cost = usize::from(!view.row_has(proc, g)) + usize::from(!col_has_excl_k);
            let admissible = match mode {
                PushMode::Strict => cost == 0 || dirty_used + cost <= 1,
                PushMode::Budgeted | PushMode::Relaxed => true,
            };
            if !admissible {
                continue;
            }
            view.swap((kline, v), (g, h));
            journal.push(((kline, v), (g, h)));
            touched_mask |= 1u64 << owners[slot];
            dirty_used += cost;
            break;
        }
    }

    let delta = view.voc_units() as i64 - voc_before;
    let contract_ok = match mode {
        PushMode::Strict | PushMode::Budgeted => delta < 0,
        PushMode::Relaxed => delta <= 0,
    };
    if !ok || !contract_ok {
        for &(a, b) in journal.iter().rev() {
            view.swap(a, b);
        }
        debug_assert_eq!(view.voc_units() as i64, voc_before);
        return None;
    }
    touched_mask |= 1u64 << proc;
    Some(NAttemptOutcome {
        delta,
        swaps: journal.len(),
        touched_mask,
    })
}

/// Attempt a push of `proc` in `dir`, trying modes strictest-first.
/// Commits the first legal one; otherwise leaves the partition untouched.
/// Phase 1 is mode-independent (and failed attempts roll back exactly),
/// so it is computed once and shared across the ladder.
pub fn try_push_n(part: &mut NPartition, proc: u8, dir: NDirection) -> Option<NAppliedPush> {
    let k = part.k();
    let voc_before = part.voc_units() as i64;
    let mut view = NView::new(part, dir);
    let prep = n_prepare(&view, proc, k)?;
    PushMode::ALL.iter().find_map(|&mode| {
        n_attempt(&mut view, proc, mode, &prep, voc_before).map(|out| NAppliedPush {
            proc,
            dir,
            mode,
            delta_voc_units: out.delta,
            swaps: out.swaps,
            touched_mask: out.touched_mask,
        })
    })
}

/// Attempt a push under one specific mode.
pub fn try_push_mode(
    part: &mut NPartition,
    proc: u8,
    dir: NDirection,
    mode: PushMode,
) -> Option<NAppliedPush> {
    let k = part.k();
    let voc_before = part.voc_units() as i64;
    let mut view = NView::new(part, dir);
    let prep = n_prepare(&view, proc, k)?;
    n_attempt(&mut view, proc, mode, &prep, voc_before).map(|out| NAppliedPush {
        proc,
        dir,
        mode,
        delta_voc_units: out.delta,
        swaps: out.swaps,
        touched_mask: out.touched_mask,
    })
}

/// Reusable overlay storage for the clone-free feasibility probe; the
/// k-processor analogue of the three-processor `ProbeScratch`. All maps
/// are sparse — O(cleaned-line) entries keyed by the lines a probe
/// actually touches — so the scratch is independent of `(n, k)` and needs
/// no sizing step.
#[derive(Debug, Default)]
struct NProbeScratch {
    /// Overlay cell assignments as `(flat index, owner)`.
    cells: Vec<(u32, u8)>,
    /// Per-(proc, row) count deltas, keyed by the flat `proc * n + row`
    /// index. Linear-scanned like `cells`.
    row_delta: Vec<(u32, i32)>,
    /// Per-(proc, col) count deltas, keyed by `proc * n + col`.
    col_delta: Vec<(u32, i32)>,
    /// Overlay ΔVoC in line units relative to the base.
    voc_delta: i64,
}

impl NProbeScratch {
    /// Empty the overlay without freeing its storage.
    fn reset(&mut self) {
        self.cells.clear();
        self.row_delta.clear();
        self.col_delta.clear();
        self.voc_delta = 0;
    }
}

/// Read-only overlay view for probing: base partition plus scratch deltas,
/// with the same canonical mapping as [`NView`].
struct NProbeView<'a> {
    base: &'a NPartition,
    scratch: &'a mut NProbeScratch,
    dir: NDirection,
    n: usize,
}

impl NProbeView<'_> {
    hetmmm_push::canonical_geometry!(dir: crate::push::NDirection, proc: u8, base: base);

    #[inline]
    fn get_real(&self, i: usize, j: usize) -> u8 {
        let idx = (i * self.n + j) as u32;
        for &(c, p) in &self.scratch.cells {
            if c == idx {
                return p;
            }
        }
        self.base.get(i, j)
    }

    #[inline]
    fn row_count_real(&self, proc: u8, i: usize) -> i64 {
        let idx = (proc as usize * self.n + i) as u32;
        let delta = self
            .scratch
            .row_delta
            .iter()
            .find(|(r, _)| *r == idx)
            .map_or(0, |&(_, d)| d);
        i64::from(self.base.row_count(proc, i)) + i64::from(delta)
    }

    #[inline]
    fn col_count_real(&self, proc: u8, j: usize) -> i64 {
        let idx = (proc as usize * self.n + j) as u32;
        let delta = self
            .scratch
            .col_delta
            .iter()
            .find(|(c, _)| *c == idx)
            .map_or(0, |&(_, d)| d);
        i64::from(self.base.col_count(proc, j)) + i64::from(delta)
    }

    fn bump_row(&mut self, proc: u8, i: usize, by: i32) {
        let idx = (proc as usize * self.n + i) as u32;
        match self.scratch.row_delta.iter_mut().find(|(r, _)| *r == idx) {
            Some((_, d)) => *d += by,
            None => self.scratch.row_delta.push((idx, by)),
        }
    }

    fn bump_col(&mut self, proc: u8, j: usize, by: i32) {
        let idx = (proc as usize * self.n + j) as u32;
        match self.scratch.col_delta.iter_mut().find(|(c, _)| *c == idx) {
            Some((_, d)) => *d += by,
            None => self.scratch.col_delta.push((idx, by)),
        }
    }

    /// Overlay mirror of `NPartition::set`: same count-before-transition
    /// ΔVoC rules, applied to the scratch deltas.
    fn set_real(&mut self, i: usize, j: usize, proc: u8) {
        let old = self.get_real(i, j);
        if old == proc {
            return;
        }
        let idx = (i * self.n + j) as u32;
        match self.scratch.cells.iter_mut().find(|(c, _)| *c == idx) {
            Some(entry) => entry.1 = proc,
            None => self.scratch.cells.push((idx, proc)),
        }
        if self.row_count_real(old, i) == 1 {
            self.scratch.voc_delta -= 1;
        }
        self.bump_row(old, i, -1);
        if self.row_count_real(proc, i) == 0 {
            self.scratch.voc_delta += 1;
        }
        self.bump_row(proc, i, 1);
        if self.col_count_real(old, j) == 1 {
            self.scratch.voc_delta -= 1;
        }
        self.bump_col(old, j, -1);
        if self.col_count_real(proc, j) == 0 {
            self.scratch.voc_delta += 1;
        }
        self.bump_col(proc, j, 1);
    }
}

impl NPushGrid for NProbeView<'_> {
    #[inline]
    fn get(&self, u: usize, v: usize) -> u8 {
        let (i, j) = self.map(u, v);
        self.get_real(i, j)
    }

    fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let ra = self.map(a.0, a.1);
        let rb = self.map(b.0, b.1);
        let pa = self.get_real(ra.0, ra.1);
        let pb = self.get_real(rb.0, rb.1);
        if pa == pb {
            return;
        }
        self.set_real(ra.0, ra.1, pb);
        self.set_real(rb.0, rb.1, pa);
    }

    #[inline]
    fn row_has(&self, proc: u8, u: usize) -> bool {
        NPushGrid::row_count(self, proc, u) > 0
    }

    #[inline]
    fn col_has(&self, proc: u8, v: usize) -> bool {
        NPushGrid::col_count(self, proc, v) > 0
    }

    #[inline]
    fn col_count(&self, proc: u8, v: usize) -> u32 {
        let count = match self.canon_col_line(v) {
            (j, Axis::Col) => self.col_count_real(proc, j),
            (i, Axis::Row) => self.row_count_real(proc, i),
        };
        debug_assert!(count >= 0, "overlay drove a line count negative");
        count as u32
    }

    #[inline]
    fn row_count(&self, proc: u8, u: usize) -> u32 {
        let count = match self.canon_row_line(u) {
            (i, Axis::Row) => self.row_count_real(proc, i),
            (j, Axis::Col) => self.col_count_real(proc, j),
        };
        debug_assert!(count >= 0, "overlay drove a line count negative");
        count as u32
    }

    /// Answered from the base grid: the kernel only consults the rectangle
    /// in [`n_prepare`], before any overlay swap (rolled-back attempts
    /// leave only zero-net-effect identity entries).
    fn enclosing_rect(&self, proc: u8) -> Option<(usize, usize, usize, usize)> {
        let r = self.base.enclosing_rect(proc)?;
        Some(self.canon_rect(r.top, r.bottom, r.left, r.right))
    }

    #[inline]
    fn voc_units(&self) -> u64 {
        let units = self.base.voc_units() as i64 + self.scratch.voc_delta;
        debug_assert!(units >= 0, "overlay drove voc_units negative");
        units as u64
    }

    /// Bit-plane line words from the *base* grid — valid under the same
    /// pre-swap contract as [`NPushGrid::enclosing_rect`].
    #[inline]
    fn line_word(&self, proc: u8, u: usize, w: usize) -> u64 {
        self.plane_line_word(proc, u, w)
    }
}

fn push_feasible_n_with(
    scratch: &mut NProbeScratch,
    part: &NPartition,
    proc: u8,
    dir: NDirection,
) -> bool {
    let k = part.k();
    scratch.reset();
    let voc_before = part.voc_units() as i64;
    let mut view = NProbeView {
        base: part,
        scratch,
        dir,
        n: part.n(),
    };
    let Some(prep) = n_prepare(&view, proc, k) else {
        return false;
    };
    PushMode::ALL
        .iter()
        .any(|&mode| n_attempt(&mut view, proc, mode, &prep, voc_before).is_some())
}

thread_local! {
    static N_SCRATCH: RefCell<NProbeScratch> = RefCell::new(NProbeScratch::default());
}

/// Non-mutating query: would a push of `proc` in `dir` be legal under any
/// [`PushMode`]? Decided by the same kernel as [`try_push_n`] against a
/// reusable overlay — no clone of the `O(N²)` grid, safe on a shared
/// reference.
pub fn push_feasible_n(part: &NPartition, proc: u8, dir: NDirection) -> bool {
    N_SCRATCH.with(|scratch| push_feasible_n_with(&mut scratch.borrow_mut(), part, proc, dir))
}

/// Hash-verified probe-verdict cache for one k-processor search run: one
/// slot per `(pushable proc, direction)`. As in the three-processor
/// engine, a lookup hits only on an exact `state_hash` match (a push by
/// one processor can flip another's verdict, so touched-based invalidation
/// alone would be unsound); [`NProbeCache::evict_touched`] is hygiene.
#[derive(Debug)]
pub(crate) struct NProbeCache {
    /// `(state hash, verdict)` per slot; slot = `(proc - 1) * 4 + dir`.
    /// Processor 0 (the fastest) is never pushed and has no slots.
    slots: Vec<Option<(u64, bool)>>,
}

impl NProbeCache {
    /// A cache for a `k`-processor search.
    pub(crate) fn new(k: usize) -> NProbeCache {
        NProbeCache {
            slots: vec![None; k.saturating_sub(1) * 4],
        }
    }

    fn slot(proc: u8, dir: NDirection) -> usize {
        debug_assert!(proc >= 1, "processor 0 is never pushed");
        (proc as usize - 1) * 4 + dir.index()
    }

    /// Cached verdict for `(proc, dir)` at exactly `hash`, if any.
    pub(crate) fn lookup(&self, hash: u64, proc: u8, dir: NDirection) -> Option<bool> {
        let (h, verdict) = self.slots[Self::slot(proc, dir)]?;
        (h == hash).then_some(verdict)
    }

    /// Record a verdict computed at `hash`.
    pub(crate) fn record(&mut self, hash: u64, proc: u8, dir: NDirection, verdict: bool) {
        self.slots[Self::slot(proc, dir)] = Some((hash, verdict));
    }

    /// Probe through the cache.
    #[cfg(test)]
    pub(crate) fn probe(&mut self, part: &NPartition, proc: u8, dir: NDirection) -> bool {
        let hash = part.state_hash();
        if let Some(verdict) = self.lookup(hash, proc, dir) {
            return verdict;
        }
        let verdict = push_feasible_n(part, proc, dir);
        self.record(hash, proc, dir, verdict);
        verdict
    }

    /// Drop the slots of every processor in `touched_mask` (hygiene — the
    /// hash check alone guarantees correctness).
    pub(crate) fn evict_touched(&mut self, touched_mask: u64) {
        for proc in 1..=(self.slots.len() / 4) as u8 {
            if touched_mask & (1u64 << proc) != 0 {
                for dir in NDirection::ALL {
                    self.slots[Self::slot(proc, dir)] = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_never_raises_voc_k4() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut part = NPartition::random(24, &[6, 3, 2, 1], &mut rng);
        let mut voc = part.voc();
        for _ in 0..50 {
            let mut any = false;
            for proc in 1..4u8 {
                for dir in NDirection::ALL {
                    if let Some(ap) = try_push_n(&mut part, proc, dir) {
                        assert!(ap.delta_voc_units <= 0);
                        assert!(part.voc() <= voc);
                        assert!(ap.touched_mask & (1 << proc) != 0);
                        voc = part.voc();
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }
        part.assert_invariants();
    }

    #[test]
    fn failed_push_rolls_back_k5() {
        let mut rng = StdRng::seed_from_u64(2);
        let part = NPartition::random(16, &[8, 3, 2, 2, 1], &mut rng);
        for proc in 1..5u8 {
            for dir in NDirection::ALL {
                for mode in PushMode::ALL {
                    let mut scratch = part.clone();
                    if try_push_mode(&mut scratch, proc, dir, mode).is_none() {
                        assert_eq!(scratch, part, "{proc} {dir:?} {mode:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn element_counts_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut part = NPartition::random(20, &[5, 2, 2, 1], &mut rng);
        let before: Vec<usize> = (0..4).map(|p| part.elems(p as u8)).collect();
        for proc in 1..4u8 {
            for dir in NDirection::ALL {
                let _ = try_push_n(&mut part, proc, dir);
            }
        }
        let after: Vec<usize> = (0..4).map(|p| part.elems(p as u8)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn exact_square_is_fixed_point() {
        // A k=4 partition with three exact corner squares: no pushes.
        let mut part = NPartition::new(12, 4);
        for i in 0..4 {
            for j in 0..4 {
                part.set(i, j, 1);
                part.set(i + 8, j + 8, 2);
                part.set(i, j + 8, 3);
            }
        }
        for proc in 1..4u8 {
            for dir in NDirection::ALL {
                let mut scratch = part.clone();
                assert!(
                    try_push_n(&mut scratch, proc, dir).is_none(),
                    "{proc} {dir:?} should not push"
                );
                // And the probe agrees without needing the clone.
                assert!(!push_feasible_n(&part, proc, dir));
            }
        }
    }

    /// Clone-based oracle for the probe equivalence properties.
    fn would_push_n_reference(part: &NPartition, proc: u8, dir: NDirection) -> bool {
        let mut scratch = part.clone();
        try_push_n(&mut scratch, proc, dir).is_some()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The clone-free probe and the clone-based oracle agree for every
        /// (pushable proc, direction) pair, including at intermediate
        /// states of a push sequence, across processor counts.
        #[test]
        fn probe_matches_clone_reference(seed in 0u64..1_000_000, k in 3usize..=6) {
            let weights: Vec<u32> = (0..k).map(|i| 1 + 2 * (k - i) as u32).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut part = NPartition::random(16, &weights, &mut rng);
            for _round in 0..4 {
                let mut moved = false;
                for proc in 1..k as u8 {
                    for dir in NDirection::ALL {
                        prop_assert_eq!(
                            push_feasible_n(&part, proc, dir),
                            would_push_n_reference(&part, proc, dir),
                            "disagreement at seed {} for proc {} {:?}", seed, proc, dir
                        );
                        moved |= try_push_n(&mut part, proc, dir).is_some();
                    }
                }
                if !moved {
                    break;
                }
            }
            part.assert_invariants();
        }
    }

    #[test]
    fn probe_cache_hits_on_exact_hash_and_evicts_touched() {
        let mut rng = StdRng::seed_from_u64(9);
        let part = NPartition::random(14, &[5, 3, 2, 1], &mut rng);
        let mut cache = NProbeCache::new(4);
        let verdict = cache.probe(&part, 1, NDirection::Down);
        assert_eq!(
            cache.lookup(part.state_hash(), 1, NDirection::Down),
            Some(verdict)
        );
        assert_eq!(
            cache.lookup(part.state_hash() ^ 1, 1, NDirection::Down),
            None
        );
        cache.probe(&part, 2, NDirection::Up);
        cache.evict_touched(1 << 1); // proc 1 moved, proc 2 did not
        assert_eq!(cache.lookup(part.state_hash(), 1, NDirection::Down), None);
        assert!(cache.lookup(part.state_hash(), 2, NDirection::Up).is_some());
    }
}
