//! The k-processor partition grid.
//!
//! A direct generalization of `hetmmm_partition::Partition`: owners are
//! `0..k`, with processor 0 the fastest. The assignment is stored as `k`
//! per-processor **bit-planes** (row-major plus a transposed copy, same
//! word layout as the three-processor grid — see
//! `hetmmm_partition::bits`), so line sweeps serve 64 cells per word and
//! enclosing-rectangle shrinks are word-wise scans of the occupied-line
//! masks. All derived state — per-processor per-line element counts,
//! per-line distinct-owner counts (`c_i`, `c_j`), the Eq. 1 VoC in line
//! units, element totals, and the Zobrist state hash — updates in `O(1)`
//! per reassignment (`O(k)` memory per line); reading one cell's owner is
//! an `O(k)` plane probe.

use hetmmm_obs as obs;
use hetmmm_partition::bits::{full_line, next_occupied, prev_occupied};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Inclusive rectangle, kept local to avoid a dependency cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NRect {
    /// First row.
    pub top: usize,
    /// Last row (inclusive).
    pub bottom: usize,
    /// First column.
    pub left: usize,
    /// Last column (inclusive).
    pub right: usize,
}

impl NRect {
    /// Rows spanned.
    pub fn height(&self) -> usize {
        self.bottom - self.top + 1
    }
    /// Columns spanned.
    pub fn width(&self) -> usize {
        self.right - self.left + 1
    }
    /// Cells contained.
    pub fn area(&self) -> usize {
        self.height() * self.width()
    }
    /// Overlap test.
    pub fn overlaps(&self, other: &NRect) -> bool {
        self.top <= other.bottom
            && other.top <= self.bottom
            && self.left <= other.right
            && other.left <= self.right
    }
}

/// Incrementally maintained bounding box of one owner's cells (inclusive).
/// The `EMPTY` sentinel (`top > bottom`) is canonical and chosen so that
/// `expand` from empty yields the single-cell box directly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
struct Bounds {
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
}

impl Bounds {
    const EMPTY: Bounds = Bounds {
        top: usize::MAX,
        bottom: 0,
        left: usize::MAX,
        right: 0,
    };

    #[inline]
    fn expand(&mut self, i: usize, j: usize) {
        self.top = self.top.min(i);
        self.bottom = self.bottom.max(i);
        self.left = self.left.min(j);
        self.right = self.right.max(j);
    }
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A partition of an `n x n` matrix among `k` processors (`0` fastest).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NPartition {
    n: usize,
    k: usize,
    /// `ceil(n / 64)`: `u64` words per plane line.
    words: usize,
    /// Row-major bit-planes, processor-major: bit `j % 64` of word
    /// `(p * n + i) * words + j / 64` is set iff cell `(i, j)` is `p`'s.
    row_bits: Vec<u64>,
    /// Column-major (transposed) planes: bit `i % 64` of word
    /// `(p * n + j) * words + i / 64`.
    col_bits: Vec<u64>,
    /// Occupied-row mask per processor (`words` words each): bit `i` set
    /// iff `row_count[p][i] > 0`.
    row_occ: Vec<u64>,
    /// Occupied-column mask per processor.
    col_occ: Vec<u64>,
    /// `row_count[p][i]`, flattened as `p * n + i`.
    row_count: Vec<u32>,
    col_count: Vec<u32>,
    row_procs: Vec<u8>,
    col_procs: Vec<u8>,
    voc_units: u64,
    elems: Vec<usize>,
    zobrist: u64,
    /// Per-owner enclosing-rectangle bounds, maintained incrementally in
    /// [`NPartition::set`]; makes [`NPartition::enclosing_rect`] `O(1)`.
    bounds: Vec<Bounds>,
}

impl NPartition {
    /// All cells assigned to processor 0 (the fastest), as in the paper's
    /// random start procedure.
    pub fn new(n: usize, k: usize) -> NPartition {
        assert!(n > 0, "matrix size must be positive");
        assert!((2..=64).contains(&k), "2..=64 processors supported");
        let words = n.div_ceil(64);
        let mut row_count = vec![0u32; k * n];
        let mut col_count = vec![0u32; k * n];
        for i in 0..n {
            row_count[i] = n as u32;
            col_count[i] = n as u32;
        }
        // Processor 0 owns every cell: its planes are all-full lines and
        // its occupancy masks are one full line; everyone else is zero.
        let fl = full_line(n);
        let mut row_bits = vec![0u64; k * n * words];
        for line in 0..n {
            row_bits[line * words..(line + 1) * words].copy_from_slice(&fl);
        }
        let col_bits = row_bits.clone();
        let mut row_occ = vec![0u64; k * words];
        row_occ[..words].copy_from_slice(&fl);
        let col_occ = row_occ.clone();
        let mut elems = vec![0usize; k];
        elems[0] = n * n;
        let mut zobrist = 0u64;
        for idx in 0..(n * n) as u64 {
            zobrist ^= mix64(idx * k as u64);
        }
        let mut bounds = vec![Bounds::EMPTY; k];
        bounds[0] = Bounds {
            top: 0,
            bottom: n - 1,
            left: 0,
            right: n - 1,
        };
        NPartition {
            n,
            k,
            words,
            row_bits,
            col_bits,
            row_occ,
            col_occ,
            row_count,
            col_count,
            row_procs: vec![1; n],
            col_procs: vec![1; n],
            voc_units: 0,
            elems,
            zobrist,
            bounds,
        }
    }

    /// Random start state: processor `p`'s element count is proportional
    /// to `weights[p]` (largest-remainder rounding), placed uniformly.
    pub fn random<R: Rng>(n: usize, weights: &[u32], rng: &mut R) -> NPartition {
        let k = weights.len();
        let mut part = NPartition::new(n, k);
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        // Quotas for processors 1..k; processor 0 keeps the remainder.
        let mut cells: Vec<(usize, usize)> =
            (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
        cells.shuffle(rng);
        let mut cursor = 0usize;
        for (p, &w) in weights.iter().enumerate().skip(1) {
            let quota = ((n * n) as u64 * u64::from(w) / total) as usize;
            for &(i, j) in cells.iter().skip(cursor).take(quota) {
                part.set(i, j, p as u8);
            }
            cursor += quota;
        }
        part
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of processors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Owner of a cell: an `O(k)` probe of the row planes. Every cell is
    /// owned by exactly one processor, so a miss on the first `k - 1`
    /// planes means the last one.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u8 {
        let (word, bit) = (j / 64, j % 64);
        for p in 0..self.k - 1 {
            if (self.row_bits[(p * self.n + i) * self.words + word] >> bit) & 1 == 1 {
                return p as u8;
            }
        }
        debug_assert_eq!(
            (self.row_bits[((self.k - 1) * self.n + i) * self.words + word] >> bit) & 1,
            1,
            "cell ({i}, {j}) owned by no plane"
        );
        (self.k - 1) as u8
    }

    /// `u64` words per plane line (`ceil(n / 64)`).
    #[inline]
    pub fn words_per_line(&self) -> usize {
        self.words
    }

    /// Word `w` of `proc`'s row-`i` plane line: bit `b` set iff cell
    /// `(i, w * 64 + b)` belongs to `proc`.
    #[inline]
    pub fn row_plane_word(&self, proc: u8, i: usize, w: usize) -> u64 {
        self.row_bits[(proc as usize * self.n + i) * self.words + w]
    }

    /// Word `w` of `proc`'s column-`j` (transposed) plane line: bit `b`
    /// set iff cell `(w * 64 + b, j)` belongs to `proc`.
    #[inline]
    pub fn col_plane_word(&self, proc: u8, j: usize, w: usize) -> u64 {
        self.col_bits[(proc as usize * self.n + j) * self.words + w]
    }

    /// Reassign a cell; all derived state updates in `O(1)` (the rect
    /// shrink is amortized by the 64-cell word width).
    pub fn set(&mut self, i: usize, j: usize, proc: u8) -> u8 {
        debug_assert!((proc as usize) < self.k);
        let idx = i * self.n + j;
        let old = self.get(i, j);
        if old == proc {
            return old;
        }
        let (n, words) = (self.n, self.words);
        self.row_bits[(old as usize * n + i) * words + j / 64] &= !(1u64 << (j % 64));
        self.row_bits[(proc as usize * n + i) * words + j / 64] |= 1u64 << (j % 64);
        self.col_bits[(old as usize * n + j) * words + i / 64] &= !(1u64 << (i % 64));
        self.col_bits[(proc as usize * n + j) * words + i / 64] |= 1u64 << (i % 64);
        self.elems[old as usize] -= 1;
        self.elems[proc as usize] += 1;
        self.zobrist ^= mix64((idx * self.k) as u64 + u64::from(old))
            ^ mix64((idx * self.k) as u64 + u64::from(proc));

        let rc_old = &mut self.row_count[old as usize * n + i];
        *rc_old -= 1;
        let row_emptied = *rc_old == 0;
        if row_emptied {
            self.row_procs[i] -= 1;
            self.voc_units -= 1;
            self.row_occ[old as usize * words + i / 64] &= !(1u64 << (i % 64));
        }
        let rc_new = &mut self.row_count[proc as usize * n + i];
        if *rc_new == 0 {
            self.row_procs[i] += 1;
            self.voc_units += 1;
            self.row_occ[proc as usize * words + i / 64] |= 1u64 << (i % 64);
        }
        *rc_new += 1;

        let cc_old = &mut self.col_count[old as usize * n + j];
        *cc_old -= 1;
        let col_emptied = *cc_old == 0;
        if col_emptied {
            self.col_procs[j] -= 1;
            self.voc_units -= 1;
            self.col_occ[old as usize * words + j / 64] &= !(1u64 << (j % 64));
        }
        let cc_new = &mut self.col_count[proc as usize * n + j];
        if *cc_new == 0 {
            self.col_procs[j] += 1;
            self.voc_units += 1;
            self.col_occ[proc as usize * words + j / 64] |= 1u64 << (j % 64);
        }
        *cc_new += 1;

        // Enclosing-rectangle bookkeeping (see the three-processor grid):
        // the gaining owner expands in O(1); the losing owner shrinks by
        // word-wise sweeps of its occupied-line masks, only when a
        // boundary line just emptied.
        self.bounds[proc as usize].expand(i, j);
        if self.elems[old as usize] == 0 {
            self.bounds[old as usize] = Bounds::EMPTY;
        } else {
            let b = &mut self.bounds[old as usize];
            let mut scans = 0u64;
            if row_emptied {
                let occ = &self.row_occ[old as usize * words..(old as usize + 1) * words];
                if i == b.top {
                    let (top, s) = next_occupied(occ, b.top);
                    b.top = top;
                    scans += s;
                }
                if i == b.bottom {
                    let (bottom, s) = prev_occupied(occ, b.bottom);
                    b.bottom = bottom;
                    scans += s;
                }
            }
            if col_emptied {
                let occ = &self.col_occ[old as usize * words..(old as usize + 1) * words];
                if j == b.left {
                    let (left, s) = next_occupied(occ, b.left);
                    b.left = left;
                    scans += s;
                }
                if j == b.right {
                    let (right, s) = prev_occupied(occ, b.right);
                    b.right = right;
                    scans += s;
                }
            }
            if scans != 0 && obs::metrics_enabled() {
                obs::metrics()
                    .counter(obs::metrics::names::GRID_SHRINK_WORD_SCANS)
                    .add(scans);
            }
        }
        old
    }

    /// Swap two cells' owners.
    pub fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let pa = self.get(a.0, a.1);
        let pb = self.get(b.0, b.1);
        if pa == pb {
            return;
        }
        self.set(a.0, a.1, pb);
        self.set(b.0, b.1, pa);
    }

    /// `∈p`.
    pub fn elems(&self, proc: u8) -> usize {
        self.elems[proc as usize]
    }

    /// Elements of `proc` in row `i`.
    #[inline]
    pub fn row_count(&self, proc: u8, i: usize) -> u32 {
        self.row_count[proc as usize * self.n + i]
    }

    /// Elements of `proc` in column `j`.
    #[inline]
    pub fn col_count(&self, proc: u8, j: usize) -> u32 {
        self.col_count[proc as usize * self.n + j]
    }

    /// Does row `i` contain `proc`?
    #[inline]
    pub fn row_has(&self, proc: u8, i: usize) -> bool {
        self.row_count(proc, i) > 0
    }

    /// Does column `j` contain `proc`?
    #[inline]
    pub fn col_has(&self, proc: u8, j: usize) -> bool {
        self.col_count(proc, j) > 0
    }

    /// VoC in line units; Eq. 1 VoC is `n *` this.
    pub fn voc_units(&self) -> u64 {
        self.voc_units
    }

    /// The Eq. 1 volume of communication, generalized to `k` owners.
    pub fn voc(&self) -> u64 {
        self.n as u64 * self.voc_units
    }

    /// Incremental state hash (Zobrist).
    pub fn state_hash(&self) -> u64 {
        self.zobrist
    }

    /// Enclosing rectangle of `proc`; `O(1)` read of the incrementally
    /// maintained bounds.
    pub fn enclosing_rect(&self, proc: u8) -> Option<NRect> {
        let b = self.bounds[proc as usize];
        if b.top > b.bottom {
            return None;
        }
        Some(NRect {
            top: b.top,
            bottom: b.bottom,
            left: b.left,
            right: b.right,
        })
    }

    /// Recompute everything from the raw bit-planes and panic on drift.
    pub fn assert_invariants(&self) {
        let (n, k, words) = (self.n, self.k, self.words);
        // Plane structure: every cell owned exactly once, the transposed
        // planes agree with the row planes, and tail bits stay zero.
        let tail = n % 64;
        let junk = if tail == 0 { 0 } else { !((1u64 << tail) - 1) };
        for p in 0..k {
            for line in 0..n {
                assert_eq!(
                    self.row_bits[(p * n + line + 1) * words - 1] & junk,
                    0,
                    "row plane tail junk (proc {p}, row {line})"
                );
                assert_eq!(
                    self.col_bits[(p * n + line + 1) * words - 1] & junk,
                    0,
                    "col plane tail junk (proc {p}, col {line})"
                );
            }
        }
        let mut row_count = vec![0u32; k * n];
        let mut col_count = vec![0u32; k * n];
        let mut elems = vec![0usize; k];
        let mut zob = 0u64;
        let mut bounds = vec![Bounds::EMPTY; k];
        for i in 0..n {
            for j in 0..n {
                let owners: Vec<usize> = (0..k)
                    .filter(|&p| (self.row_plane_word(p as u8, i, j / 64) >> (j % 64)) & 1 == 1)
                    .collect();
                assert_eq!(owners.len(), 1, "cell ({i}, {j}) owner count");
                let p = owners[0];
                assert_eq!(
                    (self.col_plane_word(p as u8, j, i / 64) >> (i % 64)) & 1,
                    1,
                    "col plane disagrees at ({i}, {j})"
                );
                row_count[p * n + i] += 1;
                col_count[p * n + j] += 1;
                elems[p] += 1;
                zob ^= mix64(((i * n + j) * k) as u64 + p as u64);
                bounds[p].expand(i, j);
            }
        }
        assert_eq!(row_count, self.row_count, "row_count drift");
        assert_eq!(col_count, self.col_count, "col_count drift");
        assert_eq!(elems, self.elems, "elems drift");
        assert_eq!(zob, self.zobrist, "zobrist drift");
        // Occupancy masks match the counts bit for bit.
        for p in 0..k {
            for line in 0..n {
                let (w, b) = (line / 64, line % 64);
                assert_eq!(
                    (self.row_occ[p * words + w] >> b) & 1,
                    u64::from(row_count[p * n + line] > 0),
                    "row_occ drift (proc {p}, row {line})"
                );
                assert_eq!(
                    (self.col_occ[p * words + w] >> b) & 1,
                    u64::from(col_count[p * n + line] > 0),
                    "col_occ drift (proc {p}, col {line})"
                );
            }
        }
        let mut units = 0u64;
        for i in 0..n {
            let c = (0..k).filter(|&p| row_count[p * n + i] > 0).count() as u8;
            assert_eq!(c, self.row_procs[i], "row_procs drift");
            units += u64::from(c) - 1;
        }
        for j in 0..n {
            let c = (0..k).filter(|&p| col_count[p * n + j] > 0).count() as u8;
            assert_eq!(c, self.col_procs[j], "col_procs drift");
            units += u64::from(c) - 1;
        }
        assert_eq!(units, self.voc_units, "voc_units drift");
        assert_eq!(bounds, self.bounds, "enclosing-rect bounds drift");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_is_all_proc_zero() {
        let part = NPartition::new(8, 4);
        assert_eq!(part.elems(0), 64);
        assert_eq!(part.voc(), 0);
        part.assert_invariants();
    }

    #[test]
    fn set_updates_counts_for_many_procs() {
        let mut part = NPartition::new(6, 5);
        part.set(0, 0, 1);
        part.set(0, 1, 2);
        part.set(0, 2, 3);
        part.set(0, 3, 4);
        // Row 0 now hosts 5 distinct processors: +4 row units; each column
        // touched hosts 2: +1 each.
        assert_eq!(part.voc_units(), 4 + 4);
        part.assert_invariants();
    }

    #[test]
    fn random_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let part = NPartition::random(40, &[8, 4, 2, 1, 1], &mut rng);
        let total = 1600usize;
        assert_eq!(part.elems(1), total * 4 / 16);
        assert_eq!(part.elems(2), total * 2 / 16);
        assert_eq!(part.elems(3), total / 16);
        assert_eq!(part.elems(4), total / 16);
        assert_eq!(
            part.elems(0),
            total - part.elems(1) - part.elems(2) - part.elems(3) - part.elems(4)
        );
        part.assert_invariants();
    }

    #[test]
    fn k3_matches_three_proc_voc_semantics() {
        // Strips across 3 procs: same VoC as the main crate computes.
        let n = 9;
        let mut part = NPartition::new(n, 3);
        for i in 3..6 {
            for j in 0..n {
                part.set(i, j, 1);
            }
        }
        for i in 6..9 {
            for j in 0..n {
                part.set(i, j, 2);
            }
        }
        assert_eq!(part.voc(), (n * n * 2) as u64);
    }

    #[test]
    fn bounds_track_random_set_churn() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 14;
        let k = 5u8;
        let mut part = NPartition::new(n, k as usize);
        for step in 0..1500u64 {
            use rand::RngExt;
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..n);
            let p = rng.random_range(0..k);
            part.set(i, j, p);
            // From-scratch recompute per owner must match the O(1) read.
            for q in 0..k {
                let rows: Vec<usize> = (0..n).filter(|&i| part.row_has(q, i)).collect();
                let cols: Vec<usize> = (0..n).filter(|&j| part.col_has(q, j)).collect();
                let scan = match (rows.first(), rows.last(), cols.first(), cols.last()) {
                    (Some(&t), Some(&b), Some(&l), Some(&r)) => Some(NRect {
                        top: t,
                        bottom: b,
                        left: l,
                        right: r,
                    }),
                    _ => None,
                };
                assert_eq!(part.enclosing_rect(q), scan, "owner {q} at step {step}");
            }
        }
        part.assert_invariants();
    }

    #[test]
    fn state_hash_content_addressed() {
        let mut a = NPartition::new(5, 4);
        let mut b = NPartition::new(5, 4);
        a.set(1, 2, 3);
        b.set(1, 2, 3);
        assert_eq!(a.state_hash(), b.state_hash());
        b.set(1, 2, 2);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    #[should_panic(expected = "2..=64")]
    fn k_out_of_range_rejected() {
        let _ = NPartition::new(4, 1);
    }
}
