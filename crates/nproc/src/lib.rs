//! # hetmmm-nproc
//!
//! The paper's stated extension (Sections I and XI): "A fundamental
//! requirement of this program is that it must also be applicable beyond
//! the three processor case. It can easily be adapted to form partition
//! shapes for any number of processors." — this crate is that adaptation.
//!
//! Everything is generalized from the fixed three-processor machinery of
//! the main crates to `k ≥ 2` processors:
//!
//! - [`grid::NPartition`]: the `q(i,j) ∈ {0..k-1}` grid with the same
//!   incremental VoC / occupancy / Zobrist accounting,
//! - [`push`]: the Push operation with `k − 1` possible displaced owners
//!   (the three-processor select-and-match generalizes directly: bucket
//!   interior targets per owner, assign owners to vacated positions,
//!   commit under the exact ΔVoC contract),
//! - [`dfa`]: the randomized search with per-processor direction plans and
//!   neutral-cycle detection,
//! - [`stats`]: shape descriptors for the outcomes — per-processor
//!   rectangularity (fill of the enclosing rectangle), corner counts, and
//!   the pairwise enclosing-rectangle overlap structure — the raw material
//!   for a future ≥4-processor archetype taxonomy.
//!
//! Processor 0 is the fastest (the background owner of the remainder);
//! processors `1..k` are the slower, pushable ones, in decreasing speed
//! order. With `k = 3` the behaviour matches the main `hetmmm` crates
//! (cross-checked in tests); with `k = 2` it reproduces the two-processor
//! prior work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod grid;
pub mod push;
pub mod stats;

pub use dfa::{NDfaConfig, NDfaOutcome, NDfaRunner};
pub use grid::NPartition;
pub use push::{push_feasible_n, try_push_n, NDirection, PushMode};
pub use stats::{OutcomeStats, ProcShapeStats};
