//! Shape descriptors for k-processor outcomes.
//!
//! The three-processor archetype taxonomy does not generalize one-to-one
//! (with four processors the overlap structure of three slower enclosing
//! rectangles is a small graph, not a binary relation), so this module
//! reports the raw descriptors a future taxonomy would be built from:
//! per-processor rectangularity (fill ratio of the enclosing rectangle),
//! corner counts, and the pairwise enclosing-rectangle overlap matrix.

use crate::grid::NPartition;
use serde::{Deserialize, Serialize};

/// Shape descriptors of one processor's region.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcShapeStats {
    /// Element count.
    pub elems: usize,
    /// Fill ratio of the enclosing rectangle (1.0 = exact rectangle);
    /// 0 for an empty region.
    pub fill: f64,
    /// Boundary vertex count (2×2-window method).
    pub corners: usize,
}

/// Descriptors of a whole outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeStats {
    /// Per-processor stats (index = processor id).
    pub per_proc: Vec<ProcShapeStats>,
    /// `overlaps[a][b]`: do the enclosing rectangles of processors `a` and
    /// `b` overlap? (Symmetric; diagonal true.)
    pub overlaps: Vec<Vec<bool>>,
    /// VoC of the partition.
    pub voc: u64,
}

/// Corner count of processor `proc`'s region (2×2-window scan).
pub fn corner_count_n(part: &NPartition, proc: u8) -> usize {
    let n = part.n();
    let inside = |i: isize, j: isize| -> bool {
        if i < 0 || j < 0 || i >= n as isize || j >= n as isize {
            return false;
        }
        part.get(i as usize, j as usize) == proc
    };
    let mut corners = 0usize;
    for i in -1..n as isize {
        for j in -1..n as isize {
            let a = inside(i, j);
            let b = inside(i, j + 1);
            let c = inside(i + 1, j);
            let d = inside(i + 1, j + 1);
            match usize::from(a) + usize::from(b) + usize::from(c) + usize::from(d) {
                1 | 3 => corners += 1,
                2 if (a && d && !b && !c) || (b && c && !a && !d) => corners += 2,
                _ => {}
            }
        }
    }
    corners
}

/// Compute the descriptors for a partition.
pub fn outcome_stats(part: &NPartition) -> OutcomeStats {
    let k = part.k();
    let per_proc: Vec<ProcShapeStats> = (0..k as u8)
        .map(|p| {
            let elems = part.elems(p);
            let fill = part
                .enclosing_rect(p)
                .map_or(0.0, |r| elems as f64 / r.area() as f64);
            ProcShapeStats {
                elems,
                fill,
                corners: corner_count_n(part, p),
            }
        })
        .collect();
    let rects: Vec<_> = (0..k as u8).map(|p| part.enclosing_rect(p)).collect();
    let overlaps: Vec<Vec<bool>> = (0..k)
        .map(|a| {
            (0..k)
                .map(|b| match (&rects[a], &rects[b]) {
                    (Some(ra), Some(rb)) => ra.overlaps(rb),
                    _ => false,
                })
                .collect()
        })
        .collect();
    OutcomeStats {
        per_proc,
        overlaps,
        voc: part.voc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::{NDfaConfig, NDfaRunner};

    #[test]
    fn exact_rectangles_have_fill_one() {
        let mut part = NPartition::new(8, 3);
        for i in 0..4 {
            for j in 0..4 {
                part.set(i, j, 1);
            }
        }
        let stats = outcome_stats(&part);
        assert_eq!(stats.per_proc[1].fill, 1.0);
        assert_eq!(stats.per_proc[1].corners, 4);
        assert!(stats.overlaps[0][1], "P0 remainder wraps P1's rect");
    }

    #[test]
    fn search_outcomes_are_much_more_rectangular_than_scatter() {
        let runner = NDfaRunner::new(NDfaConfig::new(24, vec![6, 3, 2, 1]));
        let out = runner.run_seed(1);
        let stats = outcome_stats(&out.partition);
        // Random scatter fill ≈ area share (well under 0.4); condensed
        // regions should be substantially denser.
        for p in 1..4 {
            assert!(
                stats.per_proc[p].fill > 0.45,
                "proc {p} fill {} too scatter-like",
                stats.per_proc[p].fill
            );
        }
    }

    #[test]
    fn corner_counts_match_three_proc_module_semantics() {
        // An L-shape: 6 corners.
        let mut part = NPartition::new(8, 2);
        for i in 0..6 {
            for j in 0..2 {
                part.set(i, j, 1);
            }
        }
        for i in 4..6 {
            for j in 2..5 {
                part.set(i, j, 1);
            }
        }
        assert_eq!(corner_count_n(&part, 1), 6);
    }
}
