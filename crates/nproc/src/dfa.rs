//! The randomized search, generalized to `k` processors.

use crate::grid::NPartition;
use crate::push::{try_push_n, NDirection, NProbeCache};
use hetmmm_obs as obs;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of a k-processor search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NDfaConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Relative speeds, fastest first (`weights[0]` is the background
    /// processor, never pushed).
    pub weights: Vec<u32>,
    /// Push-step cap (backstop).
    pub step_cap: usize,
}

impl NDfaConfig {
    /// Defaults.
    pub fn new(n: usize, weights: Vec<u32>) -> NDfaConfig {
        assert!(weights.len() >= 2);
        assert!(
            weights.windows(2).all(|w| w[0] >= w[1]),
            "weights must be non-increasing (fastest first)"
        );
        NDfaConfig {
            n,
            weights,
            step_cap: 100 * n.max(8),
        }
    }
}

/// Outcome of one k-processor run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NDfaOutcome {
    /// Final partition.
    pub partition: NPartition,
    /// Pushes applied.
    pub steps: usize,
    /// VoC of the random start.
    pub voc_initial: u64,
    /// VoC of the fixed point.
    pub voc_final: u64,
    /// Reached a fixed point or detected neutral cycle (vs cap).
    pub converged: bool,
    /// Terminated by state-revisit cycle detection.
    pub cycled: bool,
}

/// Seeded k-processor search runner.
#[derive(Clone, Debug)]
pub struct NDfaRunner {
    config: NDfaConfig,
}

impl NDfaRunner {
    /// Create a runner.
    pub fn new(config: NDfaConfig) -> NDfaRunner {
        NDfaRunner { config }
    }

    /// One seeded run: random start, random per-processor direction plan,
    /// randomized interleaving, cycle detection.
    pub fn run_seed(&self, seed: u64) -> NDfaOutcome {
        let _span = obs::span_arg("nproc.run", seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.config.weights.len();
        let mut part = NPartition::random(self.config.n, &self.config.weights, &mut rng);

        // Random plan: 1-4 directions for each pushable processor.
        let mut entries: Vec<(u8, NDirection)> = Vec::new();
        for proc in 1..k as u8 {
            let count = rng.random_range(1..=4usize);
            let mut dirs = NDirection::ALL;
            dirs.shuffle(&mut rng);
            for &dir in dirs.iter().take(count) {
                entries.push((proc, dir));
            }
        }
        entries.shuffle(&mut rng);

        let voc_initial = part.voc();
        let mut steps = 0usize;
        let mut converged = false;
        let mut cycled = false;
        let mut order: Vec<usize> = (0..entries.len()).collect();
        let mut seen = std::collections::HashSet::new();
        seen.insert(part.state_hash());
        // Known-infeasible verdicts keyed on the exact state hash. A hit
        // skips the attempt entirely; since a failed `try_push_n` changes
        // no state and consumes no randomness, the skip leaves the seeded
        // run bit-identical to the uncached search.
        let mut probes = NProbeCache::new(k);

        'outer: loop {
            order.shuffle(&mut rng);
            let mut progressed = false;
            let mut hash = part.state_hash();
            for &idx in &order {
                let (proc, dir) = entries[idx];
                if probes.lookup(hash, proc, dir) == Some(false) {
                    continue;
                }
                if let Some(applied) = try_push_n(&mut part, proc, dir) {
                    steps += 1;
                    progressed = true;
                    probes.evict_touched(applied.touched_mask);
                    if applied.delta_voc_units < 0 {
                        seen.clear();
                    }
                    hash = part.state_hash();
                    if !seen.insert(hash) {
                        cycled = true;
                        converged = true;
                        break 'outer;
                    }
                    if steps >= self.config.step_cap {
                        break 'outer;
                    }
                    break;
                }
                probes.record(hash, proc, dir, false);
            }
            if !progressed {
                converged = true;
                break;
            }
        }

        let voc_final = part.voc();
        debug_assert!(voc_final <= voc_initial);
        if obs::enabled() {
            obs::emit(obs::EventKind::NprocRunEnd {
                k: k as u64,
                steps: steps as u64,
                converged,
                voc_initial,
                voc_final,
            });
        }
        if obs::metrics_enabled() {
            obs::metrics()
                .histogram(obs::metrics::names::NPROC_STEPS, || {
                    obs::Histogram::exponential(1, 2, 16)
                })
                .observe(steps as u64);
        }
        NDfaOutcome {
            partition: part,
            steps,
            voc_initial,
            voc_final,
            converged,
            cycled,
        }
    }

    /// Fan seeds out over rayon.
    pub fn run_many(&self, seeds: impl IntoIterator<Item = u64>) -> Vec<NDfaOutcome> {
        let seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.par_iter().map(|&s| self.run_seed(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_proc_search_converges() {
        let runner = NDfaRunner::new(NDfaConfig::new(24, vec![6, 3, 2, 1]));
        for seed in 0..6u64 {
            let out = runner.run_seed(seed);
            assert!(out.converged, "seed {seed}");
            assert!(
                out.voc_final < out.voc_initial,
                "seed {seed} made no progress"
            );
            out.partition.assert_invariants();
        }
    }

    #[test]
    fn five_proc_search_converges() {
        let runner = NDfaRunner::new(NDfaConfig::new(20, vec![8, 4, 2, 1, 1]));
        let out = runner.run_seed(3);
        assert!(out.converged);
        assert!(out.voc_final <= out.voc_initial);
    }

    #[test]
    fn two_proc_degenerate_matches_prior_work_shape() {
        // k = 2 at ratio 4:1 should condense the slow processor into a
        // compact region; single-direction plans improve less, so check
        // that every run improves and the best run at least halves VoC.
        let runner = NDfaRunner::new(NDfaConfig::new(30, vec![4, 1]));
        let outs = runner.run_many(0..8u64);
        assert!(outs
            .iter()
            .all(|o| o.converged && o.voc_final < o.voc_initial));
        let best = outs.iter().map(|o| o.voc_final).min().unwrap();
        let start = outs[0].voc_initial;
        assert!(best * 2 < start, "best {best} vs start {start}");
    }

    #[test]
    fn deterministic_per_seed() {
        let runner = NDfaRunner::new(NDfaConfig::new(16, vec![4, 2, 1, 1]));
        let a = runner.run_seed(9);
        let b = runner.run_seed(9);
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn weights_must_be_sorted() {
        let _ = NDfaConfig::new(10, vec![1, 2]);
    }
}
