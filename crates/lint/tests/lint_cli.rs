//! End-to-end CLI tests: fixture workspace trees with one injected
//! violation per rule must fail the gate, a clean tree must pass, and
//! `--write-baseline` must grandfather findings so the rerun passes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Crate-root header that satisfies L004.
const HDR: &str = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n//! Fixture crate.\n";

fn tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("hetmmm_lint_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture");
    }
    root
}

fn lint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetmmm-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn hetmmm-lint")
}

fn assert_fires(root: &Path, rule: &str) -> Output {
    let out = lint(root, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1 for {rule}; stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains(rule), "{rule} not in report:\n{stdout}");
    out
}

#[test]
fn clean_tree_exits_zero() {
    let root = tree(
        "clean",
        &[(
            "crates/x/src/lib.rs",
            &format!("{HDR}/// Adds one.\npub fn f(v: u8) -> u8 {{ v + 1 }}\n"),
        )],
    );
    let out = lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn l001_unwrap_in_library_fires_and_baseline_grandfathers_it() {
    let root = tree(
        "l001",
        &[(
            "crates/x/src/lib.rs",
            &format!("{HDR}/// Doc.\npub fn f(v: Option<u8>) -> u8 {{ v.unwrap() }}\n"),
        )],
    );
    assert_fires(&root, "L001");

    // Grandfather it, then the rerun passes and writes JSONL.
    let out = lint(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(root.join("lint_baseline.json").is_file());
    let out = lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "grandfathered rerun must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let jsonl = fs::read_to_string(root.join("results/lint_findings.jsonl")).expect("jsonl");
    assert!(jsonl.contains("\"grandfathered\""));
    assert!(jsonl.contains("\"L001\""));

    // A second unwrap exceeds the allowance: the group turns fresh again.
    fs::write(
        root.join("crates/x/src/lib.rs"),
        format!("{HDR}/// Doc.\npub fn f(v: Option<u8>) -> u8 {{ v.unwrap() }}\n/// Doc.\npub fn g(v: Option<u8>) -> u8 {{ v.unwrap() }}\n"),
    )
    .expect("rewrite");
    assert_fires(&root, "L001");

    // Fixing everything leaves a stale baseline (exit 0, ratchet hint).
    fs::write(
        root.join("crates/x/src/lib.rs"),
        format!("{HDR}/// Doc.\npub fn f(v: Option<u8>) -> u8 {{ v.unwrap_or(0) }}\n"),
    )
    .expect("rewrite");
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("stale baseline"));
}

#[test]
fn l001_suppression_with_reason_waives_without_reason_fires_l000() {
    let with_reason = tree(
        "l001_sup",
        &[(
            "crates/x/src/lib.rs",
            &format!(
                "{HDR}/// Doc.\npub fn f(v: Option<u8>) -> u8 {{\n    // hetmmm-lint: allow(L001) fixture-verified invariant\n    v.unwrap()\n}}\n"
            ),
        )],
    );
    let out = lint(&with_reason, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "suppressed finding must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let without_reason = tree(
        "l001_noreason",
        &[(
            "crates/x/src/lib.rs",
            &format!(
                "{HDR}/// Doc.\npub fn f(v: Option<u8>) -> u8 {{\n    // hetmmm-lint: allow(L001)\n    v.unwrap()\n}}\n"
            ),
        )],
    );
    let out = assert_fires(&without_reason, "L000");
    assert!(String::from_utf8_lossy(&out.stdout).contains("L001"));
}

#[test]
fn l002_through_l005_each_fire() {
    let l002 = tree(
        "l002",
        &[(
            "crates/x/src/lib.rs",
            &format!(
                "{HDR}/// Doc.\npub fn f() -> std::time::Instant {{ std::time::Instant::now() }}\n"
            ),
        )],
    );
    assert_fires(&l002, "L002");

    let l003 = tree(
        "l003",
        &[(
            "crates/x/src/lib.rs",
            &format!("{HDR}/// Doc.\npub fn f() {{ println!(\"hi\"); }}\n"),
        )],
    );
    assert_fires(&l003, "L003");

    let l004 = tree(
        "l004",
        &[(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\n//! Fixture missing the docs lint.\npub fn f() {}\n",
        )],
    );
    assert_fires(&l004, "L004");

    let l005 = tree(
        "l005",
        &[(
            "crates/x/src/lib.rs",
            &format!(
                "{HDR}/// Doc.\npub fn f() {{ std::thread::sleep(std::time::Duration::from_millis(1)); }}\n"
            ),
        )],
    );
    assert_fires(&l005, "L005");
}

const EVENT_V2: &str = "\
//! Fixture event vocabulary.
pub const SCHEMA_VERSION: u32 = 2;
/// Kinds.
pub enum EventKind {
    A { x: u64 },
    B,
}
";

#[test]
fn l010_schema_drift_fires_until_version_bumped() {
    let files: Vec<(&str, String)> = vec![
        (
            "crates/obs/src/lib.rs",
            format!("{HDR}/// Doc.\npub mod event;\n"),
        ),
        ("crates/obs/src/event.rs", EVENT_V2.to_string()),
    ];
    let files_ref: Vec<(&str, &str)> = files.iter().map(|(p, c)| (*p, c.as_str())).collect();
    let root = tree("l010", &files_ref);

    // Commit the fingerprint.
    let out = lint(&root, &["--write-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "unchanged schema passes");

    // Mutate the variant list without bumping SCHEMA_VERSION.
    fs::write(
        root.join("crates/obs/src/event.rs"),
        EVENT_V2.replace("    B,", "    B,\n    C { y: u64 },"),
    )
    .expect("mutate");
    assert_fires(&root, "L010");

    // Bumping the version clears it.
    fs::write(
        root.join("crates/obs/src/event.rs"),
        EVENT_V2
            .replace("    B,", "    B,\n    C { y: u64 },")
            .replace("u32 = 2", "u32 = 3"),
    )
    .expect("bump");
    let out = lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "bumped schema must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn l011_unregistered_and_duplicate_metric_names_fire() {
    let metrics = "\
//! Fixture metrics module.
/// Registry.
pub mod names {
    /// One.
    pub const A: &str = \"exec.a\";
}
";
    let root = tree(
        "l011",
        &[
            (
                "crates/obs/src/lib.rs",
                &format!("{HDR}/// Doc.\npub mod metrics;\n"),
            ),
            ("crates/obs/src/metrics.rs", metrics),
            (
                "crates/x/src/lib.rs",
                &format!(
                    "{HDR}/// Doc.\npub fn f(m: &M) {{ m.counter(\"exec.unregistered\"); }}\n"
                ),
            ),
        ],
    );
    let out = assert_fires(&root, "L011");
    assert!(String::from_utf8_lossy(&out.stdout).contains("exec.unregistered"));

    // A registered name passes.
    fs::write(
        root.join("crates/x/src/lib.rs"),
        format!("{HDR}/// Doc.\npub fn f(m: &M) {{ m.counter(\"exec.a\"); }}\n"),
    )
    .expect("rewrite");
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0));

    // A duplicate registration fires on the registry itself.
    fs::write(
        root.join("crates/obs/src/metrics.rs"),
        metrics.replace(
            "}\n",
            "    /// Dup.\n    pub const B: &str = \"exec.a\";\n}\n",
        ),
    )
    .expect("rewrite");
    let out = assert_fires(&root, "L011");
    assert!(String::from_utf8_lossy(&out.stdout).contains("registered twice"));
}

#[test]
fn l012_bench_binary_without_binsession_fires_allowlist_exempt() {
    let bin_no_session = "fn main() { let _ = 1 + 1; }\n";
    let root = tree(
        "l012",
        &[("crates/bench/src/bin/mybench.rs", bin_no_session)],
    );
    assert_fires(&root, "L012");

    // Opening a session passes.
    fs::write(
        root.join("crates/bench/src/bin/mybench.rs"),
        "fn main() { let _s = hetmmm_obs::BinSession::start(\"mybench\", &[], None); }\n",
    )
    .expect("rewrite");
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0));

    // Allowlisted read-only analyzers are exempt.
    let root = tree(
        "l012_allow",
        &[("crates/bench/src/bin/obs_report.rs", bin_no_session)],
    );
    let out = lint(&root, &[]);
    assert_eq!(out.status.code(), Some(0));
}

/// A consumer at an `EVENT_CONSUMERS` path that handles both fixture
/// variants — the starting point for the L020 mutation test.
const STORE_CONSUMER: &str = "\
//! Fixture store.
use crate::event::EventKind;
/// Doc.
pub fn f(e: &EventKind) -> u64 {
    match e {
        EventKind::A { x } => *x,
        EventKind::B => 0,
    }
}
";

#[test]
fn l020_fresh_event_variant_fires_until_handled_or_acked() {
    let obs_lib = format!("{HDR}/// Doc.\npub mod event;\n");
    let root = tree(
        "l020_mut",
        &[
            ("crates/obs/src/lib.rs", obs_lib.as_str()),
            ("crates/obs/src/event.rs", EVENT_V2),
            ("crates/report/src/store.rs", STORE_CONSUMER),
        ],
    );
    let out = lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "fully-handled vocabulary passes:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Mutation: grow the event vocabulary. The consumer no longer covers
    // it, and the lint names the exact missing variant.
    fs::write(
        root.join("crates/obs/src/event.rs"),
        EVENT_V2.replace("    B,", "    B,\n    C { y: u64 },"),
    )
    .expect("mutate");
    let out = assert_fires(&root, "L020");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('C'), "missing variant named:\n{stdout}");
    assert!(
        stdout.contains("store.rs"),
        "consumer file cited:\n{stdout}"
    );

    // An acknowledgement with a reason is the sanctioned escape hatch.
    fs::write(
        root.join("crates/report/src/store.rs"),
        format!(
            "{STORE_CONSUMER}// hetmmm-lint: ack-events(C) fixture streams it through opaquely\n"
        ),
    )
    .expect("ack");
    let out = lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "acked variant passes:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn l021_dead_metric_const_fires_until_emitted() {
    let metrics = "\
//! Fixture metrics module.
/// Registry.
pub mod names {
    /// Live.
    pub const A: &str = \"exec.a\";
    /// Dead.
    pub const B: &str = \"exec.b\";
}
";
    let obs_lib = format!("{HDR}/// Doc.\npub mod metrics;\n");
    let user = format!("{HDR}/// Doc.\npub fn f(m: &M) {{ m.counter(\"exec.a\"); }}\n");
    let root = tree(
        "l021_mut",
        &[
            ("crates/obs/src/lib.rs", obs_lib.as_str()),
            ("crates/obs/src/metrics.rs", metrics),
            ("crates/x/src/lib.rs", user.as_str()),
        ],
    );
    // Mutation half 1: a registered name nobody emits is dead weight.
    let out = assert_fires(&root, "L021");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exec.b"), "dead name cited:\n{stdout}");
    assert!(
        stdout.contains("metrics.rs"),
        "anchored at registry:\n{stdout}"
    );

    // Emitting it (by const reference) brings it back to life.
    fs::write(
        root.join("crates/x/src/lib.rs"),
        format!(
            "{HDR}/// Doc.\npub fn f(m: &M) {{ m.counter(\"exec.a\"); m.counter(names::B); }}\n"
        ),
    )
    .expect("rewrite");
    let out = lint(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "referenced const is live:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Mutation half 2: emitting an unregistered name still fires L011 —
    // the two rules cover opposite directions of the same join.
    fs::write(
        root.join("crates/x/src/lib.rs"),
        format!(
            "{HDR}/// Doc.\npub fn f(m: &M) {{ m.counter(\"exec.a\"); m.counter(names::B); m.counter(\"exec.ghost\"); }}\n"
        ),
    )
    .expect("rewrite");
    assert_fires(&root, "L011");
}

#[test]
fn hb_blame_before_retry_fires_h003_citing_the_blame_line() {
    use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};
    let dir = std::env::temp_dir().join(format!("hetmmm_lint_hb_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("events.jsonl");
    let events = [
        EventKind::SpanStart {
            span: 1,
            name: "exec.run".into(),
            arg: 8,
            tid: 0,
        },
        EventKind::ExecPeerLost {
            worker: "R".into(),
            peer: "S".into(),
            step: 2,
            detail: "receive timed out".into(),
        },
        EventKind::ExecBlame {
            dead: "S".into(),
            weights: vec![0, 3, 0],
        },
    ];
    let text: String = events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let rec = EventRecord {
                v: SCHEMA_VERSION,
                ts_nanos: i as u64,
                event: e.clone(),
            };
            format!("{}\n", serde_json::to_string(&rec).unwrap())
        })
        .collect();
    fs::write(&file, &text).expect("write stream");

    // A timeout alone is not conclusive: blaming on it, before any
    // backoff re-attempt, is the protocol violation H003 exists to catch.
    let out = Command::new(env!("CARGO_BIN_EXE_hetmmm-lint"))
        .args(["--hb", file.to_str().unwrap()])
        .output()
        .expect("spawn hetmmm-lint --hb");
    assert_eq!(
        out.status.code(),
        Some(1),
        "premature blame must fail:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("H003"), "{stdout}");
    assert!(
        stdout.contains(":3:"),
        "the blame's own line is the anchor:\n{stdout}"
    );

    // Burn a retry first (an ExecResume with nonzero backoff) and the
    // same conviction becomes legitimate.
    let legit: String = [
        events[0].clone(),
        events[1].clone(),
        EventKind::ExecResume {
            attempt: 2,
            resume_step: 0,
            resumed: 0,
            replayed: 0,
            survivors: 3,
            backoff_nanos: 1_000,
        },
        events[1].clone(),
        events[2].clone(),
    ]
    .iter()
    .enumerate()
    .map(|(i, e)| {
        let rec = EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: i as u64,
            event: e.clone(),
        };
        format!("{}\n", serde_json::to_string(&rec).unwrap())
    })
    .collect();
    fs::write(&file, legit).expect("rewrite stream");
    let out = Command::new(env!("CARGO_BIN_EXE_hetmmm-lint"))
        .args(["--hb", file.to_str().unwrap()])
        .output()
        .expect("spawn hetmmm-lint --hb");
    assert_eq!(
        out.status.code(),
        Some(0),
        "blame after a burned retry passes:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shipped_workspace_tree_is_clean() {
    // The repo this test runs in must itself pass the gate — the same
    // invocation CI runs. CARGO_MANIFEST_DIR is crates/lint.
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = lint(repo, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "shipped tree must be lint-clean:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
