//! Per-file token rules L001–L005.
//!
//! Each rule scans one file's token stream (with its test mask) and emits
//! findings. The matching is token-shaped, not textual, so `unwrap_or`
//! never trips L001 and `"Instant::now"` inside a string never trips
//! L002.
//!
//! | id   | invariant |
//! |------|-----------|
//! | L001 | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in non-test library code |
//! | L002 | no `Instant::now` / `SystemTime::now` outside `crates/obs/src/clock.rs` and binaries |
//! | L003 | no `println!` / `eprintln!` in library crates (use the obs facade) |
//! | L004 | crate roots carry `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]` |
//! | L005 | no `thread::sleep` outside `crates/mmm/src/fault.rs`, binaries, and tests |

use crate::findings::Finding;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::source::{FileClass, SourceFile};

/// Everything a per-file rule needs about one file.
pub struct FileCtx<'a> {
    /// The file's identity and classification.
    pub file: &'a SourceFile,
    /// Its token stream and comments.
    pub lexed: &'a Lexed,
    /// Per-token test-region flags (parallel to `lexed.tokens`).
    pub mask: &'a [bool],
}

impl FileCtx<'_> {
    fn is_library(&self) -> bool {
        matches!(self.file.class, FileClass::Library | FileClass::LibraryRoot)
    }

    fn tokens(&self) -> &[Tok] {
        &self.lexed.tokens
    }
}

/// Run every per-file rule on `ctx`.
pub fn run_file_rules(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    l001_no_panicking_calls(ctx, out);
    l002_clock_discipline(ctx, out);
    l003_no_direct_printing(ctx, out);
    l004_crate_attributes(ctx, out);
    l005_no_sleep(ctx, out);
}

/// L001: no `.unwrap()` / `.expect(` / `panic!(` / `unreachable!(` in
/// non-test library code — route failures through `HetmmmError` or use an
/// infallible construction.
fn l001_no_panicking_calls(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_library() {
        return;
    }
    let toks = ctx.tokens();
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            // `.unwrap()` / `.expect(...)` method calls.
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            }
            // `panic!(...)` / `unreachable!(...)` macro invocations.
            "panic" | "unreachable" => toks.get(i + 1).is_some_and(|n| n.is_punct('!')),
            _ => false,
        };
        if hit {
            let what = match t.text.as_str() {
                "unwrap" => "`.unwrap()`",
                "expect" => "`.expect(..)`",
                "panic" => "`panic!`",
                _ => "`unreachable!`",
            };
            out.push(Finding::new(
                "L001",
                &ctx.file.rel,
                t.line,
                format!(
                    "{what} in non-test library code; return HetmmmError or restructure infallibly"
                ),
            ));
        }
    }
}

/// L002: all time reads go through the obs `Clock`; only the clock module
/// itself and binaries (bench drivers, examples) may call
/// `Instant::now` / `SystemTime::now`.
fn l002_clock_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_library() || ctx.file.rel == "crates/obs/src/clock.rs" {
        return;
    }
    let toks = ctx.tokens();
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] {
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(Finding::new(
                "L002",
                &ctx.file.rel,
                t.line,
                format!(
                    "{}::now() outside crates/obs/src/clock.rs; read time through the obs Clock",
                    t.text
                ),
            ));
        }
    }
}

/// L003: library crates are silent — output goes through the obs facade
/// (`hetmmm_obs::message` / `message_or_stdout`), never `println!` /
/// `eprintln!` directly.
fn l003_no_direct_printing(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_library() {
        return;
    }
    let toks = ctx.tokens();
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] {
            continue;
        }
        if (t.is_ident("println") || t.is_ident("eprintln"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding::new(
                "L003",
                &ctx.file.rel,
                t.line,
                format!(
                    "{}! in library code; route output through the obs facade",
                    t.text
                ),
            ));
        }
    }
}

/// L004: every crate root carries `#![forbid(unsafe_code)]` and
/// `#![warn(missing_docs)]`.
fn l004_crate_attributes(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.class != FileClass::LibraryRoot {
        return;
    }
    let toks = ctx.tokens();
    let mut has_forbid_unsafe = false;
    let mut has_warn_missing_docs = false;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        // Inner attribute: `#` `!` `[` … `]`.
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut idents: Vec<&str> = Vec::new();
            let mut j = i + 3;
            let mut depth = 1i32;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    idents.push(&toks[j].text);
                }
                j += 1;
            }
            if idents.contains(&"forbid") && idents.contains(&"unsafe_code") {
                has_forbid_unsafe = true;
            }
            if idents.contains(&"warn") && idents.contains(&"missing_docs") {
                has_warn_missing_docs = true;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    if !has_forbid_unsafe {
        out.push(Finding::new(
            "L004",
            &ctx.file.rel,
            1,
            "crate root is missing #![forbid(unsafe_code)]",
        ));
    }
    if !has_warn_missing_docs {
        out.push(Finding::new(
            "L004",
            &ctx.file.rel,
            1,
            "crate root is missing #![warn(missing_docs)]",
        ));
    }
}

/// L005: `thread::sleep` appears only in the fault-injection module
/// (`crates/mmm/src/fault.rs`), binaries, and tests — sleeping in library
/// code hides latency from the pluggable clock.
fn l005_no_sleep(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_library() || ctx.file.rel == "crates/mmm/src/fault.rs" {
        return;
    }
    let toks = ctx.tokens();
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] {
            continue;
        }
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("sleep"))
        {
            out.push(Finding::new(
                "L005",
                &ctx.file.rel,
                t.line,
                "thread::sleep in library code outside fault injection",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn check(rel: &str, class: FileClass, src: &str) -> Vec<Finding> {
        let file = SourceFile {
            path: PathBuf::from(rel),
            rel: rel.to_string(),
            class,
        };
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let ctx = FileCtx {
            file: &file,
            lexed: &lexed,
            mask: &mask,
        };
        let mut out = Vec::new();
        run_file_rules(&ctx, &mut out);
        out
    }

    const LIB: FileClass = FileClass::Library;

    #[test]
    fn l001_flags_each_construct_with_exact_lines() {
        // Fixture with one violation per line; asserts exact line numbers.
        let src = "\
fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    if a > b { panic!(\"boom\"); }
    unreachable!()
}
";
        let found = check("crates/x/src/f.rs", LIB, src);
        let lines: Vec<(String, u32)> = found.iter().map(|f| (f.rule.clone(), f.line)).collect();
        assert_eq!(
            lines,
            [
                ("L001".to_string(), 2),
                ("L001".to_string(), 3),
                ("L001".to_string(), 4),
                ("L001".to_string(), 5),
            ]
        );
    }

    #[test]
    fn l001_ignores_tests_bins_lookalikes_and_literals() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); expect(\"free fn\"); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); panic!(\"in test\"); } }";
        assert!(check("crates/x/src/f.rs", LIB, src).is_empty());
        // Binaries may unwrap.
        assert!(check(
            "crates/bench/src/bin/b.rs",
            FileClass::Binary,
            "fn main() { x.unwrap(); }"
        )
        .is_empty());
        // Inside strings and comments: invisible.
        let src = "// call .unwrap() here\nconst S: &str = \"x.unwrap()\";";
        assert!(check("crates/x/src/f.rs", LIB, src).is_empty());
    }

    #[test]
    fn l002_flags_direct_time_reads_except_clock_module() {
        let src = "fn f() { let t = Instant::now(); let u = std::time::SystemTime::now(); }";
        let found = check("crates/x/src/f.rs", LIB, src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "L002"));
        assert!(check("crates/obs/src/clock.rs", LIB, src).is_empty());
        assert!(check("crates/bench/src/bin/b.rs", FileClass::Binary, src).is_empty());
    }

    #[test]
    fn l003_flags_printing_in_libraries_only() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }";
        let found = check("crates/x/src/f.rs", LIB, src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "L003"));
        assert!(check("crates/bench/src/bin/b.rs", FileClass::Binary, src).is_empty());
        assert!(check("examples/e.rs", FileClass::Binary, src).is_empty());
    }

    #[test]
    fn l004_requires_both_crate_attributes() {
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(check("crates/x/src/lib.rs", FileClass::LibraryRoot, good).is_empty());
        let missing_docs = "#![forbid(unsafe_code)]\npub fn f() {}";
        let found = check("crates/x/src/lib.rs", FileClass::LibraryRoot, missing_docs);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("missing_docs"));
        // Non-root files are exempt.
        assert!(check("crates/x/src/other.rs", LIB, "pub fn f() {}").is_empty());
    }

    #[test]
    fn l005_flags_sleep_outside_fault_injection() {
        let src = "fn f() { std::thread::sleep(d); }";
        let found = check("crates/x/src/f.rs", LIB, src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "L005");
        assert!(check("crates/mmm/src/fault.rs", LIB, src).is_empty());
        assert!(check("crates/x/tests/t.rs", FileClass::Test, src).is_empty());
    }
}
