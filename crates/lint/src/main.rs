//! `hetmmm-lint` CLI: run the workspace invariant checker and gate
//! against the committed baseline.
//!
//! ```text
//! cargo run -p hetmmm-lint                  # lint the workspace, exit 1 on fresh findings
//! cargo run -p hetmmm-lint -- --write-baseline   # fold current findings into lint_baseline.json
//! cargo run -p hetmmm-lint -- --hb events.jsonl  # happens-before check one event stream
//! ```
//!
//! Exit codes: `0` clean (or baseline written), `1` fresh findings or
//! happens-before violations, `2` usage or I/O error.

use hetmmm_lint::baseline::{gate, Baseline};
use hetmmm_lint::findings::{render_text, FindingRecord};
use hetmmm_lint::{hb, run_lint};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
hetmmm-lint: workspace invariant checker

USAGE:
    hetmmm-lint [--root DIR] [--baseline FILE] [--jsonl FILE] [--write-baseline]
    hetmmm-lint --hb FILE

OPTIONS:
    --root DIR         workspace root to lint (default: the workspace this
                       binary was built in, else the current directory)
    --baseline FILE    baseline path (default: <root>/lint_baseline.json)
    --jsonl FILE       findings JSONL output path
                       (default: <root>/results/lint_findings.jsonl)
    --write-baseline   rewrite the baseline to grandfather current findings
    --hb FILE          happens-before check an executor event JSONL stream
                       (rules H001-H004) instead of linting source
    --help             print this help
";

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    jsonl: PathBuf,
    write_baseline: bool,
    hb: Option<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut jsonl: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut hb: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--write-baseline" => write_baseline = true,
            "--root" | "--baseline" | "--jsonl" | "--hb" => {
                let Some(v) = it.next() else {
                    return Err(format!("{arg} requires a value"));
                };
                let p = PathBuf::from(v);
                match arg.as_str() {
                    "--root" => root = Some(p),
                    "--baseline" => baseline = Some(p),
                    "--hb" => hb = Some(p),
                    _ => jsonl = Some(p),
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let baseline = baseline.unwrap_or_else(|| root.join("lint_baseline.json"));
    let jsonl = jsonl.unwrap_or_else(|| root.join("results").join("lint_findings.jsonl"));
    Ok(Some(Args {
        root,
        baseline,
        jsonl,
        write_baseline,
        hb,
    }))
}

/// Under `cargo run` the workspace root is two levels above this crate's
/// manifest dir; otherwise fall back to the current directory.
fn default_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&dir);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("hetmmm-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("hetmmm-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    if let Some(hb_path) = &args.hb {
        return run_hb(hb_path);
    }
    let committed = load_baseline(&args.baseline)?;
    let report = run_lint(&args.root, committed.schema.as_ref())
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;

    for note in &report.notes {
        eprintln!("hetmmm-lint: note: {note}");
    }

    if args.write_baseline {
        let schema = report.schema.as_ref().map(|s| s.record());
        let fresh_baseline = Baseline::from_findings(&report.findings, schema);
        let text = fresh_baseline
            .render_pretty()
            .map_err(|e| format!("rendering baseline: {e}"))?;
        fs::write(&args.baseline, text)
            .map_err(|e| format!("writing {}: {e}", args.baseline.display()))?;
        write_jsonl(&args.jsonl, &report.findings, &[])?;
        println!(
            "hetmmm-lint: baseline written to {} ({} findings grandfathered across {} files scanned, {} suppressed inline)",
            args.baseline.display(),
            report.findings.len(),
            report.files,
            report.suppressed,
        );
        return Ok(ExitCode::SUCCESS);
    }

    let result = gate(&report.findings, &committed);
    write_jsonl(&args.jsonl, &result.grandfathered, &result.fresh)?;

    if !result.fresh.is_empty() {
        print!("{}", render_text(&result.fresh));
    }
    for s in &result.stale {
        println!(
            "hetmmm-lint: stale baseline: {} {} allows {} but only {} remain; run --write-baseline to ratchet",
            s.rule, s.path, s.allowed, s.actual
        );
    }
    println!(
        "hetmmm-lint: {} files, {} fresh, {} grandfathered, {} suppressed inline, {} stale baseline entries",
        report.files,
        result.fresh.len(),
        result.grandfathered.len(),
        report.suppressed,
        result.stale.len(),
    );
    Ok(if result.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `--hb FILE`: replay one recorded event stream through the
/// happens-before checker and render its findings like lint findings.
fn run_hb(path: &Path) -> Result<ExitCode, String> {
    let label = path.display().to_string();
    let text = fs::read_to_string(path).map_err(|e| format!("reading {label}: {e}"))?;
    let report = hb::check_stream(&label, &text);
    if !report.findings.is_empty() {
        print!("{}", render_text(&report.findings));
    }
    println!("hetmmm-lint: {}", report.summary());
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| format!("parsing baseline {}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
        Err(e) => Err(format!("reading baseline {}: {e}", path.display())),
    }
}

fn write_jsonl(
    path: &Path,
    grandfathered: &[hetmmm_lint::findings::Finding],
    fresh: &[hetmmm_lint::findings::Finding],
) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let mut out = String::new();
    for (status, set) in [("fresh", fresh), ("grandfathered", grandfathered)] {
        for f in set {
            let rec = FindingRecord {
                finding: f.clone(),
                status: status.to_string(),
            };
            let line =
                serde_json::to_string(&rec).map_err(|e| format!("serializing finding: {e}"))?;
            out.push_str(&line);
            out.push('\n');
        }
    }
    fs::write(path, out).map_err(|e| format!("writing {}: {e}", path.display()))
}
