//! Happens-before protocol checker for schema-v4 executor event streams.
//!
//! The recovery executor (`crates/mmm/src/parallel.rs`) emits a typed
//! event trail — `ExecSend`/`ExecRecv`/`ExecRetry`/`ExecCheckpoint`/
//! `ExecResume`/`ExecBlame`/… — whose *ordering* carries the protocol's
//! correctness argument. This module replays a JSONL stream of those
//! events, builds per-worker vector clocks, and checks four invariants:
//!
//! | id   | invariant |
//! |------|-----------|
//! | H001 | every receive has a matching send in the same attempt (same `from`/`to`/`step`, same element count, one receive per send) |
//! | H002 | checkpoint `through` is monotone per worker within an attempt and never below the attempt's `resume_step` |
//! | H003 | blame (`ExecBlame`) is emitted only after the retry budget was exhausted (an `ExecResume` with a backoff preceded it) or on conclusive evidence (a disconnect/panic/crash testimony) |
//! | H004 | after `ExecResume { resume_step }`, no worker event replays a step below `resume_step` |
//!
//! **Why vector clocks suffice here.** The executor is a 3-worker star:
//! workers exchange fragments only pairwise per step, and the supervisor
//! is a global barrier — it joins every worker thread before deciding on
//! retry, conviction, or resume. Each `ExecResume` therefore totally
//! orders the attempts: every event of attempt *i* happens-before every
//! event of attempt *i + 1*. A 4-component clock (3 workers + the
//! supervisor) with join edges at sends/receives and barrier edges at
//! resumes captures the complete happens-before relation, so checking
//! send/recv matching *within* an attempt window plus per-window step
//! bounds is sound — no cross-window edge can exist that the barrier did
//! not already order.
//!
//! Parsing is lenient (unparseable lines are counted, never fatal) but
//! every finding cites the exact 1-based line of the offending event.

use crate::findings::Finding;
use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The supervisor's actor name in the vector clocks.
const SUPERVISOR: &str = "sup";

/// A vector clock: actor name → event count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(pub BTreeMap<String, u64>);

impl VectorClock {
    fn tick(&mut self, actor: &str) {
        *self.0.entry(actor.to_string()).or_default() += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        for (actor, &v) in &other.0 {
            let e = self.0.entry(actor.clone()).or_default();
            *e = (*e).max(v);
        }
    }
}

/// Outcome of a happens-before pass over one stream.
#[derive(Debug, Default)]
pub struct HbReport {
    /// Protocol violations, with the offending event's line number.
    pub findings: Vec<Finding>,
    /// Parsed event records.
    pub events: usize,
    /// Events that participated in the protocol model (`Exec*`).
    pub exec_events: usize,
    /// Unparseable or foreign-schema lines skipped.
    pub skipped_lines: usize,
    /// Executor runs seen (`exec.run` spans; 1 implicit run otherwise).
    pub runs: usize,
    /// Attempt windows checked (initial attempt + one per `ExecResume`).
    pub windows: usize,
    /// Final vector-clock own-components per actor, for the summary line.
    pub clocks: BTreeMap<String, u64>,
}

impl HbReport {
    /// Did the stream satisfy every invariant?
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "hb: {} events ({} exec) across {} run(s), {} attempt window(s), {} skipped line(s)",
            self.events, self.exec_events, self.runs, self.windows, self.skipped_lines
        );
        if !self.clocks.is_empty() {
            let _ = write!(out, "; clocks");
            for (actor, n) in &self.clocks {
                let _ = write!(out, " {actor}={n}");
            }
        }
        let _ = write!(out, "; {} violation(s)", self.findings.len());
        out
    }
}

/// One recorded send awaiting its receive.
struct SendRec {
    elems: u64,
    line: u32,
    consumed: bool,
}

/// One recorded receive, matched against sends at window close.
struct RecvRec {
    from: String,
    to: String,
    step: u64,
    elems: u64,
    line: u32,
}

/// Mutable state of the attempt window currently being read.
#[derive(Default)]
struct Window {
    resume_step: u64,
    sends: BTreeMap<(String, String, u64), Vec<SendRec>>,
    recvs: Vec<RecvRec>,
    /// Per-worker highest checkpoint `through` seen this window.
    through: BTreeMap<String, (u64, u32)>,
    /// Workers that already joined the supervisor's fork clock.
    joined: BTreeSet<String>,
}

/// Full checker state for one stream.
struct Checker {
    label: String,
    report: HbReport,
    window: Window,
    /// Conviction-episode evidence: a supervisor retry re-attempt
    /// (`ExecResume` with `backoff_nanos > 0`) happened since the last
    /// blame.
    retry_resume_seen: bool,
    /// Conviction-episode evidence: conclusive testimony (disconnect,
    /// panic) since the last blame.
    conclusive_evidence: bool,
    clocks: BTreeMap<String, VectorClock>,
    sup: VectorClock,
    /// Supervisor clock snapshot forked to workers at the window start.
    fork: VectorClock,
    in_run: bool,
}

/// Check a JSONL event stream. `label` names the stream in findings
/// (typically the file path).
pub fn check_stream(label: &str, text: &str) -> HbReport {
    let mut ck = Checker {
        label: label.to_string(),
        report: HbReport::default(),
        window: Window::default(),
        retry_resume_seen: false,
        conclusive_evidence: false,
        clocks: BTreeMap::new(),
        sup: VectorClock::default(),
        fork: VectorClock::default(),
        in_run: false,
    };
    for (lineno, line) in text.lines().enumerate() {
        let line_no = (lineno + 1) as u32;
        if line.trim().is_empty() {
            ck.report.skipped_lines += 1;
            continue;
        }
        let rec: EventRecord = match serde_json::from_str(line) {
            Ok(rec) => rec,
            Err(_) => {
                ck.report.skipped_lines += 1;
                continue;
            }
        };
        if rec.v != SCHEMA_VERSION {
            ck.report.skipped_lines += 1;
            continue;
        }
        ck.report.events += 1;
        ck.event(&rec.event, line_no);
    }
    ck.finish()
}

impl Checker {
    /// A worker's first event in a window inherits the supervisor's
    /// barrier clock; every event advances the worker's own component.
    fn worker_tick(&mut self, actor: &str) {
        let clock = self.clocks.entry(actor.to_string()).or_default();
        if self.window.joined.insert(actor.to_string()) {
            clock.join(&self.fork);
        }
        clock.tick(actor);
    }

    fn sup_tick(&mut self) {
        self.sup.tick(SUPERVISOR);
    }

    /// H004: a worker event tagged `step` must not precede the window's
    /// resume step.
    fn check_step(&mut self, what: &str, worker: &str, step: u64, line: u32) {
        if step < self.window.resume_step {
            self.report.findings.push(Finding::new(
                "H004",
                &self.label,
                line,
                format!(
                    "{what} by {worker} replays step {step} below the attempt's \
                     resume_step {} — checkpointed work would be double-applied",
                    self.window.resume_step
                ),
            ));
        }
    }

    fn ensure_run(&mut self) {
        if !self.in_run {
            self.in_run = true;
            self.report.runs += 1;
            self.report.windows += 1;
        }
    }

    fn event(&mut self, event: &EventKind, line: u32) {
        match event {
            EventKind::SpanStart { name, .. } if name == "exec.run" => {
                self.close_window();
                self.in_run = true;
                self.report.runs += 1;
                self.report.windows += 1;
                self.window = Window::default();
                self.retry_resume_seen = false;
                self.conclusive_evidence = false;
                self.sup_tick();
                self.fork = self.sup.clone();
            }
            EventKind::ExecResume {
                resume_step,
                backoff_nanos,
                ..
            } => {
                self.ensure_run();
                self.close_window();
                self.report.windows += 1;
                // Barrier in: the supervisor joined every worker thread
                // before deciding to resume.
                let worker_clocks: Vec<VectorClock> = self.clocks.values().cloned().collect();
                for c in &worker_clocks {
                    self.sup.join(c);
                }
                self.sup_tick();
                self.fork = self.sup.clone();
                self.window = Window {
                    resume_step: *resume_step,
                    ..Window::default()
                };
                if *backoff_nanos > 0 {
                    self.retry_resume_seen = true;
                }
            }
            EventKind::ExecSend {
                from,
                to,
                step,
                elems,
            } => {
                self.ensure_run();
                self.report.exec_events += 1;
                self.worker_tick(from.as_str());
                let (from, to, step) = (from.clone(), to.clone(), *step);
                self.check_step("send", &from.clone(), step, line);
                self.window
                    .sends
                    .entry((from, to, step))
                    .or_default()
                    .push(SendRec {
                        elems: *elems,
                        line,
                        consumed: false,
                    });
            }
            EventKind::ExecRecv {
                from,
                to,
                step,
                elems,
                ..
            } => {
                self.ensure_run();
                self.report.exec_events += 1;
                self.worker_tick(to.as_str());
                let to_name = to.clone();
                self.check_step("recv", &to_name, *step, line);
                if *elems > 0 {
                    self.window.recvs.push(RecvRec {
                        from: from.clone(),
                        to: to.clone(),
                        step: *step,
                        elems: *elems,
                        line,
                    });
                }
            }
            EventKind::ExecRetry { worker, step, .. } => {
                self.ensure_run();
                self.report.exec_events += 1;
                let w = worker.clone();
                self.worker_tick(&w);
                self.check_step("retry", &w, *step, line);
            }
            EventKind::ExecCheckpoint {
                worker, through, ..
            } => {
                self.ensure_run();
                self.report.exec_events += 1;
                let w = worker.clone();
                self.worker_tick(&w);
                if *through < self.window.resume_step {
                    self.report.findings.push(Finding::new(
                        "H002",
                        &self.label,
                        line,
                        format!(
                            "checkpoint by {w} banks through {through}, below the \
                             attempt's resume_step {}",
                            self.window.resume_step
                        ),
                    ));
                }
                if let Some(&(prev, prev_line)) = self.window.through.get(&w) {
                    if *through < prev {
                        self.report.findings.push(Finding::new(
                            "H002",
                            &self.label,
                            line,
                            format!(
                                "checkpoint by {w} regresses: through {through} after \
                                 banking through {prev} (line {prev_line}) in the same attempt"
                            ),
                        ));
                    }
                }
                let entry = self.window.through.entry(w).or_insert((*through, line));
                if *through >= entry.0 {
                    *entry = (*through, line);
                }
            }
            EventKind::ExecSegment { worker, step, .. } => {
                self.ensure_run();
                self.report.exec_events += 1;
                let w = worker.clone();
                self.worker_tick(&w);
                self.check_step("segment", &w, *step, line);
            }
            EventKind::ExecPeerLost {
                worker,
                peer,
                step,
                detail,
            } => {
                self.ensure_run();
                self.report.exec_events += 1;
                let w = worker.clone();
                self.worker_tick(&w);
                // A self-report (worker == peer: a crash confession or a
                // panic caught at join time) is testimony about where the
                // fault fired, not work being replayed — exempt from the
                // H004 step bound. The panic path cannot even know a
                // step and tags 0.
                if worker != peer {
                    self.check_step("peer-lost report", &w, *step, line);
                }
                if detail.contains("disconnected")
                    || detail.contains("panicked")
                    || detail.contains("crashed")
                {
                    self.conclusive_evidence = true;
                }
            }
            EventKind::ExecBlame { dead, .. } => {
                self.ensure_run();
                self.report.exec_events += 1;
                self.sup_tick();
                if !self.retry_resume_seen && !self.conclusive_evidence {
                    self.report.findings.push(Finding::new(
                        "H003",
                        &self.label,
                        line,
                        format!(
                            "{dead} blamed before retry-budget exhaustion: no backoff \
                             re-attempt (ExecResume with backoff_nanos > 0) and no \
                             conclusive testimony (disconnect/panic/crash) precede this blame"
                        ),
                    ));
                }
                // A conviction closes its evidence episode; the next blame
                // needs fresh justification.
                self.retry_resume_seen = false;
                self.conclusive_evidence = false;
            }
            EventKind::ExecRepartition { .. } | EventKind::ExecDegraded { .. } => {
                self.ensure_run();
                self.report.exec_events += 1;
                self.sup_tick();
            }
            _ => {}
        }
    }

    /// H001 is checked at window close so that benign emission races
    /// (a receiver writing its `ExecRecv` line before the sender's
    /// `ExecSend` hits the sink) cannot produce false positives: within
    /// an attempt window, matching is order-free.
    fn close_window(&mut self) {
        let recvs = std::mem::take(&mut self.window.recvs);
        for r in recvs {
            let key = (r.from.clone(), r.to.clone(), r.step);
            match self.window.sends.get_mut(&key) {
                Some(sends) => match sends.iter_mut().find(|s| !s.consumed) {
                    Some(send) => {
                        send.consumed = true;
                        if send.elems != r.elems {
                            self.report.findings.push(Finding::new(
                                "H001",
                                &self.label,
                                r.line,
                                format!(
                                    "recv {}→{} step {} carries {} elems but the matching \
                                     send (line {}) carried {}",
                                    r.from, r.to, r.step, r.elems, send.line, send.elems
                                ),
                            ));
                        }
                    }
                    None => {
                        self.report.findings.push(Finding::new(
                            "H001",
                            &self.label,
                            r.line,
                            format!(
                                "recv {}→{} step {} received a message that was only \
                                 sent once — duplicate delivery in one attempt",
                                r.from, r.to, r.step
                            ),
                        ));
                    }
                },
                None => {
                    self.report.findings.push(Finding::new(
                        "H001",
                        &self.label,
                        r.line,
                        format!(
                            "recv {}→{} step {} completed with no matching send in \
                             this attempt",
                            r.from, r.to, r.step
                        ),
                    ));
                }
            }
        }
        self.window.sends.clear();
        self.window.through.clear();
        self.window.joined.clear();
    }

    fn finish(mut self) -> HbReport {
        self.close_window();
        for (actor, clock) in &self.clocks {
            let own = clock.0.get(actor).copied().unwrap_or(0);
            self.report.clocks.insert(actor.clone(), own);
        }
        let sup_own = self.sup.0.get(SUPERVISOR).copied().unwrap_or(0);
        if sup_own > 0 {
            self.report.clocks.insert(SUPERVISOR.to_string(), sup_own);
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::EventKind as EK;

    fn rec(ts: u64, event: EK) -> String {
        serde_json::to_string(&EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: ts,
            event,
        })
        .expect("serialize")
    }

    fn span_start(name: &str) -> EK {
        EK::SpanStart {
            span: 1,
            name: name.to_string(),
            arg: 0,
            tid: 0,
        }
    }

    fn send(from: &str, to: &str, step: u64, elems: u64) -> EK {
        EK::ExecSend {
            from: from.into(),
            to: to.into(),
            step,
            elems,
        }
    }

    fn recv(from: &str, to: &str, step: u64, elems: u64) -> EK {
        EK::ExecRecv {
            from: from.into(),
            to: to.into(),
            step,
            elems,
            wait_nanos: 5,
        }
    }

    fn checkpoint(worker: &str, through: u64) -> EK {
        EK::ExecCheckpoint {
            worker: worker.into(),
            through,
            cells: 4,
        }
    }

    fn resume(attempt: u64, resume_step: u64, backoff_nanos: u64) -> EK {
        EK::ExecResume {
            attempt,
            resume_step,
            resumed: resume_step,
            replayed: 0,
            survivors: 3,
            backoff_nanos,
        }
    }

    fn peer_lost(worker: &str, peer: &str, step: u64, detail: &str) -> EK {
        EK::ExecPeerLost {
            worker: worker.into(),
            peer: peer.into(),
            step,
            detail: detail.into(),
        }
    }

    fn blame(dead: &str) -> EK {
        EK::ExecBlame {
            dead: dead.into(),
            weights: vec![0, 3, 0],
        }
    }

    fn stream(events: Vec<EK>) -> String {
        events
            .into_iter()
            .enumerate()
            .map(|(i, e)| rec(i as u64, e))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn clean_exchange_passes_with_clocks() {
        let text = stream(vec![
            span_start("exec.run"),
            send("R", "S", 0, 7),
            recv("R", "S", 0, 7),
            send("S", "R", 0, 3),
            recv("S", "R", 0, 3),
            checkpoint("R", 1),
            checkpoint("R", 2),
        ]);
        let report = check_stream("t.jsonl", &text);
        assert!(report.ok(), "{:?}", report.findings);
        assert_eq!(report.runs, 1);
        assert_eq!(report.windows, 1);
        assert_eq!(report.clocks.get("R"), Some(&4));
        assert_eq!(report.clocks.get("S"), Some(&2));
        // S's clock saw R's send before its recv join… summary renders.
        assert!(report.summary().contains("violation(s)"));
    }

    #[test]
    fn h001_fires_on_recv_without_send_with_line() {
        let text = stream(vec![
            span_start("exec.run"),
            send("R", "S", 0, 7),
            recv("R", "S", 0, 7),
            recv("S", "R", 2, 5), // never sent
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "H001");
        assert_eq!(report.findings[0].line, 4);
        assert!(report.findings[0].message.contains("no matching send"));
    }

    #[test]
    fn h001_is_order_free_within_a_window() {
        // Emission race: the recv line lands before its send line. Must
        // NOT fire — matching is per-window, not per-stream-order.
        let text = stream(vec![
            span_start("exec.run"),
            recv("R", "S", 0, 7),
            send("R", "S", 0, 7),
        ]);
        assert!(check_stream("t.jsonl", &text).ok());
    }

    #[test]
    fn h001_fires_on_elems_mismatch_and_duplicate_delivery() {
        let text = stream(vec![
            span_start("exec.run"),
            send("R", "S", 0, 7),
            recv("R", "S", 0, 9), // wrong payload size
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("carries 9 elems"));

        let text = stream(vec![
            span_start("exec.run"),
            send("R", "S", 0, 7),
            recv("R", "S", 0, 7),
            recv("R", "S", 0, 7), // delivered twice
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("duplicate delivery"));
    }

    #[test]
    fn h002_fires_on_checkpoint_regression() {
        let text = stream(vec![
            span_start("exec.run"),
            checkpoint("R", 5),
            checkpoint("R", 3),
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "H002");
        assert_eq!(report.findings[0].line, 3);
        assert!(report.findings[0].message.contains("regresses"));
    }

    #[test]
    fn h002_allows_regression_across_attempts() {
        // Another worker lagged, so attempt 2 resumes at 3; R re-banks 4
        // after having banked 5 in attempt 1. Legal: windows reset.
        let text = stream(vec![
            span_start("exec.run"),
            checkpoint("R", 5),
            resume(2, 3, 1000),
            checkpoint("R", 4),
        ]);
        assert!(check_stream("t.jsonl", &text).ok());
    }

    #[test]
    fn h003_fires_on_blame_before_retry() {
        let text = stream(vec![
            span_start("exec.run"),
            peer_lost("R", "S", 2, "receive timed out"),
            blame("S"),
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "H003");
        assert_eq!(report.findings[0].line, 3);
    }

    #[test]
    fn h003_accepts_blame_after_backoff_resume_or_disconnect() {
        // Inconclusive evidence, but a backoff re-attempt was burned.
        let text = stream(vec![
            span_start("exec.run"),
            peer_lost("R", "S", 2, "receive timed out"),
            resume(2, 0, 20_000),
            peer_lost("R", "S", 2, "receive timed out"),
            blame("S"),
        ]);
        assert!(check_stream("t.jsonl", &text).ok());
        // Conclusive: a disconnect (crash confession cascade).
        let text = stream(vec![
            span_start("exec.run"),
            peer_lost("R", "S", 2, "channel disconnected"),
            blame("S"),
        ]);
        assert!(check_stream("t.jsonl", &text).ok());
        // A second conviction needs fresh evidence.
        let text = stream(vec![
            span_start("exec.run"),
            peer_lost("R", "S", 2, "channel disconnected"),
            blame("S"),
            peer_lost("R", "P", 4, "receive timed out"),
            blame("P"),
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "H003");
    }

    #[test]
    fn h004_fires_on_step_below_resume() {
        let text = stream(vec![
            span_start("exec.run"),
            resume(2, 4, 1000),
            send("R", "S", 2, 7), // replaying step 2 < resume 4
        ]);
        let report = check_stream("t.jsonl", &text);
        assert!(report.findings.iter().any(|f| f.rule == "H004"));
        let h004 = report.findings.iter().find(|f| f.rule == "H004").unwrap();
        assert_eq!(h004.line, 3);
        assert!(h004.message.contains("below the attempt's resume_step 4"));
    }

    #[test]
    fn runs_reset_windows_and_evidence() {
        // Two runs back to back: matching never crosses an exec.run span.
        let text = stream(vec![
            span_start("exec.run"),
            send("R", "S", 0, 7),
            recv("R", "S", 0, 7),
            span_start("exec.run"),
            recv("R", "S", 0, 7), // second run: no send yet
        ]);
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.runs, 2);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "H001");
    }

    #[test]
    fn lenient_parse_counts_skips_and_ignores_foreign_schema() {
        let mut text = stream(vec![span_start("exec.run"), send("R", "S", 0, 1)]);
        text.push_str("\n\nnot json at all\n");
        text.push_str(
            &rec(9, send("R", "S", 1, 1)).replace(&format!("\"v\":{SCHEMA_VERSION}"), "\"v\":1"),
        );
        let report = check_stream("t.jsonl", &text);
        assert_eq!(report.events, 2);
        assert_eq!(report.skipped_lines, 3);
    }

    #[test]
    fn stream_without_exec_events_passes_trivially() {
        let report = check_stream("t.jsonl", &stream(vec![span_start("dfa.run")]));
        assert!(report.ok());
        assert_eq!(report.runs, 0);
        assert_eq!(report.exec_events, 0);
    }
}
