//! Workspace file discovery and classification.
//!
//! Rules apply per *class* of file, mirroring how the workspace is laid
//! out: library sources carry the conventions (typed errors, the obs
//! facade, the pluggable clock), binaries are allowed to print and read
//! real time, and test code is exempt from the hygiene rules entirely.
//! `crates/compat/*` is excluded: those are vendored stand-ins whose whole
//! point is to mimic external crates' APIs, panics and all.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a source file is treated by the rule engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// A crate root (`crates/<name>/src/lib.rs`): all library rules plus
    /// the crate-attribute rule L004.
    LibraryRoot,
    /// Library code under `crates/<name>/src/` (not `bin/`, not `main.rs`).
    Library,
    /// Binary code: `src/bin/*.rs`, `src/main.rs`, `examples/`.
    Binary,
    /// Test or bench code: `tests/`, `benches/`.
    Test,
}

/// One discovered source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators — the stable key used
    /// in findings, suppressions, and the baseline.
    pub rel: String,
    /// Rule-engine classification.
    pub class: FileClass,
}

/// Collect every `.rs` file the linter should look at, rooted at the
/// workspace directory. Deterministic order (sorted by relative path).
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == "compat" || name.starts_with('.') {
                continue;
            }
            let crate_dir = entry.path();
            if !crate_dir.is_dir() {
                continue;
            }
            walk(&crate_dir, root, &mut files)?;
        }
    }
    for top in ["tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> io::Result<Vec<fs::DirEntry>> {
    let mut entries: Vec<fs::DirEntry> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    Ok(entries)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in read_dir_sorted(dir)? {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative(&path, root);
            if let Some(class) = classify(&rel) {
                out.push(SourceFile { path, rel, class });
            }
        }
    }
    Ok(())
}

fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classify a workspace-relative path; `None` means "do not scan" (e.g.
/// fixture files nested under a `tests/` directory, which cargo does not
/// compile either).
fn classify(rel: &str) -> Option<FileClass> {
    let parts: Vec<&str> = rel.split('/').collect();
    // Workspace-level `tests/` and `examples/` members.
    if parts.first() == Some(&"tests") {
        // Only direct children are cargo targets; nested files are
        // fixtures and are not Rust compilation units.
        return (parts.len() == 2).then_some(FileClass::Test);
    }
    if parts.first() == Some(&"examples") {
        return (parts.len() == 2).then_some(FileClass::Binary);
    }
    // crates/<name>/…
    if parts.len() >= 3 && parts[0] == "crates" {
        let inner = &parts[2..];
        return match inner.first().copied() {
            Some("tests") | Some("benches") => {
                ((parts.len() == 4) && inner.len() == 2).then_some(FileClass::Test)
            }
            Some("src") => {
                if inner.len() == 2 && inner[1] == "lib.rs" {
                    Some(FileClass::LibraryRoot)
                } else if (inner.len() == 2 && inner[1] == "main.rs")
                    || inner.get(1).copied() == Some("bin")
                {
                    Some(FileClass::Binary)
                } else {
                    Some(FileClass::Library)
                }
            }
            _ => None,
        };
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_workspace_layout() {
        assert_eq!(
            classify("crates/obs/src/lib.rs"),
            Some(FileClass::LibraryRoot)
        );
        assert_eq!(
            classify("crates/obs/src/clock.rs"),
            Some(FileClass::Library)
        );
        assert_eq!(
            classify("crates/bench/src/bin/perf_gate.rs"),
            Some(FileClass::Binary)
        );
        assert_eq!(classify("crates/lint/src/main.rs"), Some(FileClass::Binary));
        assert_eq!(
            classify("crates/push/tests/exhaustive_small.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/simulate.rs"),
            Some(FileClass::Test)
        );
        assert_eq!(classify("tests/fault_tolerance.rs"), Some(FileClass::Test));
        assert_eq!(classify("examples/quickstart.rs"), Some(FileClass::Binary));
        // Fixtures nested below tests/ are not compilation units.
        assert_eq!(classify("crates/lint/tests/fixtures/bad.rs"), None);
        assert_eq!(classify("tests/fixtures/bad.rs"), None);
    }
}
