#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Workspace-specific static analysis for the hetmmm workspace.
//!
//! `hetmmm-lint` enforces the conventions the workspace's own design
//! documents promise but `rustc`/`clippy` cannot check: typed errors
//! instead of panics in library code (L001), all time reads through the
//! pluggable obs clock (L002), silence in libraries (L003), hardened
//! crate roots (L004), no hidden sleeps (L005), a version-bumped event
//! vocabulary (L010), a single registry of metric names (L011), manifest
//! coverage for every bench binary (L012), exhaustive event consumers
//! (L020), live metrics (L021), reachable error variants (L022), and
//! executor channel discipline (L023).
//!
//! The analysis is built on a small hand-rolled Rust lexer
//! ([`lexer::lex`]) so string literals and comments can never produce
//! false positives, plus a test-region mask ([`lexer::test_mask`]) so
//! `#[test]` functions and `#[cfg(test)]` modules are exempt. The L02x
//! rules additionally use the [`itemtree`] AST-lite layer (brace-matched
//! items, match arms, pattern masks, loop blocks) to tell patterns from
//! constructions and to see loop structure. A separate happens-before
//! checker over recorded executor event streams lives in [`hb`].
//!
//! Pre-existing findings are grandfathered by a committed
//! [`baseline::Baseline`] (`lint_baseline.json`); the gate is a ratchet —
//! new findings fail, fixed findings shrink the baseline via
//! `--write-baseline`. Individual sites are waived inline with
//! `// hetmmm-lint: allow(L001) <reason>`.

pub mod baseline;
pub mod findings;
pub mod hb;
pub mod itemtree;
pub mod lexer;
pub mod rules;
pub mod semantic;
pub mod source;

use crate::baseline::SchemaRecord;
use crate::findings::Finding;
use crate::semantic::{MetricRegistry, SchemaInfo};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Outcome of a full lint pass over one workspace tree (before baseline
/// gating — see [`baseline::gate`] for that step).
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings after inline suppressions were applied.
    pub findings: Vec<Finding>,
    /// How many findings inline suppressions removed.
    pub suppressed: usize,
    /// Number of source files scanned.
    pub files: usize,
    /// The event-schema info L010 extracted (fed into `--write-baseline`).
    pub schema: Option<SchemaInfo>,
    /// Infrastructure notes: semantic rules that were skipped because the
    /// file they inspect is missing from this tree.
    pub notes: Vec<String>,
}

/// Run every rule over the workspace rooted at `root`.
///
/// `committed` is the schema record from the loaded baseline; rule L010
/// compares the live event vocabulary against it. Cross-file rules whose
/// anchor file is missing (e.g. a fixture tree without `crates/obs`)
/// record a note and are skipped rather than erroring.
pub fn run_lint(root: &Path, committed: Option<&SchemaRecord>) -> io::Result<LintReport> {
    let files = source::collect(root)?;
    let mut report = LintReport {
        files: files.len(),
        ..LintReport::default()
    };

    // L011/L021 anchor: the metric-name registry in crates/obs/src/metrics.rs.
    let mut registry_findings = Vec::new();
    let registry = match fs::read_to_string(root.join(semantic::METRICS_RS)) {
        Ok(src) => {
            let reg = semantic::parse_metric_registry(&src, &mut registry_findings);
            if !reg.present {
                report.notes.push(format!(
                    "{} has no `mod names` registry; L011/L021 skipped",
                    semantic::METRICS_RS
                ));
            }
            reg
        }
        Err(_) => {
            report.notes.push(format!(
                "{} not found; L011/L021 skipped",
                semantic::METRICS_RS
            ));
            MetricRegistry::default()
        }
    };

    // L010/L020 anchor: the event vocabulary in crates/obs/src/event.rs.
    // Extracted before the file loop so L020 can check each consumer file
    // against the live variant list as it is scanned.
    let mut event_variants: Vec<(String, u32)> = Vec::new();
    report.schema = match fs::read_to_string(root.join(semantic::EVENT_RS)) {
        Ok(src) => {
            let toks = lexer::lex(&src).tokens;
            event_variants = itemtree::enum_variants(&toks, "EventKind").unwrap_or_default();
            match semantic::extract_schema(&src) {
                Some(info) => {
                    semantic::l010_schema_drift(&info, committed, &mut report.findings);
                    Some(info)
                }
                None => {
                    report.notes.push(format!(
                        "{} has no SCHEMA_VERSION/EventKind; L010/L020 skipped",
                        semantic::EVENT_RS
                    ));
                    None
                }
            }
        }
        Err(_) => {
            report.notes.push(format!(
                "{} not found; L010/L020 skipped",
                semantic::EVENT_RS
            ));
            None
        }
    };

    // L022 anchor: the workspace error enum.
    let error_variants: Vec<(String, u32)> = match fs::read_to_string(root.join(semantic::ERROR_RS))
    {
        Ok(src) => {
            itemtree::enum_variants(&lexer::lex(&src).tokens, "HetmmmError").unwrap_or_default()
        }
        Err(_) => {
            report
                .notes
                .push(format!("{} not found; L022 skipped", semantic::ERROR_RS));
            Vec::new()
        }
    };

    // Cross-file usage accumulated during the loop, consumed by the
    // post-loop liveness rules.
    let mut used_metric_consts = BTreeSet::new();
    let mut used_metric_names = BTreeSet::new();
    let mut constructed_errors = BTreeSet::new();
    // Suppressions of the liveness anchor files, re-applied to the late
    // findings those files anchor.
    let mut anchor_sups: Vec<(String, Vec<findings::Suppression>)> = Vec::new();

    for file in &files {
        let src = fs::read_to_string(&file.path)?;
        let lexed = lexer::lex(&src);
        let mask = lexer::test_mask(&lexed.tokens);
        let ctx = rules::FileCtx {
            file,
            lexed: &lexed,
            mask: &mask,
        };
        let mut file_findings = Vec::new();
        rules::run_file_rules(&ctx, &mut file_findings);
        semantic::l011_metric_call_sites(&ctx, &registry, &mut file_findings);
        semantic::l012_bin_session(&ctx, &mut file_findings);
        semantic::l020_event_coverage(&ctx, &event_variants, &mut file_findings);
        semantic::l023_channel_discipline(&ctx, &mut file_findings);
        semantic::collect_metric_usage(
            &ctx,
            &registry,
            &mut used_metric_consts,
            &mut used_metric_names,
        );
        semantic::collect_error_constructions(&ctx, &error_variants, &mut constructed_errors);
        if file.rel == semantic::METRICS_RS {
            file_findings.append(&mut registry_findings);
        }
        let sups = findings::parse_suppressions(&lexed.comments);
        report.suppressed += findings::apply_suppressions(&mut file_findings, &sups, &file.rel);
        if file.rel == semantic::METRICS_RS || file.rel == semantic::ERROR_RS {
            anchor_sups.push((file.rel.clone(), sups));
        }
        report.findings.append(&mut file_findings);
    }

    // Liveness rules need the whole tree scanned before they can call
    // anything dead.
    let mut late = Vec::new();
    semantic::l021_metric_liveness(
        &registry,
        &used_metric_consts,
        &used_metric_names,
        &mut late,
    );
    semantic::l022_error_reachability(&error_variants, &constructed_errors, &mut late);
    for (rel, sups) in &anchor_sups {
        let mut anchored: Vec<Finding> = Vec::new();
        late.retain(|f| {
            if &f.path == rel {
                anchored.push(f.clone());
                false
            } else {
                true
            }
        });
        report.suppressed += findings::suppress_matching(&mut anchored, sups);
        late.append(&mut anchored);
    }
    report.findings.append(&mut late);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_lint_on_missing_tree_is_empty_not_an_error() {
        let report = run_lint(Path::new("/nonexistent-hetmmm-fixture"), None)
            .expect("missing tree is not an IO error");
        assert_eq!(report.files, 0);
        assert!(report.findings.is_empty());
        // All three semantic anchors were noted as skipped.
        assert_eq!(report.notes.len(), 3);
    }
}
