//! Cross-file semantic rules L010–L012 and L020–L023.
//!
//! | id   | invariant |
//! |------|-----------|
//! | L010 | `EventKind`'s variant/field fingerprint matches the committed one, or `SCHEMA_VERSION` was bumped |
//! | L011 | metric names come from the `names` registry in `crates/obs/src/metrics.rs`, and registry names are unique |
//! | L012 | every bench binary opens a `BinSession` unless on the read-only allowlist |
//! | L020 | every event-consumer file matches or explicitly acknowledges every `EventKind` variant |
//! | L021 | every registered metric name is emitted somewhere outside tests (the reverse of L011) |
//! | L022 | every `HetmmmError` variant is constructed somewhere outside tests |
//! | L023 | executor channel discipline: send step tags flow from the worker's own loop variable; `recv_timeout` sits under a retry loop consulting the `BackoffPolicy` |
//!
//! L020–L022 are *liveness* rules built on the [`crate::itemtree`]
//! AST-lite layer: they need to tell a variant *pattern* (handling /
//! destructuring) apart from a variant *expression* (construction), which
//! flat token scanning cannot.

use crate::baseline::SchemaRecord;
use crate::findings::{Finding, RULE_SUPPRESSION_REASON};
use crate::itemtree;
use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::rules::FileCtx;
use crate::source::FileClass;
use std::collections::{BTreeMap, BTreeSet};

/// Path of the event-vocabulary module, relative to the workspace root.
pub const EVENT_RS: &str = "crates/obs/src/event.rs";
/// Path of the metrics module that hosts the name registry.
pub const METRICS_RS: &str = "crates/obs/src/metrics.rs";
/// Bench binaries that only *read* artifacts and deliberately do not open
/// a `BinSession` (a session would append to the manifests they analyze).
pub const BINSESSION_ALLOWLIST: [&str; 5] = [
    "obs_report",
    "perf_gate",
    "obs_verify",
    "bench_trend",
    "dash",
];
/// Path of the workspace error enum (L022 anchor).
pub const ERROR_RS: &str = "crates/error/src/lib.rs";
/// Files that consume the serialized event stream and must stay exhaustive
/// over `EventKind` (L020): each must match every variant or acknowledge
/// the ones it deliberately streams through opaquely.
pub const EVENT_CONSUMERS: [&str; 4] = [
    "crates/bench/src/bin/obs_verify.rs",
    "crates/report/src/store.rs",
    "crates/report/src/timeline.rs",
    "crates/report/src/dashboard.rs",
];
/// Executor files under channel discipline (L023).
pub const EXEC_CHANNEL_FILES: [&str; 2] =
    ["crates/mmm/src/parallel.rs", "crates/mmm/src/supervise.rs"];

/// FNV-1a 64-bit over `data`, rendered as fixed-width hex.
pub fn fnv1a_hex(data: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// What L010 extracted from `crates/obs/src/event.rs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaInfo {
    /// Value of the `SCHEMA_VERSION` constant.
    pub version: u32,
    /// Canonical `Variant{field,field};…` listing of `EventKind`.
    pub shape: String,
    /// [`fnv1a_hex`] of `shape`.
    pub fingerprint: String,
}

impl SchemaInfo {
    /// The record a fresh baseline would commit.
    pub fn record(&self) -> SchemaRecord {
        SchemaRecord {
            schema_version: self.version,
            fingerprint: self.fingerprint.clone(),
        }
    }
}

/// Extract `SCHEMA_VERSION` and the `EventKind` shape from the source of
/// `event.rs`. Returns `None` when either is missing (the file moved or
/// was gutted — reported by the caller as a lint infrastructure note).
pub fn extract_schema(src: &str) -> Option<SchemaInfo> {
    let toks = lex(src).tokens;
    let version = find_schema_version(&toks)?;
    let shape = event_kind_shape(&toks)?;
    let fingerprint = fnv1a_hex(&shape);
    Some(SchemaInfo {
        version,
        shape,
        fingerprint,
    })
}

fn find_schema_version(toks: &[Tok]) -> Option<u32> {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SCHEMA_VERSION") {
            // const SCHEMA_VERSION : u32 = <num> ;
            for n in toks.iter().skip(i + 1).take(6) {
                if n.kind == TokKind::Num {
                    return n.text.replace('_', "").parse().ok();
                }
            }
        }
    }
    None
}

/// Canonical shape string: `Variant{f1,f2};Variant2;Variant3(2);…` —
/// struct variants list field names, tuple variants their arity, unit
/// variants just the name. Renames, insertions, deletions, and reorders
/// all change the string.
fn event_kind_shape(toks: &[Tok]) -> Option<String> {
    let start = toks
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("EventKind"))?;
    let open = (start..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let mut shape = String::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.kind == TokKind::Ident {
            // Skip attributes on variants.
            if i > 0 && toks[i - 1].is_punct('[') {
                i += 1;
                continue;
            }
            if !shape.is_empty() {
                shape.push(';');
            }
            shape.push_str(&t.text);
            match toks.get(i + 1) {
                Some(n) if n.is_punct('{') => {
                    // Struct variant: collect field names (idents directly
                    // followed by `:` at field depth).
                    let (fields, end) = struct_fields(toks, i + 1);
                    shape.push('{');
                    shape.push_str(&fields.join(","));
                    shape.push('}');
                    // Jump past the matched `}`; both braces are skipped,
                    // so depth stays untouched.
                    i = end + 1;
                    continue;
                }
                Some(n) if n.is_punct('(') => {
                    // Tuple variant: record arity (top-level commas + 1).
                    let (arity, end) = tuple_arity(toks, i + 1);
                    shape.push_str(&format!("({arity})"));
                    i = end + 1;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
    (!shape.is_empty()).then_some(shape)
}

/// Collect field names of a struct variant whose `{` is at `open`;
/// returns the names and the index of the matching `}`.
fn struct_fields(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return (fields, i);
            }
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            // `name:` but not `path::segment`.
            if i == open + 1 || !toks[i - 1].is_punct(':') {
                fields.push(t.text.clone());
            }
        }
        i += 1;
    }
    (fields, toks.len().saturating_sub(1))
}

/// Arity of a tuple variant whose `(` is at `open`; returns the arity and
/// the index of the matching `)`.
fn tuple_arity(toks: &[Tok], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return ((any as usize) + commas, i);
            }
        } else if depth == 1 {
            any = true;
            if t.is_punct(',') {
                commas += 1;
            }
        }
        i += 1;
    }
    ((any as usize) + commas, toks.len().saturating_sub(1))
}

/// L010: compare the extracted schema against the committed record.
/// Fires when the shape changed but the version did not.
pub fn l010_schema_drift(
    info: &SchemaInfo,
    committed: Option<&SchemaRecord>,
    out: &mut Vec<Finding>,
) {
    let Some(rec) = committed else {
        return; // first run: --write-baseline commits the initial record
    };
    if info.fingerprint != rec.fingerprint && info.version == rec.schema_version {
        out.push(Finding::new(
            "L010",
            EVENT_RS,
            1,
            format!(
                "EventKind changed (fingerprint {} -> {}) without a SCHEMA_VERSION bump \
                 (still {}); bump SCHEMA_VERSION and re-run with --write-baseline",
                rec.fingerprint, info.fingerprint, info.version
            ),
        ));
    }
}

/// The metric-name registry parsed out of `mod names` in metrics.rs.
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    /// Declared names with the line of their declaration.
    pub names: BTreeMap<String, u32>,
    /// Declaring const → the names it declares with their lines; the unit
    /// of liveness for L021 (a referenced const makes all its names live,
    /// since array registries are indexed dynamically).
    pub consts: BTreeMap<String, Vec<(String, u32)>>,
    /// Was a `mod names` block found at all?
    pub present: bool,
}

/// Parse the `mod names { … }` block of `metrics.rs` and check
/// registry-internal uniqueness (one half of L011).
pub fn parse_metric_registry(metrics_src: &str, out: &mut Vec<Finding>) -> MetricRegistry {
    let toks = lex(metrics_src).tokens;
    let mut reg = MetricRegistry::default();
    let Some(start) = toks
        .windows(2)
        .position(|w| w[0].is_ident("mod") && w[1].is_ident("names"))
    else {
        return reg;
    };
    let Some(open) = (start..toks.len()).find(|&i| toks[i].is_punct('{')) else {
        return reg;
    };
    reg.present = true;
    let mut depth = 0i32;
    let mut cur_const: Option<String> = None;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("const") {
            cur_const = toks
                .get(j + 1)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
        } else if t.kind == TokKind::Str {
            if let Some(konst) = &cur_const {
                reg.consts
                    .entry(konst.clone())
                    .or_default()
                    .push((t.text.clone(), t.line));
            }
            if let Some(&first_line) = reg.names.get(&t.text) {
                out.push(Finding::new(
                    "L011",
                    METRICS_RS,
                    t.line,
                    format!(
                        "metric name \"{}\" registered twice (first at line {first_line})",
                        t.text
                    ),
                ));
            } else {
                reg.names.insert(t.text.clone(), t.line);
            }
        }
    }
    reg
}

/// L011 (call-site half): every string literal handed directly to
/// `.counter("…")` / `.gauge("…")` / `.histogram("…", …)` outside test
/// code must be declared in the registry. Call sites that use the
/// registry's constants carry no literal and pass by construction.
pub fn l011_metric_call_sites(ctx: &FileCtx<'_>, reg: &MetricRegistry, out: &mut Vec<Finding>) {
    if !reg.present {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let is_reg_call = matches!(t.text.as_str(), "counter" | "gauge" | "histogram");
        if !is_reg_call || i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let (Some(paren), Some(lit)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if paren.is_punct('(') && lit.kind == TokKind::Str && !reg.names.contains_key(&lit.text) {
            out.push(Finding::new(
                "L011",
                &ctx.file.rel,
                lit.line,
                format!(
                    "metric name \"{}\" is not declared in the names registry ({METRICS_RS})",
                    lit.text
                ),
            ));
        }
    }
}

/// L012: every bench binary opens a `BinSession` (so its run lands in the
/// manifest trail) unless it is on the read-only allowlist.
pub fn l012_bin_session(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.class != FileClass::Binary || !ctx.file.rel.starts_with("crates/bench/src/bin/") {
        return;
    }
    let stem = ctx
        .file
        .rel
        .rsplit('/')
        .next()
        .and_then(|n| n.strip_suffix(".rs"))
        .unwrap_or_default();
    if BINSESSION_ALLOWLIST.contains(&stem) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let opens = toks.windows(4).any(|w| {
        w[0].is_ident("BinSession")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident("start")
    });
    if !opens {
        out.push(Finding::new(
            "L012",
            &ctx.file.rel,
            1,
            "bench binary never opens a BinSession; its runs will be missing from \
             results/manifests.jsonl (add it, or extend the read-only allowlist)",
        ));
    }
}

/// One parsed `// hetmmm-lint: ack-events(VariantA, VariantB) reason`
/// comment: the file deliberately does not handle these variants (they
/// stream through opaquely or are out of its scope). `ack-events(*)`
/// acknowledges the whole vocabulary — for consumers that never branch on
/// the event payload at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventAck {
    /// 1-based line of the comment.
    pub line: u32,
    /// Variant names listed (empty for a wildcard).
    pub variants: Vec<String>,
    /// Was the ack `ack-events(*)`?
    pub wildcard: bool,
    /// Did the comment carry a non-empty reason after the paren?
    pub has_reason: bool,
}

/// Parse every `ack-events(…)` acknowledgement out of a file's comments.
pub fn parse_event_acks(comments: &[Comment]) -> Vec<EventAck> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("hetmmm-lint:") else {
            continue;
        };
        let rest = c.text[at + "hetmmm-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("ack-events(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let inner = args[..close].trim();
        let wildcard = inner == "*";
        let variants: Vec<String> = if wildcard {
            Vec::new()
        } else {
            inner
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        };
        if !wildcard && variants.is_empty() {
            continue;
        }
        let reason = args[close + 1..].trim();
        out.push(EventAck {
            line: c.line,
            variants,
            wildcard,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// L020: an event-consumer file handles every `EventKind` variant — each
/// variant is either referenced in a `::Variant` path outside tests or
/// listed in an `ack-events(…)` acknowledgement. Stale acks (a variant
/// that no longer exists, or one the file now handles) are flagged so the
/// acknowledged set cannot rot.
pub fn l020_event_coverage(ctx: &FileCtx<'_>, variants: &[(String, u32)], out: &mut Vec<Finding>) {
    if variants.is_empty() || !EVENT_CONSUMERS.contains(&ctx.file.rel.as_str()) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let names: BTreeSet<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
    let mut handled: BTreeSet<String> = BTreeSet::new();
    let mut anchor_line = 1u32;
    let mut seen_anchor = false;
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if !seen_anchor && t.is_ident("EventKind") {
            anchor_line = t.line;
            seen_anchor = true;
        }
        if i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && names.contains(t.text.as_str())
        {
            handled.insert(t.text.clone());
        }
    }
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut wildcard = false;
    for ack in parse_event_acks(&ctx.lexed.comments) {
        if !ack.has_reason {
            out.push(Finding::new(
                RULE_SUPPRESSION_REASON,
                &ctx.file.rel,
                ack.line,
                "ack-events(…) carries no reason; add one after the closing paren",
            ));
            continue;
        }
        if ack.wildcard {
            wildcard = true;
            continue;
        }
        for v in &ack.variants {
            if !names.contains(v.as_str()) {
                out.push(Finding::new(
                    "L020",
                    &ctx.file.rel,
                    ack.line,
                    format!(
                        "ack-events names `{v}`, which is not an EventKind variant \
                         (stale acknowledgement — remove it)"
                    ),
                ));
            } else if handled.contains(v) {
                out.push(Finding::new(
                    "L020",
                    &ctx.file.rel,
                    ack.line,
                    format!(
                        "ack-events names `{v}`, but this file now handles it \
                         (stale acknowledgement — remove it)"
                    ),
                ));
            } else {
                acked.insert(v.clone());
            }
        }
    }
    if wildcard {
        return;
    }
    let missing: Vec<&str> = variants
        .iter()
        .map(|(n, _)| n.as_str())
        .filter(|n| !handled.contains(*n) && !acked.contains(*n))
        .collect();
    if !missing.is_empty() {
        let list = missing.join(", ");
        out.push(Finding::new(
            "L020",
            &ctx.file.rel,
            anchor_line,
            format!(
                "EventKind variant(s) {list} are neither matched nor acknowledged \
                 in this event consumer; handle them or add \
                 `// hetmmm-lint: ack-events({list}) <reason>`"
            ),
        ));
    }
}

/// Record which registry consts (and raw registered names at metric call
/// sites) this file references outside tests — the usage half of L021.
pub fn collect_metric_usage(
    ctx: &FileCtx<'_>,
    reg: &MetricRegistry,
    used_consts: &mut BTreeSet<String>,
    used_names: &mut BTreeSet<String>,
) {
    if !reg.present || ctx.file.rel == METRICS_RS {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if reg.consts.contains_key(&t.text) {
            used_consts.insert(t.text.clone());
        }
        if matches!(t.text.as_str(), "counter" | "gauge" | "histogram")
            && i > 0
            && toks[i - 1].is_punct('.')
        {
            if let (Some(paren), Some(lit)) = (toks.get(i + 1), toks.get(i + 2)) {
                if paren.is_punct('(')
                    && lit.kind == TokKind::Str
                    && reg.names.contains_key(&lit.text)
                {
                    used_names.insert(lit.text.clone());
                }
            }
        }
    }
}

/// L021 (liveness half): every registered metric name is emitted somewhere
/// outside tests. A const is live when its ident is referenced anywhere
/// outside `metrics.rs`, or one of its names appears at a literal metric
/// call site. L011 covers the reverse direction (emitted but unregistered).
pub fn l021_metric_liveness(
    reg: &MetricRegistry,
    used_consts: &BTreeSet<String>,
    used_names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    if !reg.present {
        return;
    }
    for (konst, entries) in &reg.consts {
        if used_consts.contains(konst) || entries.iter().any(|(n, _)| used_names.contains(n)) {
            continue;
        }
        let line = entries.first().map(|&(_, l)| l).unwrap_or(1);
        let list = entries
            .iter()
            .map(|(n, _)| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Finding::new(
            "L021",
            METRICS_RS,
            line,
            format!(
                "metric const `{konst}` ({list}) is registered but never emitted \
                 outside tests — dead metric; emit it or delete the registration"
            ),
        ));
    }
}

/// Record which `HetmmmError` variants this file *constructs* outside
/// tests — the usage half of L022. Pattern positions (match arms in
/// `Display`, `let`/`if let` destructuring) are excluded via
/// [`itemtree::pattern_mask`]: handling an error is not producing one.
pub fn collect_error_constructions(
    ctx: &FileCtx<'_>,
    variants: &[(String, u32)],
    constructed: &mut BTreeSet<String>,
) {
    if variants.is_empty() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    if !toks.iter().any(|t| t.is_ident("HetmmmError")) {
        return;
    }
    let names: BTreeSet<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
    let pat = itemtree::pattern_mask(toks);
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || pat[i] || !t.is_ident("HetmmmError") {
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            if let Some(v) = toks.get(i + 3) {
                if v.kind == TokKind::Ident && names.contains(v.text.as_str()) {
                    constructed.insert(v.text.clone());
                }
            }
        }
    }
}

/// L022: every `HetmmmError` variant is reachable — constructed somewhere
/// outside tests. An unconstructed variant is dead error surface: either
/// the failure path it documents was silently dropped, or the variant
/// should be deleted.
pub fn l022_error_reachability(
    variants: &[(String, u32)],
    constructed: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for (name, line) in variants {
        if !constructed.contains(name) {
            out.push(Finding::new(
                "L022",
                ERROR_RS,
                *line,
                format!(
                    "error variant `{name}` is never constructed outside tests — \
                     dead error surface or a missing propagation path"
                ),
            ));
        }
    }
}

/// L023: executor channel discipline. In [`EXEC_CHANNEL_FILES`]:
///
/// 1. every `send_with_deadline(tx, (STEP, …), …)` call passes a step tag
///    that *is* the loop variable of an enclosing `for` loop — a literal
///    or computed step could silently desynchronize the out-of-step
///    detector on the receiving side;
/// 2. every `.recv_timeout(…)` call sits under a retry loop that consults
///    the `BackoffPolicy` (references `retry`), so a transient stall is
///    re-armed with backoff instead of instantly convicting the peer.
pub fn l023_channel_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !EXEC_CHANNEL_FILES.contains(&ctx.file.rel.as_str()) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let loops = itemtree::loop_blocks(toks);
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("send_with_deadline")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            l023_check_send(toks, i, &loops, ctx, out);
        }
        if t.is_ident("recv_timeout")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            l023_check_recv(toks, i, &loops, ctx, out);
        }
    }
}

/// Find the step token of `send_with_deadline(tx, (STEP, …), …)` whose
/// name ident is at `call`, and require it to be an enclosing for-loop's
/// own variable.
fn l023_check_send(
    toks: &[Tok],
    call: usize,
    loops: &[itemtree::LoopBlock],
    ctx: &FileCtx<'_>,
    out: &mut Vec<Finding>,
) {
    let line = toks[call].line;
    // Walk past the first argument to the first depth-1 comma.
    let mut depth = 1i32;
    let mut j = call + 2;
    let step = loop {
        let Some(t) = toks.get(j) else {
            return;
        };
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break None; // single-argument call — no visible tuple
            }
        } else if depth == 1 && t.is_punct(',') {
            break if toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                toks.get(j + 2)
            } else {
                None
            };
        }
        j += 1;
    };
    let Some(step) = step else {
        out.push(Finding::new(
            "L023",
            &ctx.file.rel,
            line,
            "send_with_deadline message is not a literal `(step, …)` tuple; the step \
             tag must be syntactically visible so its provenance can be checked",
        ));
        return;
    };
    let flows_from_loop = step.kind == TokKind::Ident
        && loops.iter().any(|lb| {
            lb.kind == itemtree::LoopKind::For
                && lb.var.as_deref() == Some(step.text.as_str())
                && lb.body.0 < call
                && call < lb.body.1
        });
    if !flows_from_loop {
        out.push(Finding::new(
            "L023",
            &ctx.file.rel,
            step.line,
            format!(
                "send step tag `{}` does not flow from an enclosing for-loop variable; \
                 tag messages with the worker's own pivot-step variable",
                step.text
            ),
        ));
    }
}

/// Require the `.recv_timeout(…)` call at `call` to sit under a loop whose
/// body consults the `BackoffPolicy`.
fn l023_check_recv(
    toks: &[Tok],
    call: usize,
    loops: &[itemtree::LoopBlock],
    ctx: &FileCtx<'_>,
    out: &mut Vec<Finding>,
) {
    let line = toks[call].line;
    let enclosing: Vec<&itemtree::LoopBlock> = loops
        .iter()
        .filter(|lb| lb.body.0 < call && call < lb.body.1)
        .collect();
    if enclosing.is_empty() {
        out.push(Finding::new(
            "L023",
            &ctx.file.rel,
            line,
            "recv_timeout outside any retry loop; a single timed-out wait convicts the \
             peer instantly — wrap it in a loop that re-arms via the BackoffPolicy",
        ));
        return;
    }
    let consults_retry = enclosing.iter().any(|lb| {
        toks[lb.body.0..=lb.body.1]
            .iter()
            .any(|t| t.is_ident("retry"))
    });
    if !consults_retry {
        out.push(Finding::new(
            "L023",
            &ctx.file.rel,
            line,
            "recv_timeout retry loop never consults the BackoffPolicy (no `retry` \
             reference); timed-out waits must be re-armed with configured backoff",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVENT_SRC: &str = "
pub const SCHEMA_VERSION: u32 = 2;
pub enum EventKind {
    SpanStart { span: u64, name: String, arg: u64, tid: u64 },
    Message { target: String, text: String },
    Tick,
    Pair(u64, String),
}
";

    #[test]
    fn schema_extraction_reads_version_and_shape() {
        let info = extract_schema(EVENT_SRC).expect("schema");
        assert_eq!(info.version, 2);
        assert_eq!(
            info.shape,
            "SpanStart{span,name,arg,tid};Message{target,text};Tick;Pair(2)"
        );
        assert_eq!(info.fingerprint, fnv1a_hex(&info.shape));
    }

    #[test]
    fn l010_fires_on_mutated_variants_without_version_bump() {
        let info = extract_schema(EVENT_SRC).expect("schema");
        let committed = info.record();
        // Mutate: add a variant, same version.
        let mutated_src = EVENT_SRC.replace("Tick,", "Tick,\n    Added { x: u64 },");
        let mutated = extract_schema(&mutated_src).expect("schema");
        assert_eq!(mutated.version, committed.schema_version);
        let mut out = Vec::new();
        l010_schema_drift(&mutated, Some(&committed), &mut out);
        assert_eq!(out.len(), 1, "mutation without bump must fire");
        assert_eq!(out[0].rule, "L010");

        // Renaming a field also fires.
        let renamed = extract_schema(&EVENT_SRC.replace("arg:", "argument:")).expect("schema");
        let mut out = Vec::new();
        l010_schema_drift(&renamed, Some(&committed), &mut out);
        assert_eq!(out.len(), 1, "field rename without bump must fire");

        // Same mutation *with* a version bump passes.
        let bumped_src = mutated_src.replace("u32 = 2", "u32 = 3");
        let bumped = extract_schema(&bumped_src).expect("schema");
        let mut out = Vec::new();
        l010_schema_drift(&bumped, Some(&committed), &mut out);
        assert!(out.is_empty(), "bumped version must pass");

        // Unchanged shape passes.
        let mut out = Vec::new();
        l010_schema_drift(&info, Some(&committed), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn registry_parses_names_and_flags_duplicates() {
        let src = "
pub mod names {
    pub const A: &str = \"exec.updates.R\";
    pub const B: [&str; 2] = [\"dfa.push.a\", \"dfa.push.b\"];
    pub const DUP: &str = \"exec.updates.R\";
}
";
        let mut out = Vec::new();
        let reg = parse_metric_registry(src, &mut out);
        assert!(reg.present);
        assert_eq!(reg.names.len(), 3);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("registered twice"));
    }

    #[test]
    fn fingerprint_is_stable() {
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a"), fnv1a_hex("a"));
        assert_ne!(fnv1a_hex("a"), fnv1a_hex("b"));
    }

    use crate::lexer::test_mask;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn with_ctx<R>(rel: &str, src: &str, f: impl FnOnce(&FileCtx<'_>) -> R) -> R {
        let file = SourceFile {
            path: PathBuf::from(rel),
            rel: rel.to_string(),
            class: FileClass::Library,
        };
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        f(&FileCtx {
            file: &file,
            lexed: &lexed,
            mask: &mask,
        })
    }

    fn variants() -> Vec<(String, u32)> {
        vec![
            ("ExecSend".to_string(), 10),
            ("ExecRecv".to_string(), 20),
            ("SpanStart".to_string(), 30),
        ]
    }

    const CONSUMER: &str = "crates/report/src/timeline.rs";

    #[test]
    fn l020_passes_when_every_variant_is_matched_or_acked() {
        let src = "
// hetmmm-lint: ack-events(SpanStart) spans are scope markers, not timeline rows
fn f(e: EventKind) {
    match e {
        EventKind::ExecSend { .. } => {}
        EventKind::ExecRecv { .. } => {}
        _ => {}
    }
}
";
        let mut out = Vec::new();
        with_ctx(CONSUMER, src, |ctx| {
            l020_event_coverage(ctx, &variants(), &mut out)
        });
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn l020_fires_on_unhandled_variant_naming_it() {
        let src = "fn f(e: EventKind) { match e { EventKind::ExecSend { .. } => {}, _ => {} } }";
        let mut out = Vec::new();
        with_ctx(CONSUMER, src, |ctx| {
            l020_event_coverage(ctx, &variants(), &mut out)
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "L020");
        assert!(out[0].message.contains("ExecRecv"));
        assert!(out[0].message.contains("SpanStart"));
        assert!(!out[0].message.contains("ExecSend,"));
        // Non-consumer files are exempt.
        let mut out = Vec::new();
        with_ctx("crates/mmm/src/matrix.rs", src, |ctx| {
            l020_event_coverage(ctx, &variants(), &mut out)
        });
        assert!(out.is_empty());
    }

    #[test]
    fn l020_wildcard_ack_and_test_matches_behave() {
        // Wildcard acknowledges everything.
        let src = "// hetmmm-lint: ack-events(*) opaque stream pass-through\nfn f() {}";
        let mut out = Vec::new();
        with_ctx(CONSUMER, src, |ctx| {
            l020_event_coverage(ctx, &variants(), &mut out)
        });
        assert!(out.is_empty(), "{out:?}");
        // Matches inside #[cfg(test)] do not count as handling.
        let src = "
// hetmmm-lint: ack-events(ExecSend, ExecRecv) streamed opaquely
#[cfg(test)]
mod tests { fn t(e: EventKind) { match e { EventKind::SpanStart { .. } => {}, _ => {} } } }
";
        let mut out = Vec::new();
        with_ctx(CONSUMER, src, |ctx| {
            l020_event_coverage(ctx, &variants(), &mut out)
        });
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("SpanStart"));
    }

    #[test]
    fn l020_flags_stale_and_reasonless_acks() {
        let src = "
// hetmmm-lint: ack-events(Vanished) gone variant
// hetmmm-lint: ack-events(ExecSend) but it is handled below
// hetmmm-lint: ack-events(ExecRecv, SpanStart)
fn f(e: EventKind) { match e { EventKind::ExecSend { .. } => {}, _ => {} } }
";
        let mut out = Vec::new();
        with_ctx(CONSUMER, src, |ctx| {
            l020_event_coverage(ctx, &variants(), &mut out)
        });
        let rules: Vec<&str> = out.iter().map(|f| f.rule.as_str()).collect();
        // Stale-unknown, stale-handled, reasonless L000, and the still-
        // missing ExecRecv/SpanStart coverage finding.
        assert_eq!(rules, ["L020", "L020", "L000", "L020"], "{out:?}");
        assert!(out[0].message.contains("Vanished"));
        assert!(out[1].message.contains("now handles it"));
    }

    #[test]
    fn l021_flags_dead_metric_consts_only() {
        let metrics_src = "
pub mod names {
    pub const LIVE_BY_CONST: &str = \"exec.live\";
    pub const LIVE_BY_LITERAL: &str = \"exec.lit\";
    pub const DEAD: [&str; 2] = [\"exec.dead.a\", \"exec.dead.b\"];
}
";
        let mut out = Vec::new();
        let reg = parse_metric_registry(metrics_src, &mut out);
        assert!(out.is_empty());
        assert_eq!(reg.consts.len(), 3);
        let usage_src = "
fn f(m: &M) {
    m.counter(names::LIVE_BY_CONST).inc();
    m.gauge(\"exec.lit\").set(1);
}
";
        let mut used_consts = BTreeSet::new();
        let mut used_names = BTreeSet::new();
        with_ctx("crates/mmm/src/parallel.rs", usage_src, |ctx| {
            collect_metric_usage(ctx, &reg, &mut used_consts, &mut used_names)
        });
        let mut out = Vec::new();
        l021_metric_liveness(&reg, &used_consts, &used_names, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "L021");
        assert_eq!(out[0].path, METRICS_RS);
        assert!(out[0].message.contains("DEAD"));
        assert!(out[0].message.contains("exec.dead.a"));
    }

    #[test]
    fn l022_distinguishes_construction_from_handling() {
        let variants = vec![
            ("Constructed".to_string(), 5),
            ("OnlyMatched".to_string(), 9),
        ];
        let src = "
fn fail() -> HetmmmError {
    HetmmmError::Constructed { step: 3 }
}
fn show(e: &HetmmmError) -> &str {
    match e {
        HetmmmError::Constructed { .. } => \"c\",
        HetmmmError::OnlyMatched { .. } => \"m\",
    }
}
#[cfg(test)]
mod tests { fn t() { let _ = HetmmmError::OnlyMatched { x: 1 }; } }
";
        let mut constructed = BTreeSet::new();
        with_ctx("crates/mmm/src/parallel.rs", src, |ctx| {
            collect_error_constructions(ctx, &variants, &mut constructed)
        });
        let mut out = Vec::new();
        l022_error_reachability(&variants, &constructed, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "L022");
        assert_eq!(out[0].path, ERROR_RS);
        assert_eq!(out[0].line, 9);
        assert!(out[0].message.contains("OnlyMatched"));
    }

    const EXEC_FILE: &str = "crates/mmm/src/parallel.rs";

    #[test]
    fn l023_passes_on_disciplined_channel_use() {
        let src = "
fn run(&mut self) {
    for k in self.start..n {
        match send_with_deadline(tx, (k, a_part, b_part), self.send_patience, clock) {
            Ok(_) => {}
            Err(_) => return,
        }
        let msg = loop {
            match rx.recv_timeout(window) {
                Ok(m) => break m,
                Err(_) => { window = self.retry.delay(rewaits); rewaits += 1; }
            }
        };
    }
}
";
        let mut out = Vec::new();
        with_ctx(EXEC_FILE, src, |ctx| l023_channel_discipline(ctx, &mut out));
        assert!(out.is_empty(), "{out:?}");
        // Other files are exempt.
        let bad = "fn f() { let m = rx.recv_timeout(w); }";
        let mut out = Vec::new();
        with_ctx("crates/mmm/src/matrix.rs", bad, |ctx| {
            l023_channel_discipline(ctx, &mut out)
        });
        assert!(out.is_empty());
    }

    #[test]
    fn l023_fires_on_foreign_step_tag() {
        // Step tag is a literal, not the loop variable.
        let src = "
fn run() {
    for k in 0..n {
        send_with_deadline(tx, (0, a, b), patience, clock);
    }
}
";
        let mut out = Vec::new();
        with_ctx(EXEC_FILE, src, |ctx| l023_channel_discipline(ctx, &mut out));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "L023");
        assert!(out[0].message.contains("`0`"));
        // Step tag is an ident, but not any enclosing for-loop's variable.
        let src = "
fn run(step: usize) {
    for k in 0..n {
        send_with_deadline(tx, (step, a, b), patience, clock);
    }
}
";
        let mut out = Vec::new();
        with_ctx(EXEC_FILE, src, |ctx| l023_channel_discipline(ctx, &mut out));
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`step`"));
    }

    #[test]
    fn l023_fires_on_unguarded_recv() {
        // recv_timeout with no loop around it at all.
        let src = "fn f() { let m = rx.recv_timeout(w); }";
        let mut out = Vec::new();
        with_ctx(EXEC_FILE, src, |ctx| l023_channel_discipline(ctx, &mut out));
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("outside any retry loop"));
        // Loop exists but never consults the BackoffPolicy.
        let src = "fn f() { loop { match rx.recv_timeout(w) { Ok(m) => break m, Err(_) => {} } } }";
        let mut out = Vec::new();
        with_ctx(EXEC_FILE, src, |ctx| l023_channel_discipline(ctx, &mut out));
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("BackoffPolicy"));
    }
}
