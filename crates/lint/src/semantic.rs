//! Cross-file semantic rules L010–L012.
//!
//! | id   | invariant |
//! |------|-----------|
//! | L010 | `EventKind`'s variant/field fingerprint matches the committed one, or `SCHEMA_VERSION` was bumped |
//! | L011 | metric names come from the `names` registry in `crates/obs/src/metrics.rs`, and registry names are unique |
//! | L012 | every bench binary opens a `BinSession` unless on the read-only allowlist |

use crate::baseline::SchemaRecord;
use crate::findings::Finding;
use crate::lexer::{lex, Tok, TokKind};
use crate::rules::FileCtx;
use crate::source::FileClass;
use std::collections::BTreeMap;

/// Path of the event-vocabulary module, relative to the workspace root.
pub const EVENT_RS: &str = "crates/obs/src/event.rs";
/// Path of the metrics module that hosts the name registry.
pub const METRICS_RS: &str = "crates/obs/src/metrics.rs";
/// Bench binaries that only *read* artifacts and deliberately do not open
/// a `BinSession` (a session would append to the manifests they analyze).
pub const BINSESSION_ALLOWLIST: [&str; 5] = [
    "obs_report",
    "perf_gate",
    "obs_verify",
    "bench_trend",
    "dash",
];

/// FNV-1a 64-bit over `data`, rendered as fixed-width hex.
pub fn fnv1a_hex(data: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// What L010 extracted from `crates/obs/src/event.rs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaInfo {
    /// Value of the `SCHEMA_VERSION` constant.
    pub version: u32,
    /// Canonical `Variant{field,field};…` listing of `EventKind`.
    pub shape: String,
    /// [`fnv1a_hex`] of `shape`.
    pub fingerprint: String,
}

impl SchemaInfo {
    /// The record a fresh baseline would commit.
    pub fn record(&self) -> SchemaRecord {
        SchemaRecord {
            schema_version: self.version,
            fingerprint: self.fingerprint.clone(),
        }
    }
}

/// Extract `SCHEMA_VERSION` and the `EventKind` shape from the source of
/// `event.rs`. Returns `None` when either is missing (the file moved or
/// was gutted — reported by the caller as a lint infrastructure note).
pub fn extract_schema(src: &str) -> Option<SchemaInfo> {
    let toks = lex(src).tokens;
    let version = find_schema_version(&toks)?;
    let shape = event_kind_shape(&toks)?;
    let fingerprint = fnv1a_hex(&shape);
    Some(SchemaInfo {
        version,
        shape,
        fingerprint,
    })
}

fn find_schema_version(toks: &[Tok]) -> Option<u32> {
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SCHEMA_VERSION") {
            // const SCHEMA_VERSION : u32 = <num> ;
            for n in toks.iter().skip(i + 1).take(6) {
                if n.kind == TokKind::Num {
                    return n.text.replace('_', "").parse().ok();
                }
            }
        }
    }
    None
}

/// Canonical shape string: `Variant{f1,f2};Variant2;Variant3(2);…` —
/// struct variants list field names, tuple variants their arity, unit
/// variants just the name. Renames, insertions, deletions, and reorders
/// all change the string.
fn event_kind_shape(toks: &[Tok]) -> Option<String> {
    let start = toks
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("EventKind"))?;
    let open = (start..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let mut shape = String::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.kind == TokKind::Ident {
            // Skip attributes on variants.
            if i > 0 && toks[i - 1].is_punct('[') {
                i += 1;
                continue;
            }
            if !shape.is_empty() {
                shape.push(';');
            }
            shape.push_str(&t.text);
            match toks.get(i + 1) {
                Some(n) if n.is_punct('{') => {
                    // Struct variant: collect field names (idents directly
                    // followed by `:` at field depth).
                    let (fields, end) = struct_fields(toks, i + 1);
                    shape.push('{');
                    shape.push_str(&fields.join(","));
                    shape.push('}');
                    // Jump past the matched `}`; both braces are skipped,
                    // so depth stays untouched.
                    i = end + 1;
                    continue;
                }
                Some(n) if n.is_punct('(') => {
                    // Tuple variant: record arity (top-level commas + 1).
                    let (arity, end) = tuple_arity(toks, i + 1);
                    shape.push_str(&format!("({arity})"));
                    i = end + 1;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
    (!shape.is_empty()).then_some(shape)
}

/// Collect field names of a struct variant whose `{` is at `open`;
/// returns the names and the index of the matching `}`.
fn struct_fields(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return (fields, i);
            }
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            // `name:` but not `path::segment`.
            if i == open + 1 || !toks[i - 1].is_punct(':') {
                fields.push(t.text.clone());
            }
        }
        i += 1;
    }
    (fields, toks.len().saturating_sub(1))
}

/// Arity of a tuple variant whose `(` is at `open`; returns the arity and
/// the index of the matching `)`.
fn tuple_arity(toks: &[Tok], open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return ((any as usize) + commas, i);
            }
        } else if depth == 1 {
            any = true;
            if t.is_punct(',') {
                commas += 1;
            }
        }
        i += 1;
    }
    ((any as usize) + commas, toks.len().saturating_sub(1))
}

/// L010: compare the extracted schema against the committed record.
/// Fires when the shape changed but the version did not.
pub fn l010_schema_drift(
    info: &SchemaInfo,
    committed: Option<&SchemaRecord>,
    out: &mut Vec<Finding>,
) {
    let Some(rec) = committed else {
        return; // first run: --write-baseline commits the initial record
    };
    if info.fingerprint != rec.fingerprint && info.version == rec.schema_version {
        out.push(Finding::new(
            "L010",
            EVENT_RS,
            1,
            format!(
                "EventKind changed (fingerprint {} -> {}) without a SCHEMA_VERSION bump \
                 (still {}); bump SCHEMA_VERSION and re-run with --write-baseline",
                rec.fingerprint, info.fingerprint, info.version
            ),
        ));
    }
}

/// The metric-name registry parsed out of `mod names` in metrics.rs.
#[derive(Clone, Debug, Default)]
pub struct MetricRegistry {
    /// Declared names with the line of their declaration.
    pub names: BTreeMap<String, u32>,
    /// Was a `mod names` block found at all?
    pub present: bool,
}

/// Parse the `mod names { … }` block of `metrics.rs` and check
/// registry-internal uniqueness (one half of L011).
pub fn parse_metric_registry(metrics_src: &str, out: &mut Vec<Finding>) -> MetricRegistry {
    let toks = lex(metrics_src).tokens;
    let mut reg = MetricRegistry::default();
    let Some(start) = toks
        .windows(2)
        .position(|w| w[0].is_ident("mod") && w[1].is_ident("names"))
    else {
        return reg;
    };
    let Some(open) = (start..toks.len()).find(|&i| toks[i].is_punct('{')) else {
        return reg;
    };
    reg.present = true;
    let mut depth = 0i32;
    for t in &toks[open..] {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Str {
            if let Some(&first_line) = reg.names.get(&t.text) {
                out.push(Finding::new(
                    "L011",
                    METRICS_RS,
                    t.line,
                    format!(
                        "metric name \"{}\" registered twice (first at line {first_line})",
                        t.text
                    ),
                ));
            } else {
                reg.names.insert(t.text.clone(), t.line);
            }
        }
    }
    reg
}

/// L011 (call-site half): every string literal handed directly to
/// `.counter("…")` / `.gauge("…")` / `.histogram("…", …)` outside test
/// code must be declared in the registry. Call sites that use the
/// registry's constants carry no literal and pass by construction.
pub fn l011_metric_call_sites(ctx: &FileCtx<'_>, reg: &MetricRegistry, out: &mut Vec<Finding>) {
    if !reg.present {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let is_reg_call = matches!(t.text.as_str(), "counter" | "gauge" | "histogram");
        if !is_reg_call || i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let (Some(paren), Some(lit)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if paren.is_punct('(') && lit.kind == TokKind::Str && !reg.names.contains_key(&lit.text) {
            out.push(Finding::new(
                "L011",
                &ctx.file.rel,
                lit.line,
                format!(
                    "metric name \"{}\" is not declared in the names registry ({METRICS_RS})",
                    lit.text
                ),
            ));
        }
    }
}

/// L012: every bench binary opens a `BinSession` (so its run lands in the
/// manifest trail) unless it is on the read-only allowlist.
pub fn l012_bin_session(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.class != FileClass::Binary || !ctx.file.rel.starts_with("crates/bench/src/bin/") {
        return;
    }
    let stem = ctx
        .file
        .rel
        .rsplit('/')
        .next()
        .and_then(|n| n.strip_suffix(".rs"))
        .unwrap_or_default();
    if BINSESSION_ALLOWLIST.contains(&stem) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let opens = toks.windows(4).any(|w| {
        w[0].is_ident("BinSession")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident("start")
    });
    if !opens {
        out.push(Finding::new(
            "L012",
            &ctx.file.rel,
            1,
            "bench binary never opens a BinSession; its runs will be missing from \
             results/manifests.jsonl (add it, or extend the read-only allowlist)",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVENT_SRC: &str = "
pub const SCHEMA_VERSION: u32 = 2;
pub enum EventKind {
    SpanStart { span: u64, name: String, arg: u64, tid: u64 },
    Message { target: String, text: String },
    Tick,
    Pair(u64, String),
}
";

    #[test]
    fn schema_extraction_reads_version_and_shape() {
        let info = extract_schema(EVENT_SRC).expect("schema");
        assert_eq!(info.version, 2);
        assert_eq!(
            info.shape,
            "SpanStart{span,name,arg,tid};Message{target,text};Tick;Pair(2)"
        );
        assert_eq!(info.fingerprint, fnv1a_hex(&info.shape));
    }

    #[test]
    fn l010_fires_on_mutated_variants_without_version_bump() {
        let info = extract_schema(EVENT_SRC).expect("schema");
        let committed = info.record();
        // Mutate: add a variant, same version.
        let mutated_src = EVENT_SRC.replace("Tick,", "Tick,\n    Added { x: u64 },");
        let mutated = extract_schema(&mutated_src).expect("schema");
        assert_eq!(mutated.version, committed.schema_version);
        let mut out = Vec::new();
        l010_schema_drift(&mutated, Some(&committed), &mut out);
        assert_eq!(out.len(), 1, "mutation without bump must fire");
        assert_eq!(out[0].rule, "L010");

        // Renaming a field also fires.
        let renamed = extract_schema(&EVENT_SRC.replace("arg:", "argument:")).expect("schema");
        let mut out = Vec::new();
        l010_schema_drift(&renamed, Some(&committed), &mut out);
        assert_eq!(out.len(), 1, "field rename without bump must fire");

        // Same mutation *with* a version bump passes.
        let bumped_src = mutated_src.replace("u32 = 2", "u32 = 3");
        let bumped = extract_schema(&bumped_src).expect("schema");
        let mut out = Vec::new();
        l010_schema_drift(&bumped, Some(&committed), &mut out);
        assert!(out.is_empty(), "bumped version must pass");

        // Unchanged shape passes.
        let mut out = Vec::new();
        l010_schema_drift(&info, Some(&committed), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn registry_parses_names_and_flags_duplicates() {
        let src = "
pub mod names {
    pub const A: &str = \"exec.updates.R\";
    pub const B: [&str; 2] = [\"dfa.push.a\", \"dfa.push.b\"];
    pub const DUP: &str = \"exec.updates.R\";
}
";
        let mut out = Vec::new();
        let reg = parse_metric_registry(src, &mut out);
        assert!(reg.present);
        assert_eq!(reg.names.len(), 3);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("registered twice"));
    }

    #[test]
    fn fingerprint_is_stable() {
        assert_eq!(fnv1a_hex(""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a"), fnv1a_hex("a"));
        assert_ne!(fnv1a_hex("a"), fnv1a_hex("b"));
    }
}
