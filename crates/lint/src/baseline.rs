//! The suppression baseline: grandfathering pre-existing findings.
//!
//! `lint_baseline.json` (committed at the workspace root) records, per
//! `(rule, path)`, how many findings existed when the baseline was last
//! written, plus the [`SchemaRecord`] that rule L010 checks the event
//! vocabulary against. The gate then enforces a ratchet: a file may never
//! gain findings for a rule (fails CI), and when findings are fixed the
//! shrunken counts are folded back with `--write-baseline`.

use crate::findings::Finding;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the baseline file format itself.
pub const BASELINE_VERSION: u32 = 1;

/// The committed fingerprint of the obs event vocabulary (rule L010).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaRecord {
    /// `SCHEMA_VERSION` read from `crates/obs/src/event.rs`.
    pub schema_version: u32,
    /// FNV-1a hash (hex) over `EventKind`'s variant and field names.
    pub fingerprint: String,
}

/// One grandfathered count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Findings tolerated in this file for this rule.
    pub count: u32,
}

/// The committed baseline file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Always [`BASELINE_VERSION`].
    pub v: u32,
    /// Committed event-schema fingerprint (`None` before the first
    /// `--write-baseline`).
    pub schema: Option<SchemaRecord>,
    /// Grandfathered counts, sorted by `(rule, path)`.
    pub grandfathered: Vec<BaselineEntry>,
}

impl Baseline {
    /// An empty baseline (nothing grandfathered, no schema record).
    pub fn empty() -> Baseline {
        Baseline {
            v: BASELINE_VERSION,
            schema: None,
            grandfathered: Vec::new(),
        }
    }

    /// Build a baseline that grandfathers exactly `findings`.
    pub fn from_findings(findings: &[Finding], schema: Option<SchemaRecord>) -> Baseline {
        let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule.clone(), f.path.clone())).or_insert(0) += 1;
        }
        Baseline {
            v: BASELINE_VERSION,
            schema,
            grandfathered: counts
                .into_iter()
                .map(|((rule, path), count)| BaselineEntry { rule, path, count })
                .collect(),
        }
    }

    /// Total grandfathered findings for one rule (across all files).
    pub fn rule_total(&self, rule: &str) -> u32 {
        self.grandfathered
            .iter()
            .filter(|e| e.rule == rule)
            .map(|e| e.count)
            .sum()
    }

    /// Render as diff-friendly JSON: one grandfathered entry per line, so
    /// ratchet updates show up as single-line diffs in review. The output
    /// parses back with `serde_json::from_str`.
    pub fn render_pretty(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"v\": {},\n", self.v));
        match &self.schema {
            Some(s) => out.push_str(&format!("  \"schema\": {},\n", serde_json::to_string(s)?)),
            None => out.push_str("  \"schema\": null,\n"),
        }
        out.push_str("  \"grandfathered\": [");
        for (i, e) in self.grandfathered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&serde_json::to_string(e)?);
        }
        if !self.grandfathered.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        Ok(out)
    }
}

/// A `(rule, path)` group whose finding count dropped below its
/// grandfathered allowance — the baseline is stale and should be
/// rewritten so the ratchet tightens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Grandfathered allowance.
    pub allowed: u32,
    /// Findings actually present.
    pub actual: u32,
}

/// Outcome of comparing current findings against the baseline.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Findings in groups that exceed their allowance — these fail CI.
    /// When a group exceeds, *all* its findings are listed (line numbers
    /// drift, so no single finding can be called "the new one").
    pub fresh: Vec<Finding>,
    /// Findings covered by the baseline.
    pub grandfathered: Vec<Finding>,
    /// Groups whose counts shrank (fix committed, baseline not updated).
    pub stale: Vec<StaleEntry>,
}

/// Compare `findings` against `baseline` per `(rule, path)` group.
pub fn gate(findings: &[Finding], baseline: &Baseline) -> GateResult {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups
            .entry((f.rule.clone(), f.path.clone()))
            .or_default()
            .push(f.clone());
    }
    let allowance: BTreeMap<(&str, &str), u32> = baseline
        .grandfathered
        .iter()
        .map(|e| ((e.rule.as_str(), e.path.as_str()), e.count))
        .collect();

    let mut result = GateResult::default();
    for ((rule, path), group) in &groups {
        let allowed = allowance
            .get(&(rule.as_str(), path.as_str()))
            .copied()
            .unwrap_or(0);
        let actual = group.len() as u32;
        if actual > allowed {
            result.fresh.extend(group.iter().cloned());
        } else {
            result.grandfathered.extend(group.iter().cloned());
            if actual < allowed {
                result.stale.push(StaleEntry {
                    rule: rule.clone(),
                    path: path.clone(),
                    allowed,
                    actual,
                });
            }
        }
    }
    // Baseline groups with zero current findings are also stale.
    for e in &baseline.grandfathered {
        if !groups.contains_key(&(e.rule.clone(), e.path.clone())) && e.count > 0 {
            result.stale.push(StaleEntry {
                rule: e.rule.clone(),
                path: e.path.clone(),
                allowed: e.count,
                actual: 0,
            });
        }
    }
    result
        .stale
        .sort_by(|a, b| (&a.rule, &a.path).cmp(&(&b.rule, &b.path)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, path: &str, line: u32) -> Finding {
        Finding::new(rule, path, line, "m")
    }

    #[test]
    fn new_findings_fail_and_grandfathered_pass() {
        let baseline = Baseline::from_findings(&[f("L001", "a.rs", 1)], None);
        // Same count: passes.
        let r = gate(&[f("L001", "a.rs", 5)], &baseline);
        assert!(r.fresh.is_empty());
        assert_eq!(r.grandfathered.len(), 1);
        assert!(r.stale.is_empty());
        // One more in the same file: the whole group is reported fresh.
        let r = gate(&[f("L001", "a.rs", 5), f("L001", "a.rs", 9)], &baseline);
        assert_eq!(r.fresh.len(), 2);
        // A different file: fresh even though the rule is baselined
        // elsewhere.
        let r = gate(&[f("L001", "b.rs", 1)], &baseline);
        assert_eq!(r.fresh.len(), 1);
    }

    #[test]
    fn shrunken_and_vanished_groups_are_stale() {
        let baseline = Baseline::from_findings(
            &[
                f("L001", "a.rs", 1),
                f("L001", "a.rs", 2),
                f("L003", "b.rs", 3),
            ],
            None,
        );
        let r = gate(&[f("L001", "a.rs", 1)], &baseline);
        assert!(r.fresh.is_empty());
        assert_eq!(r.stale.len(), 2);
        assert_eq!((r.stale[0].allowed, r.stale[0].actual), (2, 1));
        assert_eq!((r.stale[1].allowed, r.stale[1].actual), (1, 0));
    }

    #[test]
    fn baseline_round_trips_through_json_sorted() {
        let b = Baseline::from_findings(
            &[
                f("L003", "z.rs", 1),
                f("L001", "a.rs", 1),
                f("L001", "a.rs", 9),
            ],
            Some(SchemaRecord {
                schema_version: 2,
                fingerprint: "abcd".into(),
            }),
        );
        assert_eq!(b.grandfathered[0].rule, "L001");
        assert_eq!(b.grandfathered[0].count, 2);
        assert_eq!(b.rule_total("L001"), 2);
        let back: Baseline =
            serde_json::from_str(&serde_json::to_string(&b).expect("serialize")).expect("parse");
        assert_eq!(back, b);
        // The pretty form parses back to the same value too.
        let pretty = b.render_pretty().expect("render");
        let back: Baseline = serde_json::from_str(&pretty).expect("parse pretty");
        assert_eq!(back, b);
        // One grandfathered entry per line (diff-friendly).
        assert_eq!(
            pretty.lines().filter(|l| l.contains("\"rule\"")).count(),
            b.grandfathered.len()
        );
    }
}
