//! A small Rust lexer: just enough token structure for invariant rules.
//!
//! The rules in this crate match on *token* patterns (`.` `unwrap` `(`,
//! `Instant` `::` `now`, …), so the lexer's one job is to never confuse
//! code with non-code: it skips line comments, nested block comments,
//! string / char / byte / raw-string literals (including `r##"…"##` with
//! any number of hashes), and distinguishes lifetimes from char literals.
//! Comments are preserved separately because suppressions
//! (`// hetmmm-lint: allow(L00X) <reason>`) live in them.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `EventKind`, …).
    Ident,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`); `text` holds the raw
    /// contents between the delimiters, escapes untouched.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name without the
    /// leading quote.
    Lifetime,
    /// A numeric literal; `text` holds the raw spelling.
    Num,
    /// A single punctuation character; `text` holds that character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stored per kind).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// One comment (line or block) with the 1-based line it starts on.
/// `text` excludes the comment delimiters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: u32,
    /// Comment body without delimiters.
    pub text: String,
}

/// The lexer's output: code tokens plus the comments that were skipped.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order (suppressions are parsed from these).
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize `src`. Total: one pass, no allocation beyond the token texts.
/// Unterminated literals/comments end at end-of-file rather than erroring —
/// the compiler is the authority on malformed source, not the linter.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&b[start..j]).into_owned(),
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment with nesting, per the Rust grammar.
                let comment_line = line;
                let start = i + 2;
                let mut j = start;
                let mut depth = 1u32;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: comment_line,
                    text: String::from_utf8_lossy(&b[start..end]).into_owned(),
                });
                i = j;
            }
            b'"' => {
                let (tok, next, nl) = lex_string(b, i, line);
                out.tokens.push(tok);
                i = next;
                line += nl;
            }
            b'r' | b'b' => {
                // Raw strings, byte strings, byte chars, raw idents — or a
                // plain identifier that merely starts with r/b.
                if let Some((tok, next, nl)) = lex_r_or_b(b, i, line) {
                    out.tokens.push(tok);
                    i = next;
                    line += nl;
                } else {
                    let (tok, next) = lex_ident(b, i, line);
                    out.tokens.push(tok);
                    i = next;
                }
            }
            b'\'' => {
                let (tok, next, nl) = lex_quote(b, i, line);
                out.tokens.push(tok);
                i = next;
                line += nl;
            }
            _ if is_ident_start(c) => {
                let (tok, next) = lex_ident(b, i, line);
                out.tokens.push(tok);
                i = next;
            }
            _ if c.is_ascii_digit() => {
                let (tok, next) = lex_number(b, i, line);
                out.tokens.push(tok);
                i = next;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Lex a `"…"` string starting at `b[i] == '"'`. Returns the token, the
/// index past the closing quote, and the newlines consumed.
fn lex_string(b: &[u8], i: usize, line: u32) -> (Tok, usize, u32) {
    let start = i + 1;
    let mut j = start;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2, // skip the escaped character, whatever it is
            b'"' => break,
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let end = j.min(b.len());
    let tok = Tok {
        kind: TokKind::Str,
        text: String::from_utf8_lossy(&b[start..end]).into_owned(),
        line,
    };
    (tok, (j + 1).min(b.len()), nl)
}

/// Try to lex a raw string / byte string / byte char / raw ident starting
/// at `b[i]` being `r` or `b`. Returns `None` when it is just an ident.
fn lex_r_or_b(b: &[u8], i: usize, line: u32) -> Option<(Tok, usize, u32)> {
    let c = b[i];
    // Longest-prefix probe: r" r#" br" br#" b" b' r#ident
    let mut j = i + 1;
    if c == b'b' && b.get(j) == Some(&b'r') {
        j += 1; // br…
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match b.get(j) {
        Some(&b'"') if c == b'r' || j > i + 1 => {
            // Raw (byte) string: contents until `"` + `hashes` hashes.
            let start = j + 1;
            let mut k = start;
            let mut nl = 0u32;
            while k < b.len() {
                if b[k] == b'"'
                    && b[k + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    let tok = Tok {
                        kind: TokKind::Str,
                        text: String::from_utf8_lossy(&b[start..k]).into_owned(),
                        line,
                    };
                    return Some((tok, k + 1 + hashes, nl));
                }
                if b[k] == b'\n' {
                    nl += 1;
                }
                k += 1;
            }
            let tok = Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&b[start..]).into_owned(),
                line,
            };
            Some((tok, b.len(), nl))
        }
        Some(&b'"') => {
            // b"…": plain byte string (no hashes, c == 'b').
            let (mut tok, next, nl) = lex_string(b, j, line);
            tok.kind = TokKind::Str;
            Some((tok, next, nl))
        }
        Some(&b'\'') if c == b'b' && hashes == 0 && j == i + 1 => {
            // b'x' byte char.
            let (tok, next, nl) = lex_quote(b, j, line);
            Some((tok, next, nl))
        }
        Some(&ch) if hashes == 1 && c == b'r' && is_ident_start(ch) => {
            // r#ident raw identifier. Keep the `r#` spelling: a raw
            // identifier is *never* a keyword, so `r#match`/`r#fn` must
            // not satisfy `is_ident("match")` — the item-tree builder
            // treats keyword idents structurally and would otherwise be
            // spoofed into parsing `let r#match = …` as a match
            // expression.
            let (mut tok, next) = lex_ident(b, j, line);
            tok.text.insert_str(0, "r#");
            Some((tok, next, 0))
        }
        _ => None,
    }
}

/// Lex `'…'` as a char literal or a lifetime, starting at `b[i] == '\''`.
fn lex_quote(b: &[u8], i: usize, line: u32) -> (Tok, usize, u32) {
    let next = b.get(i + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: skip to the closing quote, starting at
            // the backslash so the escaped character (possibly `'`) is
            // consumed by the escape, not read as the terminator.
            let mut j = i + 1;
            while j < b.len() && b[j] != b'\'' {
                j += if b[j] == b'\\' { 2 } else { 1 };
            }
            let tok = Tok {
                kind: TokKind::Char,
                text: String::from_utf8_lossy(&b[i + 1..j.min(b.len())]).into_owned(),
                line,
            };
            (tok, (j + 1).min(b.len()), 0)
        }
        Some(ch) => {
            // Decode one UTF-8 scalar; a closing quote right after it means
            // a char literal, anything else means a lifetime.
            let width = utf8_width(ch);
            if b.get(i + 1 + width) == Some(&b'\'') {
                let tok = Tok {
                    kind: TokKind::Char,
                    text: String::from_utf8_lossy(&b[i + 1..i + 1 + width]).into_owned(),
                    line,
                };
                (tok, i + 2 + width, 0)
            } else if is_ident_start(ch) {
                let (mut tok, next) = lex_ident(b, i + 1, line);
                tok.kind = TokKind::Lifetime;
                (tok, next, 0)
            } else {
                // Stray quote: emit as punct and move on.
                let tok = Tok {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line,
                };
                (tok, i + 1, 0)
            }
        }
        None => (
            Tok {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            },
            i + 1,
            0,
        ),
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn lex_ident(b: &[u8], i: usize, line: u32) -> (Tok, usize) {
    let mut j = i;
    while j < b.len() && is_ident_continue(b[j]) {
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Ident,
            text: String::from_utf8_lossy(&b[i..j]).into_owned(),
            line,
        },
        j,
    )
}

fn lex_number(b: &[u8], i: usize, line: u32) -> (Tok, usize) {
    let mut j = i;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    // One fractional part, only if a digit follows the dot (so `0..3`
    // stays three tokens: `0`, `.`, `.`, `3`).
    if j < b.len() && b[j] == b'.' && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
        j += 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
    }
    (
        Tok {
            kind: TokKind::Num,
            text: String::from_utf8_lossy(&b[i..j]).into_owned(),
            line,
        },
        j,
    )
}

/// Per-token flag: is this token inside a test region?
///
/// Test regions are: the item following `#[test]` or any attribute that
/// mentions both `cfg` and `test` (`#[cfg(test)]`, `#[cfg(any(test, …))]`),
/// and any `mod tests { … }` block regardless of attributes. The region
/// extends to the item's matched `{…}` body or its terminating `;`.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = parse_attr(tokens, i + 1);
            if is_test {
                let end = item_end(tokens, attr_end + 1);
                for flag in mask.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
            } else {
                i = attr_end + 1;
            }
            continue;
        }
        if tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let end = match_brace(tokens, i + 2);
            for flag in mask.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Parse an attribute whose `[` is at `open`. Returns the index of the
/// matching `]` and whether the attribute marks a test region.
fn parse_attr(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            idents.push(&t.text);
        }
        j += 1;
    }
    let is_test = idents == ["test"] || (idents.contains(&"cfg") && idents.contains(&"test"));
    (j.min(tokens.len().saturating_sub(1)), is_test)
}

/// From `from` (just past a test attribute), find the index of the token
/// ending the annotated item: the matching `}` of its first body, or a
/// top-level `;`, whichever comes first. Intervening attributes are
/// skipped.
fn item_end(tokens: &[Tok], from: usize) -> usize {
    let mut j = from;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('#') && tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, _) = parse_attr(tokens, j + 1);
            j = attr_end + 1;
            continue;
        }
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return j;
            }
            if t.is_punct('{') {
                return match_brace(tokens, j);
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open` (last token if unclosed).
fn match_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn block_comment_newlines_advance_the_line_counter() {
        let src = "/* one\ntwo\nthree */ x";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].text, "x");
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        let src = r####"let s = r##"unwrap() "# not the end"##; done"####;
        let lexed = lex(src);
        let strs: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r##"unwrap() "# not the end"##);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
        // `unwrap` must not surface as an identifier.
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn line_comment_delimiters_inside_string_literals_are_content() {
        let src = "let url = \"https://example.com\"; after";
        let lexed = lex(src);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone());
        assert_eq!(s.as_deref(), Some("https://example.com"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn escaped_quotes_and_backslashes_stay_inside_the_string() {
        let src = r#"f("a \" b \\"); g"#;
        assert_eq!(idents(src), ["f", "g"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = 'x'; let n = '\\n'; let q = '\\''; fn f<'a>(v: &'static str) {}";
        let lexed = lex(src);
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x", "\\n", "\\'"]);
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "static"]);
    }

    #[test]
    fn multibyte_char_literal_is_not_a_lifetime() {
        let src = "let c = '\u{1f980}'; x";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"bytes\"; let c = b'x'; let r = br#\"raw\"#; end";
        let lexed = lex(src);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["bytes", "raw"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("end")));
    }

    #[test]
    fn raw_identifiers_keep_their_raw_spelling() {
        // `r#type` is an identifier, but it is NOT the keyword `type`:
        // the `r#` prefix must survive so keyword-position analysis
        // (the item tree) cannot be spoofed.
        let src = "let r#type = 1; r#fn";
        let ids = idents(src);
        assert!(ids.contains(&"r#type".to_string()), "{ids:?}");
        assert!(ids.contains(&"r#fn".to_string()), "{ids:?}");
        assert!(!ids.contains(&"type".to_string()), "{ids:?}");
        assert!(!ids.contains(&"fn".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_keyword_identifiers_do_not_fake_keywords() {
        // `r#match`/`r#mod` in binding position must not look like the
        // `match`/`mod` keywords to downstream structure parsers.
        let src = "let r#match = 1; let r#mod = 2; match x { _ => r#match }";
        let lexed = lex(src);
        let matches: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("match"))
            .collect();
        assert_eq!(matches.len(), 1, "only the real keyword remains");
        assert_eq!(matches[0].line, 1);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("mod")));
    }

    #[test]
    fn lifetimes_inside_generics_are_not_char_literals() {
        // Every position a lifetime tick appears in generic syntax; none
        // may lex as a Char, and the following `>` must stay a Punct.
        let cases = [
            ("fn f<'a>(x: &'a u8) -> &'a u8 { x }", vec!["a", "a", "a"]),
            (
                "struct S<'a, 'b: 'a>(&'a u8, &'b u8);",
                vec!["a", "b", "a", "a", "b"],
            ),
            ("impl<'a> Tr for &'a mut T {}", vec!["a", "a"]),
            (
                "let x = f::<'a>(); type T = Box<dyn Fn() + 'static>;",
                vec!["a", "static"],
            ),
            ("fn g(v: Vec<Option<&'_ str>>) {}", vec!["_"]),
            (
                "'outer: for k in 0..n { break 'outer; }",
                vec!["outer", "outer"],
            ),
        ];
        for (src, want) in cases {
            let lexed = lex(src);
            assert!(
                !lexed.tokens.iter().any(|t| t.kind == TokKind::Char),
                "{src}: lifetime lexed as char literal"
            );
            let got: Vec<&str> = lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .map(|t| t.text.as_str())
                .collect();
            assert_eq!(got, want, "{src}");
        }
        // Chars adjacent to generics stay chars.
        let lexed = lex("fn h<'a>(c: char) -> bool { c == 'x' }");
        let chars: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x"]);
    }

    #[test]
    fn numbers_do_not_swallow_range_operators() {
        let src = "for i in 0..3 { } 1.5 0x1f 1_000 1e9";
        let lexed = lex(src);
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "3", "1.5", "0x1f", "1_000", "1e9"]);
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "one\ntwo three\n\nfour";
        let lexed = lex(src);
        let lines: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(
            lines,
            [
                ("one".to_string(), 1),
                ("two".to_string(), 2),
                ("three".to_string(), 2),
                ("four".to_string(), 4),
            ]
        );
    }

    #[test]
    fn cfg_test_module_boundaries_are_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn also_live() { z.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        for (t, &m) in lexed.tokens.iter().zip(&mask) {
            match t.text.as_str() {
                "x" | "z" | "live" | "also_live" => assert!(!m, "{} wrongly masked", t.text),
                "y" | "t" | "tests" => assert!(m, "{} not masked", t.text),
                _ => {}
            }
        }
    }

    #[test]
    fn test_fn_attribute_masks_only_that_function() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        for (t, &m) in lexed.tokens.iter().zip(&mask) {
            match t.text.as_str() {
                "a" | "check" => assert!(m),
                "b" | "live" => assert!(!m),
                _ => {}
            }
        }
    }

    #[test]
    fn bare_mod_tests_is_masked_without_cfg_attribute() {
        let src = "mod tests { fn t() { a.unwrap(); } }\nfn live() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let a = lexed.tokens.iter().position(|t| t.is_ident("a"));
        let live = lexed.tokens.iter().position(|t| t.is_ident("live"));
        assert!(mask[a.expect("a token")]);
        assert!(!mask[live.expect("live token")]);
    }

    #[test]
    fn cfg_any_including_test_is_masked() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { a.unwrap(); }\nfn live() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let a = lexed.tokens.iter().position(|t| t.is_ident("a"));
        assert!(mask[a.expect("a token")]);
        let live = lexed.tokens.iter().position(|t| t.is_ident("live"));
        assert!(!mask[live.expect("live token")]);
    }

    #[test]
    fn cfg_test_on_use_item_masks_to_semicolon_only() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() { a.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let fmt = lexed.tokens.iter().position(|t| t.is_ident("fmt"));
        assert!(mask[fmt.expect("fmt token")]);
        let a = lexed.tokens.iter().position(|t| t.is_ident("a"));
        assert!(!mask[a.expect("a token")]);
    }

    #[test]
    fn attribute_with_brackets_in_args_does_not_derail_masking() {
        let src = "#[doc = \"see [link]\"]\nfn live() { a.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn function_with_braces_in_signature_defaults_still_masks_body() {
        // A where-clause with Fn(..) parens before the body brace.
        let src = "#[test]\nfn f<F>(g: F) where F: Fn(u8) -> [u8; 2] { a.unwrap(); }\nfn live() { b.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let a = lexed.tokens.iter().position(|t| t.is_ident("a"));
        assert!(mask[a.expect("a token")]);
        let b = lexed.tokens.iter().position(|t| t.is_ident("b"));
        assert!(!mask[b.expect("b token")]);
    }
}
