//! Findings, suppression comments, and report rendering.
//!
//! A [`Finding`] is one rule violation at one source line. Findings are
//! serialized to JSONL (one record per line, in the obs record style) for
//! machine consumption and rendered as `path:line rule message` for
//! humans. Inline suppressions use the comment form
//! `// hetmmm-lint: allow(L001) <reason>` and apply to the comment's own
//! line and the line directly below it; a suppression without a reason
//! does not suppress and is itself reported as rule L000.

use crate::lexer::Comment;
use serde::{Deserialize, Serialize};

/// Rule id of the meta-rule "suppression comment carries no reason".
pub const RULE_SUPPRESSION_REASON: &str = "L000";

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule id, e.g. `L001`.
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Construct with the conventional field order.
    pub fn new(rule: &str, path: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// The JSONL record written to `results/lint_findings.jsonl`: a finding
/// plus its gate status after baseline comparison.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FindingRecord {
    /// The finding itself.
    pub finding: Finding,
    /// `"fresh"` (fails the gate) or `"grandfathered"` (covered by the
    /// committed baseline).
    pub status: String,
}

/// One parsed inline suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule ids listed in `allow(…)`.
    pub rules: Vec<String>,
    /// Did the comment carry a non-empty reason after the `allow(…)`?
    pub has_reason: bool,
}

/// Parse every suppression out of a file's comments.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("hetmmm-lint:") else {
            continue;
        };
        let rest = c.text[at + "hetmmm-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if rules.is_empty() {
            continue;
        }
        let reason = args[close + 1..].trim();
        out.push(Suppression {
            line: c.line,
            rules,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Apply suppressions to a file's findings: remove suppressed ones, count
/// them, and add an L000 finding for each reason-less suppression.
///
/// A suppression on line `L` covers findings on lines `L` and `L + 1`, so
/// both trailing comments and a comment directly above the offending line
/// work.
pub fn apply_suppressions(
    findings: &mut Vec<Finding>,
    suppressions: &[Suppression],
    path: &str,
) -> usize {
    let suppressed = suppress_matching(findings, suppressions);
    for s in suppressions {
        if !s.has_reason {
            findings.push(Finding::new(
                RULE_SUPPRESSION_REASON,
                path,
                s.line,
                format!(
                    "suppression allow({}) carries no reason; add one after the closing paren",
                    s.rules.join(",")
                ),
            ));
        }
    }
    suppressed
}

/// Remove findings covered by `suppressions` and return how many were
/// removed — [`apply_suppressions`] without the L000 side effect, for
/// applying a file's suppressions a second time to late cross-file
/// findings anchored at that file (the L000s were already emitted in the
/// main per-file pass).
pub fn suppress_matching(findings: &mut Vec<Finding>, suppressions: &[Suppression]) -> usize {
    let before = findings.len();
    findings.retain(|f| {
        !suppressions.iter().any(|s| {
            s.has_reason && s.rules.contains(&f.rule) && (s.line == f.line || s.line + 1 == f.line)
        })
    });
    before - findings.len()
}

/// Render findings as `path:line: rule message`, one per line, sorted.
pub fn render_text(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!(
            "{}:{}: {} {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn suppression_parses_rules_and_reason() {
        let lexed =
            lex("x(); // hetmmm-lint: allow(L001, L003) legacy path, tracked in baseline\n");
        let sup = parse_suppressions(&lexed.comments);
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].rules, ["L001", "L003"]);
        assert!(sup[0].has_reason);
        assert_eq!(sup[0].line, 1);
    }

    #[test]
    fn suppression_without_reason_becomes_l000() {
        let lexed = lex("// hetmmm-lint: allow(L001)\n");
        let sup = parse_suppressions(&lexed.comments);
        assert!(!sup[0].has_reason);
        let mut findings = vec![Finding::new("L001", "f.rs", 2, "unwrap")];
        let n = apply_suppressions(&mut findings, &sup, "f.rs");
        assert_eq!(n, 0, "reason-less suppression must not suppress");
        assert!(findings.iter().any(|f| f.rule == RULE_SUPPRESSION_REASON));
        assert!(findings.iter().any(|f| f.rule == "L001"));
    }

    #[test]
    fn suppression_covers_same_line_and_next_line_only() {
        let lexed = lex("// hetmmm-lint: allow(L001) known-infallible decode\n");
        let sup = parse_suppressions(&lexed.comments);
        let mut findings = vec![
            Finding::new("L001", "f.rs", 1, "same line"),
            Finding::new("L001", "f.rs", 2, "next line"),
            Finding::new("L001", "f.rs", 3, "too far"),
            Finding::new("L002", "f.rs", 2, "different rule"),
        ];
        let n = apply_suppressions(&mut findings, &sup, "f.rs");
        assert_eq!(n, 2);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.line == 3));
        assert!(findings.iter().any(|f| f.rule == "L002"));
    }

    #[test]
    fn text_rendering_is_sorted_and_stable() {
        let findings = vec![
            Finding::new("L003", "b.rs", 9, "println"),
            Finding::new("L001", "a.rs", 2, "unwrap"),
        ];
        let text = render_text(&findings);
        let first = text.lines().next();
        assert_eq!(first, Some("a.rs:2: L001 unwrap"));
    }

    #[test]
    fn finding_records_round_trip_through_json() {
        let rec = FindingRecord {
            finding: Finding::new(
                "L001",
                "crates/x/src/lib.rs",
                7,
                ".unwrap() in library code",
            ),
            status: "fresh".to_string(),
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: FindingRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rec);
    }
}
