//! AST-lite item tree: brace-matched structure over the token stream.
//!
//! The per-file rules (L001–L005) match flat token patterns; the semantic
//! rules added in this layer (L020–L023) need *structure*: which enum
//! variants exist, which `match` arms name them, whether a call site sits
//! inside a retry loop, whether `HetmmmError::X { … }` is a construction
//! or a pattern. This module builds just enough of that structure from
//! the existing lexer — items (modules, fns, impls, enums, use paths),
//! match expressions with their arms, pattern exclusion zones, and loop
//! blocks — with no external parser.
//!
//! The parse is forgiving by design: anything it cannot shape is skipped,
//! never an error. `rustc` is the authority on malformed source; the item
//! tree only has to be right about code that compiles.

use crate::lexer::{Tok, TokKind};

/// What kind of item a tree node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `fn name(…) { … }` (including `const fn` / `async fn` / trait fns)
    Fn,
    /// `impl … { … }`
    Impl,
    /// `struct Name …`
    Struct,
    /// `enum Name { … }`
    Enum,
    /// `trait Name { … }`
    Trait,
    /// `use path::to::thing;`
    Use,
    /// `const NAME: T = …;`
    Const,
    /// `static NAME: T = …;`
    Static,
    /// `type Name = …;`
    TypeAlias,
}

/// One item with its location and (token-index) body extent.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name; rendered path for `use`, impl target path for `impl`.
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Token-index range `(open, close)` of the `{ … }` body, when any.
    pub body: Option<(usize, usize)>,
    /// Nested items (populated for `mod name { … }` bodies).
    pub children: Vec<Item>,
}

/// The item tree of one file.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Parse the top-level items of a token stream.
    pub fn parse(toks: &[Tok]) -> ItemTree {
        ItemTree {
            items: parse_items(toks, 0, toks.len()),
        }
    }

    /// Depth-first iterator over every item, nested ones included.
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn rec<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for item in items {
                out.push(item);
                rec(&item.children, out);
            }
        }
        rec(&self.items, &mut out);
        out
    }

    /// Every `use` path in the tree, with its line.
    pub fn use_paths(&self) -> Vec<(String, u32)> {
        self.walk()
            .into_iter()
            .filter(|i| i.kind == ItemKind::Use)
            .map(|i| (i.name.clone(), i.line))
            .collect()
    }
}

/// Item keywords the parser recognizes (after visibility/modifiers).
fn item_kind(text: &str) -> Option<ItemKind> {
    Some(match text {
        "mod" => ItemKind::Mod,
        "fn" => ItemKind::Fn,
        "impl" => ItemKind::Impl,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "trait" => ItemKind::Trait,
        "use" => ItemKind::Use,
        "static" => ItemKind::Static,
        "type" => ItemKind::TypeAlias,
        _ => return None,
    })
}

fn parse_items(toks: &[Tok], from: usize, to: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = from;
    while i < to {
        let t = &toks[i];
        // Attributes (outer and inner): skip the bracket group.
        if t.is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                i = skip_group(toks, j, '[', ']').min(to) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        // Visibility and modifiers before the item keyword.
        if t.is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct('(')) {
                i = skip_group(toks, i, '(', ')').min(to) + 1;
            }
            continue;
        }
        if t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("default") {
            i += 1;
            continue;
        }
        if t.is_ident("extern") {
            // `extern "C" fn` modifier or `extern crate x;` item.
            if toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Str) {
                i += 2;
            } else {
                i = stmt_end(toks, i + 1, to) + 1;
            }
            continue;
        }
        if t.is_ident("const") {
            // `const fn` is a fn; `const NAME: T = …;` is a const item.
            if toks.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
                i += 1;
                continue;
            }
            let name = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            let end = stmt_end(toks, i + 1, to);
            items.push(Item {
                kind: ItemKind::Const,
                name,
                line: t.line,
                body: None,
                children: Vec::new(),
            });
            i = end + 1;
            continue;
        }
        if let (TokKind::Ident, Some(kind)) = (t.kind, item_kind(&t.text)) {
            let (item, next) = parse_item(toks, i, to, kind);
            items.push(item);
            i = next;
            continue;
        }
        // Anything else at item position (macro invocation, stray token):
        // advance one token; brace groups are skipped wholesale so their
        // contents cannot masquerade as items.
        if t.is_punct('{') {
            i = skip_group(toks, i, '{', '}').min(to) + 1;
        } else {
            i += 1;
        }
    }
    items
}

fn parse_item(toks: &[Tok], kw: usize, to: usize, kind: ItemKind) -> (Item, usize) {
    let line = toks[kw].line;
    let name = match kind {
        ItemKind::Impl => render_path(toks, kw + 1, to),
        ItemKind::Use => render_path(toks, kw + 1, to),
        _ => toks
            .get(kw + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default(),
    };
    // Find the body `{` (at paren/bracket depth 0) or the terminating `;`.
    let mut j = kw + 1;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut body = None;
    while j < to {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                body = Some((j, skip_group(toks, j, '{', '}').min(to.saturating_sub(1))));
                break;
            }
        }
        j += 1;
    }
    let children = match (kind, body) {
        (ItemKind::Mod, Some((open, close))) => parse_items(toks, open + 1, close),
        _ => Vec::new(),
    };
    let next = match body {
        Some((_, close)) => close + 1,
        None => j + 1,
    };
    (
        Item {
            kind,
            name,
            line,
            body,
            children,
        },
        next,
    )
}

/// Render the tokens of a path-ish header (`use` target, `impl` subject)
/// up to `{`, `;`, or `for`/`where`, as a compact string.
fn render_path(toks: &[Tok], from: usize, to: usize) -> String {
    let mut out = String::new();
    for t in toks.iter().take(to).skip(from) {
        if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") || t.is_ident("for") {
            break;
        }
        match t.kind {
            TokKind::Ident | TokKind::Num => {
                if out.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push_str(&t.text);
            }
            TokKind::Punct => out.push_str(&t.text),
            _ => {}
        }
    }
    out
}

/// Index of the closing delimiter matching the opener at `open`.
fn skip_group(toks: &[Tok], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// First `;` at delimiter depth 0 from `from` (or `to - 1`).
fn stmt_end(toks: &[Tok], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(to).skip(from) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            return j;
        }
    }
    to.saturating_sub(1)
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct Arm {
    /// Token-index range of the pattern (guard included), inclusive start,
    /// exclusive end (the `=>`).
    pub pat: (usize, usize),
    /// Token-index range of the arm body, inclusive start, inclusive end.
    pub body: (usize, usize),
    /// 1-based line of the pattern's first token.
    pub line: u32,
}

/// One `match` expression with its arms.
#[derive(Clone, Debug)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// Every `match` expression in the token stream (nested ones included —
/// each is parsed from its own `match` keyword independently).
pub fn match_exprs(toks: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("match") || toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            continue;
        }
        // A method/field named `match` is impossible (`r#match` keeps its
        // prefix), but `.match` after a macro edge-case is cheap to skip.
        if i > 0 && toks[i - 1].is_punct('.') {
            continue;
        }
        // Body `{` at paren/bracket depth 0: struct literals are forbidden
        // in scrutinee position, so the first top-level brace is the body.
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = skip_group(toks, open, '{', '}');
        out.push(MatchExpr {
            line: t.line,
            arms: parse_arms(toks, open + 1, close),
        });
    }
    out
}

fn parse_arms(toks: &[Tok], from: usize, to: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = from;
    while i < to {
        // Skip leading commas and attributes between arms.
        if toks[i].is_punct(',') {
            i += 1;
            continue;
        }
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i = skip_group(toks, i + 1, '[', ']') + 1;
            continue;
        }
        let pat_start = i;
        // Find the `=>` at depth 0 relative to the arm.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < to {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0
                && t.is_punct('=')
                && toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
            {
                arrow = Some(j);
                break;
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let body_start = arrow + 2;
        if body_start >= to {
            break;
        }
        // Arm body: a block ends at its matching brace; an expression ends
        // at the first `,` at depth 0 (or the match's closing brace).
        let body_end = if toks[body_start].is_punct('{') {
            skip_group(toks, body_start, '{', '}').min(to.saturating_sub(1))
        } else {
            let mut depth = 0i32;
            let mut k = body_start;
            let mut end = to.saturating_sub(1);
            while k < to {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    end = k.saturating_sub(1);
                    break;
                }
                k += 1;
            }
            end.min(to.saturating_sub(1))
        };
        arms.push(Arm {
            pat: (pat_start, arrow),
            body: (body_start, body_end),
            line: toks[pat_start].line,
        });
        i = body_end + 1;
    }
    arms
}

/// Per-token flag: is this token in *pattern position* — inside a match
/// arm's pattern (guard included), a `let`/`if let`/`while let` pattern,
/// or a `for` loop pattern? Used to tell constructions (`Error::X { … }`
/// as an expression) from destructurings (the same tokens as a pattern).
pub fn pattern_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    for m in match_exprs(toks) {
        for arm in &m.arms {
            for flag in mask.iter_mut().take(arm.pat.1).skip(arm.pat.0) {
                *flag = true;
            }
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("let") {
            // Pattern runs to the `=` (binding) or `;`/`{` at depth 0.
            let mut depth = 0i32;
            for (j, n) in toks.iter().enumerate().skip(i + 1) {
                if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
                    // A struct-pattern brace (`let E::A { x } = …`) always
                    // follows a path ident; any other depth-0 brace means
                    // we overran into a block (malformed) — stop.
                    if n.is_punct('{')
                        && depth == 0
                        && !toks
                            .get(j.wrapping_sub(1))
                            .is_some_and(|p| matches!(p.kind, TokKind::Ident) && !p.is_ident("let"))
                    {
                        break;
                    }
                    depth += 1;
                } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 {
                    if n.is_punct('=') && !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                        for flag in mask.iter_mut().take(j).skip(i + 1) {
                            *flag = true;
                        }
                        break;
                    }
                    if n.is_punct(';') {
                        for flag in mask.iter_mut().take(j).skip(i + 1) {
                            *flag = true;
                        }
                        break;
                    }
                }
            }
        }
        if t.is_ident("for") {
            // `for PAT in …` — but not `impl Trait for Type`. A loop has
            // an `in` at depth 0 before any `{`.
            let mut depth = 0i32;
            for (j, n) in toks.iter().enumerate().skip(i + 1) {
                if n.is_punct('(') || n.is_punct('[') {
                    depth += 1;
                } else if n.is_punct(')') || n.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 {
                    if n.is_ident("in") {
                        for flag in mask.iter_mut().take(j).skip(i + 1) {
                            *flag = true;
                        }
                        break;
                    }
                    if n.is_punct('{') || n.is_punct(';') {
                        break;
                    }
                }
                if j > i + 64 {
                    break; // not a loop header
                }
            }
        }
    }
    mask
}

/// What kind of loop a [`LoopBlock`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// `loop { … }`
    Loop,
    /// `while cond { … }` / `while let … { … }`
    While,
    /// `for pat in iter { … }`
    For,
}

/// One loop with its body extent and, for `for` loops with a simple
/// variable pattern, the loop variable.
#[derive(Clone, Debug)]
pub struct LoopBlock {
    /// Loop flavor.
    pub kind: LoopKind,
    /// The loop variable of `for var in …`, when the pattern is one ident.
    pub var: Option<String>,
    /// Token-index range `(open, close)` of the `{ … }` body.
    pub body: (usize, usize),
    /// 1-based line of the loop keyword.
    pub line: u32,
}

/// Every loop block in the token stream (nested included).
pub fn loop_blocks(toks: &[Tok]) -> Vec<LoopBlock> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let kind = if t.is_ident("loop") {
            LoopKind::Loop
        } else if t.is_ident("while") {
            LoopKind::While
        } else if t.is_ident("for") {
            LoopKind::For
        } else {
            continue;
        };
        let mut var = None;
        let mut open = None;
        match kind {
            LoopKind::Loop => {
                if toks.get(i + 1).is_some_and(|n| n.is_punct('{')) {
                    open = Some(i + 1);
                }
            }
            LoopKind::While => {
                // Condition has no top-level `{` (struct literals are
                // forbidden there), so the first depth-0 brace is the body.
                let mut depth = 0i32;
                for (j, n) in toks.iter().enumerate().skip(i + 1) {
                    if n.is_punct('(') || n.is_punct('[') {
                        depth += 1;
                    } else if n.is_punct(')') || n.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 {
                        if n.is_punct('{') {
                            open = Some(j);
                            break;
                        }
                        if n.is_punct(';') {
                            break;
                        }
                    }
                }
            }
            LoopKind::For => {
                // Require an `in` at depth 0 before the body brace —
                // otherwise this is `impl Trait for Type`.
                if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("in"))
                {
                    var = Some(toks[i + 1].text.clone());
                }
                let mut depth = 0i32;
                let mut saw_in = false;
                for (j, n) in toks.iter().enumerate().skip(i + 1) {
                    if n.is_punct('(') || n.is_punct('[') {
                        depth += 1;
                    } else if n.is_punct(')') || n.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 {
                        if n.is_ident("in") {
                            saw_in = true;
                        } else if n.is_punct('{') {
                            if saw_in {
                                open = Some(j);
                            }
                            break;
                        } else if n.is_punct(';') {
                            break;
                        }
                    }
                }
            }
        }
        let Some(open) = open else { continue };
        out.push(LoopBlock {
            kind,
            var,
            body: (open, skip_group(toks, open, '{', '}')),
            line: t.line,
        });
    }
    out
}

/// The variants of `enum name { … }`: `(variant_name, line)` pairs.
/// Returns `None` when no such enum exists in the stream.
pub fn enum_variants(toks: &[Tok], name: &str) -> Option<Vec<(String, u32)>> {
    let start = toks
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident(name))?;
    let open = (start..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let close = skip_group(toks, open, '{', '}');
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        // Skip attributes and doc comments are already gone; skip attrs.
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            i = skip_group(toks, i + 1, '[', ']') + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            out.push((t.text.clone(), t.line));
            // Skip the variant payload and trailing comma.
            i += 1;
            if toks.get(i).is_some_and(|n| n.is_punct('{')) {
                i = skip_group(toks, i, '{', '}') + 1;
            } else if toks.get(i).is_some_and(|n| n.is_punct('(')) {
                i = skip_group(toks, i, '(', ')') + 1;
            }
            // `= discriminant` for C-like enums.
            while i < close && !toks[i].is_punct(',') {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn items_parse_with_names_and_nesting() {
        let src = "
#![forbid(unsafe_code)]
use std::collections::BTreeMap;
pub mod outer {
    pub fn f(x: u8) -> u8 { x }
    pub(crate) struct S { a: u8 }
    impl S { fn m(&self) {} }
}
pub enum E { A, B(u8), C { x: u8 } }
const LIMIT: usize = 3;
pub const fn cf() {}
trait T { fn req(&self); }
type Alias = u8;
";
        let toks = lex(src).tokens;
        let tree = ItemTree::parse(&toks);
        let kinds: Vec<(ItemKind, &str)> = tree
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_str()))
            .collect();
        assert_eq!(
            kinds,
            [
                (ItemKind::Use, "std::collections::BTreeMap"),
                (ItemKind::Mod, "outer"),
                (ItemKind::Enum, "E"),
                (ItemKind::Const, "LIMIT"),
                (ItemKind::Fn, "cf"),
                (ItemKind::Trait, "T"),
                (ItemKind::TypeAlias, "Alias"),
            ]
        );
        let outer = &tree.items[1];
        let inner: Vec<(ItemKind, &str)> = outer
            .children
            .iter()
            .map(|i| (i.kind, i.name.as_str()))
            .collect();
        assert_eq!(
            inner,
            [
                (ItemKind::Fn, "f"),
                (ItemKind::Struct, "S"),
                (ItemKind::Impl, "S"),
            ]
        );
        assert_eq!(tree.use_paths().len(), 1);
    }

    #[test]
    fn raw_keyword_idents_do_not_become_items() {
        let src = "fn f() { let r#fn = 1; let r#mod = 2; }";
        let tree = ItemTree::parse(&lex(src).tokens);
        assert_eq!(tree.items.len(), 1);
        assert_eq!(tree.items[0].kind, ItemKind::Fn);
    }

    #[test]
    fn match_arms_split_on_fat_arrow_not_comparison() {
        let src = "
fn f(x: u8) -> u8 {
    match x {
        0 => 1,
        n if n >= 2 => { n + 1 }
        E::V { a, .. } => a,
        _ => 0,
    }
}
";
        let toks = lex(src).tokens;
        let ms = match_exprs(&toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 4);
        // The guard `n >= 2` stays inside the second arm's pattern range.
        let arm1 = &ms[0].arms[1];
        let pat_text: Vec<&str> = toks[arm1.pat.0..arm1.pat.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(pat_text.contains(&"if"), "{pat_text:?}");
        assert!(pat_text.contains(&">"), "{pat_text:?}");
    }

    #[test]
    fn nested_matches_are_each_found() {
        let src = "fn f() { match a { X => match b { Y => 1, _ => 2 }, _ => 0 } }";
        let ms = match_exprs(&lex(src).tokens);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].arms.len(), 2);
        assert_eq!(ms[1].arms.len(), 2);
    }

    #[test]
    fn pattern_mask_separates_patterns_from_constructions() {
        let src = "
fn f(e: E) -> E {
    match e {
        E::A { x } => E::B { x },
    }
}
fn g() { let E::A { x } = make(); if let E::C(y) = h() { } for (a, b) in pairs {} }
";
        let toks = lex(src).tokens;
        let mask = pattern_mask(&toks);
        // Collect mask status of each `E` ident in order.
        let es: Vec<bool> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("E"))
            .map(|(i, _)| mask[i])
            .collect();
        // fn sig `e: E` and `-> E` unmasked, arm pattern E::A masked, arm
        // body E::B unmasked, let-pattern E::A masked, if-let E::C masked.
        assert_eq!(es, [false, false, true, false, true, true]);
        // The for-loop pattern `(a, b)` is masked.
        let a = toks.iter().position(|t| t.is_ident("a")).unwrap();
        assert!(mask[a]);
    }

    #[test]
    fn loop_blocks_find_kind_var_and_body() {
        let src = "
fn f(n: usize) {
    for k in 0..n {
        loop { if k > 1 { break; } }
    }
    while n > 0 { step(); }
    for (i, v) in list.iter().enumerate() {}
}
impl Tr for S {}
";
        let toks = lex(src).tokens;
        let loops = loop_blocks(&toks);
        let kinds: Vec<(LoopKind, Option<&str>)> =
            loops.iter().map(|l| (l.kind, l.var.as_deref())).collect();
        assert_eq!(
            kinds,
            [
                (LoopKind::For, Some("k")),
                (LoopKind::Loop, None),
                (LoopKind::While, None),
                (LoopKind::For, None),
            ]
        );
        // `impl Tr for S` must not register as a for loop.
        assert_eq!(loops.iter().filter(|l| l.kind == LoopKind::For).count(), 2);
        // The inner loop's body is contained in the for's body.
        assert!(loops[1].body.0 > loops[0].body.0 && loops[1].body.1 < loops[0].body.1);
    }

    #[test]
    fn enum_variants_list_names_and_lines() {
        let src = "
pub enum HetmmmError {
    DimensionMismatch { what: &'static str, left: usize, right: usize },
    RectOutOfBounds { rect: Rect, n: usize },
    Plain,
    Tuple(u8, u8),
}
";
        let toks = lex(src).tokens;
        let vars = enum_variants(&toks, "HetmmmError").expect("enum");
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["DimensionMismatch", "RectOutOfBounds", "Plain", "Tuple"]
        );
        assert_eq!(vars[0].1, 3);
        assert!(enum_variants(&toks, "Missing").is_none());
    }
}
