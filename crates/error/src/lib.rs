//! # hetmmm-error
//!
//! The workspace-wide typed error enum. Public APIs that used to panic or
//! `expect` (the threaded executor, the DFA runner's checked entry points,
//! the partition builder) return [`HetmmmError`] instead, so callers can
//! distinguish misuse (dimension mismatches, out-of-bounds rectangles)
//! from runtime conditions (worker loss, search non-convergence) and react
//! — the executor's survivor re-partitioning being the flagship reaction.
//!
//! `thiserror` is not vendorable in this offline build, so the `Display`
//! and `Error` impls are written by hand in the same one-variant-one-message
//! style a `#[derive(Error)]` would generate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a DFA run stopped without reaching a fixed point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NonConvergence {
    /// The hard cap on applied pushes was exhausted.
    StepCapExhausted,
    /// The cap on consecutive VoC-neutral pushes was exhausted.
    ZeroDeltaCapExhausted,
}

impl fmt::Display for NonConvergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonConvergence::StepCapExhausted => write!(f, "step cap exhausted"),
            NonConvergence::ZeroDeltaCapExhausted => {
                write!(f, "zero-delta (VoC-neutral) cap exhausted")
            }
        }
    }
}

/// The workspace-wide error type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum HetmmmError {
    /// Two sizes that must agree do not (e.g. matrix vs matrix, matrix vs
    /// partition).
    DimensionMismatch {
        /// What was being compared (e.g. `"A vs B"`).
        what: String,
        /// Left-hand dimension.
        left: usize,
        /// Right-hand dimension.
        right: usize,
    },
    /// A rectangle exceeds the partition bounds.
    RectOutOfBounds {
        /// Display form of the offending rectangle.
        rect: String,
        /// The partition dimension it violates.
        n: usize,
    },
    /// A DFA run hit a safety cap instead of a fixed point.
    NonConverged {
        /// Which cap stopped the run.
        kind: NonConvergence,
        /// Pushes applied before the cap.
        steps: usize,
        /// VoC of the random start state.
        voc_initial: u64,
        /// VoC when the run was stopped.
        voc_final: u64,
    },
    /// A DFA run ended with a higher VoC than it started with — a bug in
    /// the push engine (checked even in release builds by the `*_checked`
    /// entry points).
    VocIncreased {
        /// VoC of the start state.
        voc_initial: u64,
        /// VoC of the final state.
        voc_final: u64,
    },
    /// A worker thread failed (crashed, hung past the timeout, or
    /// disappeared) during a partitioned multiply.
    WorkerFailure {
        /// `q`-encoding of the failed processor (0 = R, 1 = S, 2 = P).
        proc_q: u8,
        /// Pivot step at which the failure was detected, if known.
        step: Option<usize>,
        /// Human-readable detail (detection path, fault kind).
        detail: String,
    },
    /// Every worker failed; no survivor set remains to re-partition onto.
    NoSurvivors {
        /// Recovery attempts made before giving up.
        retries: u64,
    },
    /// An execution/config knob holds a value that can only hang or wedge
    /// the run (e.g. a zero receive timeout or zero channel capacity).
    /// Surfaced eagerly at entry instead of deadlocking later.
    InvalidConfig {
        /// The offending field, e.g. `"recv_timeout"`.
        field: String,
        /// Why the value is rejected.
        detail: String,
    },
}

impl HetmmmError {
    /// Convenience constructor for dimension mismatches.
    pub fn dimension_mismatch(what: &str, left: usize, right: usize) -> HetmmmError {
        HetmmmError::DimensionMismatch {
            what: what.to_string(),
            left,
            right,
        }
    }
}

impl fmt::Display for HetmmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetmmmError::DimensionMismatch { what, left, right } => {
                write!(f, "dimension mismatch ({what}): {left} != {right}")
            }
            HetmmmError::RectOutOfBounds { rect, n } => {
                write!(f, "rect {rect} out of bounds for n = {n}")
            }
            HetmmmError::NonConverged {
                kind,
                steps,
                voc_initial,
                voc_final,
            } => write!(
                f,
                "DFA run did not converge ({kind} after {steps} steps; \
                 VoC {voc_initial} -> {voc_final})"
            ),
            HetmmmError::VocIncreased {
                voc_initial,
                voc_final,
            } => write!(
                f,
                "DFA run increased VoC ({voc_initial} -> {voc_final}); \
                 push engine invariant violated"
            ),
            HetmmmError::WorkerFailure {
                proc_q,
                step,
                detail,
            } => {
                let name = match proc_q {
                    0 => "R",
                    1 => "S",
                    _ => "P",
                };
                match step {
                    Some(k) => write!(f, "worker {name} failed at step {k}: {detail}"),
                    None => write!(f, "worker {name} failed: {detail}"),
                }
            }
            HetmmmError::NoSurvivors { retries } => {
                write!(f, "all workers failed (after {retries} recovery retries)")
            }
            HetmmmError::InvalidConfig { field, detail } => {
                write!(f, "invalid config: {field}: {detail}")
            }
        }
    }
}

impl std::error::Error for HetmmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_context() {
        let e = HetmmmError::dimension_mismatch("A vs B", 8, 9);
        assert_eq!(e.to_string(), "dimension mismatch (A vs B): 8 != 9");

        let e = HetmmmError::NonConverged {
            kind: NonConvergence::StepCapExhausted,
            steps: 800,
            voc_initial: 100,
            voc_final: 60,
        };
        assert!(e.to_string().contains("step cap exhausted"));
        assert!(e.to_string().contains("800"));

        let e = HetmmmError::WorkerFailure {
            proc_q: 1,
            step: Some(12),
            detail: "injected crash".into(),
        };
        assert_eq!(e.to_string(), "worker S failed at step 12: injected crash");
    }

    #[test]
    fn invalid_config_names_the_field() {
        let e = HetmmmError::InvalidConfig {
            field: "channel_capacity".into(),
            detail: "must be nonzero (a zero-capacity channel deadlocks)".into(),
        };
        assert!(e.to_string().contains("channel_capacity"));
        let back: HetmmmError = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(HetmmmError::NoSurvivors { retries: 2 });
        assert!(e.to_string().contains("all workers failed"));
    }
}
